"""Ablation: scalar vs vectorized code generation.

DESIGN.md question: how much of Table-1 performance comes from the
vectorizing backend (the numpy analogue of the paper's generated C)?
Expected: vectorized CRS SpMV beats the scalar loop nest by well over an
order of magnitude at these sizes — the backend matters as much as the
plan.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.compiler.kernels import clear_kernel_cache
from repro.formats import CRSMatrix, DenseVector, DiagonalMatrix, ELLMatrix
from repro.kernels.spmv import SPMV_SRC
from repro.matrices import table1_matrix

FORMATS = [CRSMatrix, ELLMatrix, DiagonalMatrix]


def make_kernel(fmt, vectorize):
    coo = table1_matrix("gr_30_30")
    A = fmt.from_coo(coo)
    X = DenseVector(np.ones(coo.shape[1]))
    Y = DenseVector.zeros(coo.shape[0])
    kern = compile_kernel(SPMV_SRC, {"A": A, "X": X, "Y": Y}, vectorize=vectorize, cache=False)
    return lambda: kern(A=A, X=X, Y=Y)


@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vector"])
@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.__name__)
def test_ablation_codegen(benchmark, fmt, vectorize):
    fn = make_kernel(fmt, vectorize)
    rounds = 3 if vectorize else 2
    benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=1)
    benchmark.extra_info["format"] = fmt.__name__
    benchmark.extra_info["backend"] = "vector" if vectorize else "scalar"


def test_ablation_codegen_speedup():
    import time

    clear_kernel_cache()
    results = {}
    for vec in (False, True):
        fn = make_kernel(CRSMatrix, vec)
        fn()
        t0 = time.perf_counter()
        for _ in range(3):
            fn()
        results[vec] = (time.perf_counter() - t0) / 3
    assert results[True] * 5 < results[False], results


def main(argv=None):
    import time

    from bench_cli import tracked_main

    def measure(args):
        reps = 2 if args.smoke else 3
        clear_kernel_cache()
        times = {}
        for vec in (False, True):
            fn = make_kernel(CRSMatrix, vec)
            fn()  # warmup
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            times[vec] = (time.perf_counter() - t0) / reps
        speedup = times[False] / times[True]
        print(f"scalar={times[False]:.5f}s vector={times[True]:.5f}s "
              f"speedup={speedup:.1f}x")
        config = {"format": "CRS", "matrix": "gr_30_30", "smoke": bool(args.smoke)}
        return speedup, config, {
            "scalar_seconds": times[False], "vector_seconds": times[True],
        }

    return tracked_main(
        "ablation_codegen", measure, direction="higher",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
