"""Ablation: the value of i-node dense blocks.

DESIGN.md question: what does BlockSolve's i-node storage buy over plain
CRS on a multi-dof FEM matrix?  Three SpMV paths on the same matrix:

* ``crs-compiled``   — compiled CRS kernel (no structure exploited),
* ``inode-compiled`` — compiled i-node kernel (shared column lists),
* ``inode-library``  — the hand-written shape-batched library matvec.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.formats import CRSMatrix, DenseVector, InodeMatrix
from repro.kernels.spmv import SPMV_SRC
from repro.matrices import fem_matrix

_COO = fem_matrix(points=400, dof=5, neighbors=4, rng=9)


def paths():
    x = np.ones(_COO.shape[1])
    crs = CRSMatrix.from_coo(_COO)
    ino = InodeMatrix.from_coo(_COO)
    X = DenseVector(x)
    Y = DenseVector.zeros(_COO.shape[0])
    k_crs = compile_kernel(SPMV_SRC, {"A": crs, "X": X, "Y": Y})
    k_ino = compile_kernel(SPMV_SRC, {"A": ino, "X": X, "Y": Y})
    return {
        "crs-compiled": lambda: k_crs(A=crs, X=X, Y=Y),
        "inode-compiled": lambda: k_ino(A=ino, X=X, Y=Y),
        "inode-library": lambda: ino.matvec(x),
    }


@pytest.mark.parametrize("path", ["crs-compiled", "inode-compiled", "inode-library"])
def test_ablation_inode(benchmark, path):
    fn = paths()[path]
    benchmark.pedantic(fn, rounds=5, iterations=3, warmup_rounds=1)
    benchmark.extra_info["path"] = path
    benchmark.extra_info["nnz"] = _COO.nnz


def test_inode_library_beats_compiled_crs():
    import time

    fns = paths()
    times = {}
    for name, fn in fns.items():
        fn()
        t0 = time.perf_counter()
        for _ in range(5):
            fn()
        times[name] = (time.perf_counter() - t0) / 5
    assert times["inode-library"] < times["crs-compiled"], times


def main(argv=None):
    import time

    from bench_cli import tracked_main

    def measure(args):
        reps = 3 if args.smoke else 5
        fns = paths()
        times = {}
        for name, fn in fns.items():
            fn()  # warmup
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            times[name] = (time.perf_counter() - t0) / reps
        speedup = times["crs-compiled"] / times["inode-library"]
        for name, t in times.items():
            print(f"{name:<16} {t * 1e3:.3f} ms")
        print(f"inode-library over crs-compiled: {speedup:.2f}x")
        config = {"nnz": int(_COO.nnz), "smoke": bool(args.smoke)}
        return speedup, config, {f"{k}_seconds": v for k, v in times.items()}

    return tracked_main(
        "ablation_inode", measure, direction="higher",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
