"""Ablation: the value of i-node dense blocks.

DESIGN.md question: what does BlockSolve's i-node storage buy over plain
CRS on a multi-dof FEM matrix?  Three SpMV paths on the same matrix:

* ``crs-compiled``   — compiled CRS kernel (no structure exploited),
* ``inode-compiled`` — compiled i-node kernel (shared column lists),
* ``inode-library``  — the hand-written shape-batched library matvec.
"""

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.formats import CRSMatrix, DenseVector, InodeMatrix
from repro.kernels.spmv import SPMV_SRC
from repro.matrices import fem_matrix

_COO = fem_matrix(points=400, dof=5, neighbors=4, rng=9)


def paths():
    x = np.ones(_COO.shape[1])
    crs = CRSMatrix.from_coo(_COO)
    ino = InodeMatrix.from_coo(_COO)
    X = DenseVector(x)
    Y = DenseVector.zeros(_COO.shape[0])
    k_crs = compile_kernel(SPMV_SRC, {"A": crs, "X": X, "Y": Y})
    k_ino = compile_kernel(SPMV_SRC, {"A": ino, "X": X, "Y": Y})
    return {
        "crs-compiled": lambda: k_crs(A=crs, X=X, Y=Y),
        "inode-compiled": lambda: k_ino(A=ino, X=X, Y=Y),
        "inode-library": lambda: ino.matvec(x),
    }


@pytest.mark.parametrize("path", ["crs-compiled", "inode-compiled", "inode-library"])
def test_ablation_inode(benchmark, path):
    fn = paths()[path]
    benchmark.pedantic(fn, rounds=5, iterations=3, warmup_rounds=1)
    benchmark.extra_info["path"] = path
    benchmark.extra_info["nnz"] = _COO.nnz


def test_inode_library_beats_compiled_crs():
    import time

    fns = paths()
    times = {}
    for name, fn in fns.items():
        fn()
        t0 = time.perf_counter()
        for _ in range(5):
            fn()
        times[name] = (time.perf_counter() - t0) / 5
    assert times["inode-library"] < times["crs-compiled"], times
