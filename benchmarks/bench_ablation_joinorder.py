"""Ablation: why the planner's join order matters.

SpMV with a sparse x: the natural plan enumerates A (the driver) and
searches x.  Forcing x as the driver makes A's row level a *chained dense
enumeration* — every row is visited for every stored x entry, an
asymptotically worse join order.  The planner's cost model must pick the
former unaided.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.compiler.scheduling import plan_query
from repro.compiler.query_extract import extract_query
from repro.compiler.parser import parse
from repro.formats import COOMatrix, CRSMatrix, DenseVector, SparseVector
from repro.kernels.spmv import SPMV_SRC


def setup(n=120, density=0.05, rng=0):
    coo = COOMatrix.random(n, n, density, rng=rng)
    A = CRSMatrix.from_coo(coo)
    xd = np.zeros(n)
    xd[:: max(1, n // 40)] = 1.0
    X = SparseVector.from_dense(xd)
    Y = DenseVector.zeros(n)
    return A, X, Y


@pytest.mark.parametrize("driver", ["A", "X"], ids=["natural-A", "forced-X"])
def test_ablation_joinorder(benchmark, driver):
    A, X, Y = setup()
    kern = compile_kernel(SPMV_SRC, {"A": A, "X": X, "Y": Y}, force_driver=driver, cache=False)

    def run():
        Y.vals[:] = 0.0
        kern(A=A, X=X, Y=Y)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["driver"] = driver


@pytest.mark.parametrize("impl", ["merge", "search"])
def test_ablation_join_implementation(benchmark, impl):
    """Merge join vs per-entry binary search for the same sorted-sparse-x
    SpMV — the planner's join-*implementation* choice (it picks merge)."""
    A, X, Y = setup(n=400, density=0.06)
    kern = compile_kernel(
        SPMV_SRC, {"A": A, "X": X, "Y": Y}, allow_merge=(impl == "merge"), cache=False
    )

    def run():
        Y.vals[:] = 0.0
        kern(A=A, X=X, Y=Y)

    benchmark.pedantic(run, rounds=3, iterations=2, warmup_rounds=1)
    benchmark.extra_info["implementation"] = impl


def test_planner_picks_the_cheap_order():
    """Unforced planning must choose A as the driver (cost model check)."""
    A, X, Y = setup()
    program = parse(SPMV_SRC)
    q = extract_query(program, program.body[0], {"A", "X"})
    plan = plan_query(q, {"A": A, "X": X, "Y": Y})
    assert plan.driver == "A"
    forced = plan_query(q, {"A": A, "X": X, "Y": Y}, force_driver="X")
    assert forced.cost > plan.cost


def main(argv=None):
    from bench_cli import tracked_main

    def measure(args):
        A, X, Y = setup()
        program = parse(SPMV_SRC)
        q = extract_query(program, program.body[0], {"A", "X"})
        plan = plan_query(q, {"A": A, "X": X, "Y": Y})
        forced = plan_query(q, {"A": A, "X": X, "Y": Y}, force_driver="X")
        ratio = forced.cost / plan.cost  # deterministic cost-model margin
        print(f"natural driver {plan.driver} cost={plan.cost:.1f}; "
              f"forced X cost={forced.cost:.1f}; margin={ratio:.2f}x")
        config = {"n": 120, "density": 0.05, "smoke": bool(args.smoke)}
        return ratio, config, {
            "natural_cost": float(plan.cost), "forced_cost": float(forced.cost),
        }

    return tracked_main(
        "ablation_joinorder", measure, direction="higher",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
