"""Ablation: replicated vs distributed translation relation.

The structural source of Table 3's gap, isolated: build the SAME gather
schedule for the SAME requests under the SAME ownership map, once through
a replicated IND relation (local lookups, one all-to-all of requests) and
once through a Chaos distributed translation table (table build with
volume ∝ n, plus a dereference round trip).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.distribution import IndirectDistribution
from repro.distribution.translation import build_translation_table
from repro.runtime import Machine, build_schedule_replicated, build_schedule_translated
from paperbench import COMM


def workload(n=4000, P=4, ghosts_per_rank=40, rng=11):
    dist = IndirectDistribution.random(n, P, rng=rng)
    r = np.random.default_rng(rng)
    needed = [
        np.unique(r.choice(n, size=ghosts_per_rank, replace=False)) for _ in range(P)
    ]
    return dist, needed


def run_replicated(dist, needed):
    m = Machine(dist.nprocs)

    def prog(p):
        sched = yield from build_schedule_replicated(p, dist, needed[p])
        return sched.nghost

    _, stats = m.run(prog)
    return stats


def run_translated(dist, needed):
    m = Machine(dist.nprocs)

    def prog(p):
        table = yield from build_translation_table(
            p, dist.nglobal, dist.nprocs, dist.owned_by(p)
        )
        sched = yield from build_schedule_translated(p, table, needed[p])
        return sched.nghost

    _, stats = m.run(prog)
    return stats


@pytest.mark.parametrize("path", ["replicated", "translated"])
def test_ablation_translation(benchmark, path):
    dist, needed = workload()
    fn = run_replicated if path == "replicated" else run_translated
    stats = benchmark.pedantic(lambda: fn(dist, needed), rounds=3, iterations=1)
    benchmark.extra_info["path"] = path
    benchmark.extra_info["total_bytes"] = stats.total_nbytes()
    benchmark.extra_info["parallel_time_est"] = stats.parallel_time(COMM)


def test_translated_pays_problem_size_volume():
    dist, needed = workload()
    s_rep = run_replicated(dist, needed)
    s_tr = run_translated(dist, needed)
    # the table build alone moves Θ(n) data; replicated moves Θ(ghosts)
    assert s_tr.total_nbytes() > 10 * s_rep.total_nbytes()
    assert s_tr.parallel_time(COMM) > s_rep.parallel_time(COMM)


def main(argv=None):
    from bench_cli import tracked_main

    def measure(args):
        n = 1000 if args.smoke else 4000
        dist, needed = workload(n=n)
        s_rep = run_replicated(dist, needed)
        s_tr = run_translated(dist, needed)
        t_rep = s_rep.parallel_time(COMM)
        t_tr = s_tr.parallel_time(COMM)
        ratio = t_tr / t_rep  # deterministic modeled cost of translation
        print(f"replicated {t_rep:.6f}s ({s_rep.total_nbytes()} B)  "
              f"translated {t_tr:.6f}s ({s_tr.total_nbytes()} B)  "
              f"ratio {ratio:.2f}x")
        config = {"n": n, "P": dist.nprocs, "smoke": bool(args.smoke)}
        return ratio, config, {
            "replicated_seconds": t_rep,
            "translated_seconds": t_tr,
            "replicated_bytes": int(s_rep.total_nbytes()),
            "translated_bytes": int(s_tr.total_nbytes()),
        }

    # like joinorder: the margin of the structured path is the figure of
    # merit — it collapses if the replicated inspector gets more expensive
    return tracked_main(
        "ablation_translation", measure, direction="higher",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
