"""Auto-format selection benchmark: chosen plan vs fixed-format field.

For every structure class in the seeded generator suite
(``tests/generators.py``), measure one SpMV call through **every**
feasible candidate format, then let the auto-planner pick.  The
auto-chosen plan's time is the measured time of whatever it picked, so
the headline is noise-resistant: auto equals best-fixed exactly when the
cost model ranks the true argmin first.

Headline (``higher`` is better)::

    geomean over classes of  best_fixed_time / auto_time

Acceptance: headline >= 0.95 full-size (the planner may lose a class or
two to modeling error but not more; the ``--smoke`` floor is 0.85
because at CI sizes per-call alpha dominates), and auto must strictly
beat the worst-fixed-format geomean — picking blindly is not an option.

The same measurements calibrate the cost model: per format, least-squares
fit of ``seconds = alpha + beta * work_units`` across the suite, recorded
as an ``autoplan_calibration`` record in ``BENCH_history.jsonl`` where
:meth:`CostModel.from_history` finds it on the next run.  The full
per-class × per-format table lands in ``BENCH_autoplan.json``.

Usage::

    python benchmarks/bench_autoplan.py --smoke --out BENCH_autoplan.json
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from bench_cli import add_tracking_args, finish_tracking

from repro.compiler import autoplan, clear_kernel_cache, compile_kernel
from repro.compiler.autoplan import CANDIDATE_FORMATS, CostModel, _feasibility
from repro.analysis.structure import analyze_structure
from repro.errors import FormatError
from repro.formats.dense import DenseVector
from repro.kernels.spmv import SPMV_SRC
from repro.observability.bench_track import BenchHistory, BenchRecord
from tests.generators import STRUCTURE_CLASSES, integer_vector

BENCH = "autoplan"
SEED = 19970


def _time_call(kernel, formats, min_time: float) -> float:
    """Best-of per-call seconds, repeating until ``min_time`` elapsed."""
    best = float("inf")
    spent = 0.0
    while spent < min_time:
        t0 = time.perf_counter()
        kernel(**formats)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        spent += dt
    return best


def _measure_format(coo, profile, name, backend, x, min_time) -> float | None:
    """Per-call SpMV seconds through one fixed format, or None if the
    format rejects the matrix."""
    try:
        fmt = CANDIDATE_FORMATS[name](coo, profile)
    except FormatError:
        return None
    formats = {
        "A": fmt,
        "X": DenseVector(x.copy()),
        "Y": DenseVector.zeros(fmt.shape[0]),
    }
    kernel = compile_kernel(SPMV_SRC, formats, backend=backend)
    kernel(**formats)  # warm: bound-resolution, caches
    return _time_call(kernel, formats, min_time)


def _measure_auto(coo, profile, plan, x, min_time) -> float:
    """Per-call SpMV seconds through whatever the auto-planner picked —
    including the composed region-specialized plan, which is not a
    CANDIDATE_FORMATS entry (``bench_hybrid.py`` covers its headline;
    here it only needs a measured time so the ratio stays honest)."""
    if plan.format_name == "Hybrid":
        kernel, formats = plan.compile()
        formats["X"] = DenseVector(x.copy())
        formats["Y"] = DenseVector.zeros(coo.shape[0])
        kernel(**formats)  # warm
        return _time_call(kernel, formats, min_time)
    return _measure_format(
        coo, profile, plan.format_name, plan.backend, x, min_time
    )


def _fit_alpha_beta(points):
    """Least-squares (alpha, beta) for seconds = alpha + beta*units,
    clamped nonnegative (alpha) / positive (beta)."""
    units = np.array([u for u, _ in points])
    secs = np.array([s for _, s in points])
    if len(points) < 2 or np.ptp(units) == 0:
        alpha = float(secs.min())
        return alpha, max(1e-12, alpha / max(units.max(), 1.0))
    A = np.vstack([np.ones_like(units), units]).T
    (alpha, beta), *_ = np.linalg.lstsq(A, secs, rcond=None)
    return max(0.0, float(alpha)), max(1e-12, float(beta))


def measure(args):
    rng_base = SEED if args.seed is None else args.seed
    n = 240 if args.smoke else 600
    min_time = 0.003 if args.smoke else 0.01
    # at smoke size per-call alpha dominates beta*work, so modeling error
    # costs proportionally more; the acceptance threshold lives on the
    # full-size run
    floor = 0.85 if args.smoke else 0.95
    clear_kernel_cache()

    rows = []
    fit_points = {name: [] for name in CANDIDATE_FORMATS}
    interp_points = []
    for ci, cls in enumerate(sorted(STRUCTURE_CLASSES)):
        rng = np.random.default_rng([rng_base, ci])
        coo = STRUCTURE_CLASSES[cls](rng, n)
        profile = analyze_structure(coo)
        x = integer_vector(rng, coo.shape[1])
        times = {}
        for name in CANDIDATE_FORMATS:
            feasible, _ = _feasibility(profile, name)
            if not feasible:
                continue
            t = _measure_format(coo, profile, name, "vectorized", x, min_time)
            if t is not None:
                times[name] = t
                fit_points[name].append((CostModel.work_units(profile, name), t))
        t_interp = _measure_format(coo, profile, "CRS", "interpreted", x, min_time)
        interp_points.append((profile.nnz, t_interp))
        rows.append({
            "class": cls,
            "n": n,
            "nnz": profile.nnz,
            "tags": list(profile.tags),
            "profile_fingerprint": profile.fingerprint(),
            "fixed_seconds": times,
            "interpreted_crs_seconds": t_interp,
        })

    # calibrate the model from this run's own measurements
    alpha, beta = {}, {}
    for name, pts in fit_points.items():
        if pts:
            alpha[name], beta[name] = _fit_alpha_beta(pts)
    ia, ib = _fit_alpha_beta(interp_points)
    model = CostModel(
        alpha=alpha, beta=beta, alpha_interpreted=ia, beta_interpreted=ib,
        source="fit[this-run]",
    )

    # the auto-planner picks with the calibrated model; its time is the
    # measured time of whatever it picked
    ratios_best, ratios_worst = [], []
    for ci, (cls, row) in enumerate(zip(sorted(STRUCTURE_CLASSES), rows)):
        rng = np.random.default_rng([rng_base, ci])
        coo = STRUCTURE_CLASSES[cls](rng, n)
        profile = analyze_structure(coo)
        plan = autoplan(coo, profile=profile, model=model)
        times = row["fixed_seconds"]
        if plan.backend == "interpreted" or plan.format_name not in times:
            x = integer_vector(np.random.default_rng([rng_base, ci, 1]), coo.shape[1])
            auto_t = _measure_auto(coo, profile, plan, x, min_time)
        else:
            auto_t = times[plan.format_name]
        best_name = min(times, key=times.get)
        worst_name = max(times, key=times.get)
        row.update({
            "auto_format": plan.format_name,
            "auto_backend": plan.backend,
            "auto_seconds": auto_t,
            "best_fixed": best_name,
            "worst_fixed": worst_name,
            "ratio_vs_best": times[best_name] / auto_t,
            "ratio_vs_worst": times[worst_name] / auto_t,
        })
        ratios_best.append(times[best_name] / auto_t)
        ratios_worst.append(times[worst_name] / auto_t)
        print(
            f"{cls:16s} auto={plan.format_name:<10s} best={best_name:<10s} "
            f"worst={worst_name:<10s} vs-best={ratios_best[-1]:6.3f} "
            f"vs-worst={ratios_worst[-1]:6.2f}"
        )

    headline = float(np.exp(np.mean(np.log(ratios_best))))
    worst_geomean = float(np.exp(np.mean(np.log(ratios_worst))))
    print(f"\nauto vs best-fixed geomean : {headline:.4f}  (target >= {floor})")
    print(f"auto vs worst-fixed geomean: {worst_geomean:.4f}  (must be > 1)")

    config = {"suite": "generators", "n": n, "smoke": bool(args.smoke),
              "seed": rng_base}
    cal_metrics = {f"alpha.{k}": v for k, v in alpha.items()}
    cal_metrics.update({f"beta.{k}": v for k, v in beta.items()})
    cal_metrics["alpha.__interpreted__"] = ia
    cal_metrics["beta.__interpreted__"] = ib
    if not args.no_track:
        BenchHistory(args.history).append(BenchRecord(
            bench="autoplan_calibration",
            value=headline,
            direction="higher",
            config=config,
            metrics=cal_metrics,
        ))
        print(f"calibration recorded to {args.history}")

    if args.out:
        doc = {
            "bench": BENCH,
            "config": config,
            "auto_vs_best_geomean": headline,
            "auto_vs_worst_geomean": worst_geomean,
            "model_source": model.source,
            "classes": rows,
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.out}")

    if headline < floor:
        print(f"FAIL: auto/best-fixed geomean {headline:.4f} < {floor}")
        raise SystemExit(1)
    if worst_geomean <= 1.0:
        print(f"FAIL: auto does not beat the worst fixed format "
              f"({worst_geomean:.4f} <= 1)")
        raise SystemExit(1)

    metrics = {f"ratio_vs_best.{r['class']}": r["ratio_vs_best"] for r in rows}
    metrics["auto_vs_worst_geomean"] = worst_geomean
    return headline, config, metrics


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="CI-sized problems")
    ap.add_argument("--seed", type=int, default=None,
                    help=f"suite base seed (default {SEED})")
    ap.add_argument("--out", default="BENCH_autoplan.json",
                    help="per-class table artifact (default BENCH_autoplan.json)")
    add_tracking_args(ap)
    args = ap.parse_args(argv)
    value, config, metrics = measure(args)
    print(f"{BENCH}: headline={value:.6g} (higher is better)")
    return finish_tracking(args, BENCH, value, "higher", config, metrics)


if __name__ == "__main__":
    raise SystemExit(main())
