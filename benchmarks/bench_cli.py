"""Shared standalone-main harness for ``bench_*.py``: tracking + gating.

Every benchmark script funnels its headline scalar through here so all
eight produce uniform ``BENCH_history.jsonl`` records and understand the
same flags::

    --history PATH        JSONL trajectory file (default BENCH_history.jsonl)
    --gate PCT            exit 1 if this run regresses > PCT% vs baseline
    --compare {best,last} which prior record the gate diffs against
    --no-track            measure and print, but do not append/gate
    --inject-slowdown X   multiply the headline by X before recording
                          (synthetic regression, for testing the gate)

Scripts with a bespoke main (table1, table3) call
:func:`add_tracking_args` + :func:`finish_tracking` directly; the rest
get a whole main from :func:`tracked_main`.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability.bench_track import (
    DEFAULT_HISTORY,
    BenchHistory,
    BenchRecord,
    evaluate_gate,
    render_gate,
)

__all__ = ["add_tracking_args", "finish_tracking", "tracked_main"]


def add_tracking_args(ap: argparse.ArgumentParser) -> None:
    g = ap.add_argument_group("trajectory tracking")
    g.add_argument("--history", default=DEFAULT_HISTORY,
                   help="benchmark history JSONL (append-only)")
    g.add_argument("--gate", type=float, default=None, metavar="PCT",
                   help="fail (exit 1) on a regression above PCT%% vs the baseline")
    g.add_argument("--compare", choices=("best", "last"), default="best",
                   help="gate/diff baseline: series best (default) or most recent")
    g.add_argument("--no-track", action="store_true",
                   help="skip history append and gate")
    g.add_argument("--inject-slowdown", type=float, default=None, metavar="X",
                   help="multiply the headline value by X before recording "
                        "(synthetic regression to test the gate)")


def finish_tracking(
    args: argparse.Namespace,
    bench: str,
    value: float,
    direction: str = "lower",
    config: dict | None = None,
    metrics: dict | None = None,
) -> int:
    """Record the headline scalar, print the diff vs history, gate.

    Returns the process exit code: 0, or 1 when ``--gate`` is set and the
    regression exceeds the threshold.
    """
    if getattr(args, "no_track", False):
        return 0
    config = dict(config or {})
    metrics = dict(metrics or {})
    if args.inject_slowdown is not None:
        # worsen the headline in its own direction: a slowdown factor X
        # multiplies times and divides speedups
        factor = float(args.inject_slowdown)
        value = value * factor if direction == "lower" else value / factor
        metrics["injected_slowdown"] = factor
    record = BenchRecord(
        bench=bench,
        value=value,
        direction=direction,
        config=config,
        metrics=metrics,
    )
    history = BenchHistory(args.history)
    if history.skipped_lines:
        print(
            f"warning: skipped {history.skipped_lines} unparseable line(s) "
            f"in {args.history}",
            file=sys.stderr,
        )
    history.append(record)
    gate = evaluate_gate(
        record,
        history,
        threshold_pct=args.gate if args.gate is not None else float("inf"),
        against=args.compare,
    )
    print(render_gate(gate))
    print(f"recorded to {args.history}")
    return gate.exit_code if args.gate is not None else 0


def tracked_main(
    bench: str,
    measure,
    direction: str = "lower",
    description: str | None = None,
    extra_args=None,
    argv=None,
) -> int:
    """A complete standalone main for benchmarks with no bespoke CLI.

    ``measure(args)`` runs the benchmark (printing whatever it likes) and
    returns ``(value, config, metrics)`` — the headline scalar plus the
    config dict that fingerprints the series.
    """
    ap = argparse.ArgumentParser(description=description)
    ap.add_argument("--smoke", action="store_true",
                    help="shrunken problem, CI-sized")
    if extra_args is not None:
        extra_args(ap)
    add_tracking_args(ap)
    args = ap.parse_args(argv)
    value, config, metrics = measure(args)
    print(f"{bench}: headline={value:.6g} ({'lower' if direction == 'lower' else 'higher'} is better)")
    return finish_tracking(args, bench, value, direction, config, metrics)
