"""Reduction-unlock benchmark: certified scatter kernels vs the oracle.

Before the dependence lattice, every kernel here died in
``compile_kernel`` with a ``VerificationError`` — the binary DOANY gate
had no verdict between "independent" and "refuse".  The analyzer now
classifies them ``REDUCTION(op)`` and the vectorized backend lowers them
through the ``reduce-scatter`` strategy (``np.multiply.at`` /
``np.minimum.at`` / ``np.maximum.at``-style privatized accumulation).
This bench proves the unlock is a *performance* feature, not just an
admissibility one: per kernel it measures the certified vectorized
lowering against the interpreted scalar nest (the semantic oracle,
previously the only way to run these loops at all — outside the
compiler), checks the results agree bitwise, and reports

Headline (``higher`` is better)::

    geomean over kernels of  interpreted_seconds / vectorized_seconds

Acceptance: every kernel must carry a ``REDUCTION`` certificate, every
vectorized result must equal the interpreted result bitwise, and the
headline geomean must exceed 1 — a reduction unlock that runs slower
than the scalar nest would be a regression, not a feature.  The
classification itself is timed and recorded as a metric (it is pure
analysis and should stay microseconds-per-kernel).

Usage::

    python benchmarks/bench_depend.py --smoke --out BENCH_depend.json
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from bench_cli import add_tracking_args, finish_tracking

from repro.compiler import clear_kernel_cache, compile_kernel
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseVector

BENCH = "depend_unlock"
SEED = 19970

#: name -> (source, reduction op, target length as a function of (n, m))
KERNELS = {
    # per-row product: reduce-scatter collapses each row to np.prod
    "rowprod": ("for i in 0:n { for j in 0:m { Y[i] = Y[i] * A[i,j] } }", "*"),
    # column max: the newly-unlocked scatter — np.maximum.at over colind
    "colmax": ("for i in 0:n { for j in 0:m { Y[j] = max(Y[j], A[i,j]) } }", "max"),
    # column min, same scatter shape, opposite monoid
    "colmin": ("for i in 0:n { for j in 0:m { Y[j] = min(Y[j], A[i,j]) } }", "min"),
}


def _matrix(rng, n: int, density: float) -> CRSMatrix:
    d = (rng.random((n, n)) < density) * rng.integers(1, 5, (n, n)).astype(float)
    # keep '*' exact: remap stored values to ±1/±2 (powers of two multiply
    # exactly in float64 regardless of association order)
    d[d == 3.0] = 1.0
    d[d == 4.0] = 2.0
    sign = np.where(rng.random((n, n)) < 0.5, -1.0, 1.0)
    return CRSMatrix.from_coo(COOMatrix.from_dense(d * sign))


def _time_call(kernel, formats, y0, min_time: float) -> float:
    """Best-of per-call seconds (reset the accumulator between calls)."""
    best = float("inf")
    spent = 0.0
    while spent < min_time:
        formats["Y"].vals[:] = y0
        t0 = time.perf_counter()
        kernel(**formats)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        spent += dt
    return best


def measure(args):
    rng = np.random.default_rng(SEED if args.seed is None else args.seed)
    n = 300 if args.smoke else 1200
    density = 0.05
    min_time = 0.005 if args.smoke else 0.05
    clear_kernel_cache()

    A = _matrix(rng, n, density)
    y0 = rng.choice([-2.0, -1.0, 1.0, 2.0], size=n)

    rows = []
    speedups = []
    classify_seconds = []
    for name, (src, op) in KERNELS.items():
        per_backend = {}
        results = {}
        for backend in ("vectorized", "interpreted"):
            formats = {"A": A, "Y": DenseVector(y0.copy())}
            t0 = time.perf_counter()
            kern = compile_kernel(src, formats, cache=False, backend=backend)
            compile_s = time.perf_counter() - t0
            cert = kern.certificate
            if cert is None or cert.verdict.kind != "REDUCTION" or cert.verdict.op != op:
                print(f"FAIL: {name} [{backend}] did not certify REDUCTION({op})")
                raise SystemExit(1)
            formats["Y"].vals[:] = y0
            kern(**formats)  # warm + capture the result for the bitwise check
            results[backend] = formats["Y"].vals.copy()
            per_backend[backend] = {
                "seconds": _time_call(kern, formats, y0, min_time),
                "compile_seconds": compile_s,
                "lowering": list(kern.unit_backends),
            }
        if results["vectorized"].tobytes() != results["interpreted"].tobytes():
            print(f"FAIL: {name} vectorized result diverges from the oracle")
            raise SystemExit(1)

        from repro.analysis.depend import classify_source

        t0 = time.perf_counter()
        cls = classify_source(src, gate=False)
        classify_s = time.perf_counter() - t0
        classify_seconds.append(classify_s)

        speedup = per_backend["interpreted"]["seconds"] / per_backend["vectorized"]["seconds"]
        speedups.append(speedup)
        rows.append({
            "kernel": name,
            "verdict": cls.verdict.label(),
            "certificate": cls.certificate.fingerprint,
            "vectorized": per_backend["vectorized"],
            "interpreted": per_backend["interpreted"],
            "classify_seconds": classify_s,
            "speedup": speedup,
        })
        print(
            f"{name:8s} {cls.verdict.label():14s} "
            f"vec={per_backend['vectorized']['seconds']:.6f}s "
            f"interp={per_backend['interpreted']['seconds']:.6f}s "
            f"speedup={speedup:7.2f}x "
            f"({per_backend['vectorized']['lowering'][0]})"
        )

    headline = float(np.exp(np.mean(np.log(speedups))))
    print(f"\nreduction-unlock speedup geomean: {headline:.2f}x (must be > 1)")

    config = {"n": n, "density": density, "smoke": bool(args.smoke),
              "seed": SEED if args.seed is None else args.seed}
    if args.out:
        doc = {"bench": BENCH, "config": config, "headline": headline,
               "kernels": rows}
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.out}")

    if headline <= 1.0:
        print(f"FAIL: geomean speedup {headline:.3f} <= 1 — the certified "
              "lowering lost to the scalar nest")
        raise SystemExit(1)

    metrics = {f"speedup.{r['kernel']}": r["speedup"] for r in rows}
    metrics["classify_seconds_mean"] = float(np.mean(classify_seconds))
    return headline, config, metrics


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="CI-sized problem")
    ap.add_argument("--seed", type=int, default=None,
                    help=f"matrix seed (default {SEED})")
    ap.add_argument("--out", default="BENCH_depend.json",
                    help="per-kernel table artifact (default BENCH_depend.json)")
    add_tracking_args(ap)
    args = ap.parse_args(argv)
    value, config, metrics = measure(args)
    print(f"{BENCH}: headline={value:.6g} (higher is better)")
    return finish_tracking(args, BENCH, value, "higher", config, metrics)


if __name__ == "__main__":
    raise SystemExit(main())
