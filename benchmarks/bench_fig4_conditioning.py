"""Figure 4: effect of problem conditioning on relative solver performance.

The inspector runs once; the executor runs once per iteration, so the
relative cost of the Indirect-Mixed implementation over Bernoulli-Mixed is
(k + r_I) / (k + r_B) for k solver iterations (paper Eq. 25).  The curves
must start high at small k, decay toward 1, and sit higher for larger P.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from paperbench import format_fig4, run_fig4

P_LIST = (2, 4)


def test_fig4_curves(benchmark):
    series = benchmark.pedantic(
        lambda: run_fig4(P_list=P_LIST), rounds=1, iterations=1
    )
    for P, s in series.items():
        ratios = s["ratio"]
        # decaying toward 1 as iterations amortize the inspector
        assert ratios[0] > ratios[-1] >= 1.0
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))
        # the Indirect inspector is the more expensive one
        assert s["r_I"] > s["r_B"]
        benchmark.extra_info[f"P{P}_r_B"] = s["r_B"]
        benchmark.extra_info[f"P{P}_r_I"] = s["r_I"]
    print()
    print(format_fig4(series))


def main(argv=None):
    from bench_cli import tracked_main
    from paperbench import geomean

    def measure(args):
        P_list = (2,) if args.smoke else P_LIST
        series = run_fig4(P_list=P_list)
        print(format_fig4(series))
        # headline: inspector amortization ratios (both implementations,
        # every P) — grows when inspection gets more expensive relative
        # to one executor iteration
        vals = [s["r_B"] for s in series.values()] + [
            s["r_I"] for s in series.values()
        ]
        config = {"P_list": list(P_list), "smoke": bool(args.smoke)}
        metrics = {
            f"P{P}_{k}": s[k]
            for P, s in series.items()
            for k in ("r_B", "r_I")
        }
        return geomean(vals), config, metrics

    return tracked_main(
        "fig4_conditioning", measure, direction="lower",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
