"""Region-specialized hybrid plan vs every single-format plan.

On mixed-structure matrices (the ``hybrid``-tagged generator classes: a
planted dense block over a banded bulk with hub rows, or free-floating
dense windows over a uniform background) no single format wins — each
pays for the structure it was not built for.  The composed
:class:`~repro.compiler.specialize.HybridPlan` materializes every region
in its best format and runs one sub-kernel per region.

Headline (``higher`` is better; the gate floor is 1.0)::

    geomean over HYBRID_CLASSES of  best_single_time / hybrid_time

All timings go through pre-bound kernels (:meth:`CompiledKernel.bind` /
:meth:`HybridKernel.bind`) — the iterative-solver regime the paper
targets, where one binding amortizes over many SpMV calls.  Both sides
are bound, so the comparison is dispatch-for-dispatch fair.

Beyond the headline the run asserts, per hybrid class, that

* the measured hybrid strictly beats **every** feasible single-format
  plan (not just the best one), and
* the auto-planner actually *selects* the hybrid candidate — the cost
  model must rank the split first on these classes,

and, per single-structure control class, that the auto-planner does
**not** select the hybrid (the model must not hallucinate separability).
The hybrid SpMV result is also checked bitwise against the dense
product before any timing counts.

The per-class table lands in ``BENCH_hybrid.json``; the headline joins
``BENCH_history.jsonl`` under bench name ``hybrid``.

Usage::

    python benchmarks/bench_hybrid.py --smoke --out BENCH_hybrid.json
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from bench_cli import add_tracking_args, finish_tracking

from repro.compiler import autoplan, clear_kernel_cache, compile_kernel
from repro.compiler.autoplan import CANDIDATE_FORMATS, _feasibility
from repro.analysis.structure import analyze_structure
from repro.errors import FormatError
from repro.formats.dense import DenseVector
from repro.kernels.spmv import SPMV_SRC
from repro.observability.bench_track import BenchHistory, BenchRecord
from tests.generators import HYBRID_CLASSES, STRUCTURE_CLASSES, integer_vector

BENCH = "hybrid"
SEED = 19970

#: single-structure controls: the planner must NOT pick Hybrid on these
CONTROL_CLASSES = ("banded", "diagonal", "block_diag", "uniform")


def _time_bound(bound, min_time: float) -> float:
    """Best-of per-call seconds of a pre-bound zero-arg callable."""
    best = float("inf")
    spent = 0.0
    while spent < min_time:
        t0 = time.perf_counter()
        bound()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        spent += dt
    return best


def _single_format_times(coo, profile, x, min_time) -> dict[str, float]:
    """Bound per-call SpMV seconds for every feasible single format."""
    times = {}
    for name in CANDIDATE_FORMATS:
        feasible, _ = _feasibility(profile, name)
        if not feasible:
            continue
        try:
            fmt = CANDIDATE_FORMATS[name](coo, profile)
        except FormatError:
            continue
        formats = {
            "A": fmt,
            "X": DenseVector(x.copy()),
            "Y": DenseVector.zeros(coo.shape[0]),
        }
        kernel = compile_kernel(SPMV_SRC, formats, backend="vectorized")
        times[name] = _time_bound(kernel.bind(**formats), min_time)
    return times


def measure(args):
    rng_base = SEED if args.seed is None else args.seed
    # the composed plan pays one dispatch per region, so it needs enough
    # work per region to win; below ~n=1500 the model (correctly) keeps
    # picking the single CRS plan for the diagonal-block hybrid class
    n = 1500 if args.smoke else 3000
    min_time = 0.02 if args.smoke else 0.05
    clear_kernel_cache()

    rows = []
    ratios = []
    failures = []
    for ci, cls in enumerate(sorted(HYBRID_CLASSES)):
        rng = np.random.default_rng([rng_base, ci])
        coo = HYBRID_CLASSES[cls](rng, n)
        profile = analyze_structure(coo)
        x = integer_vector(rng, coo.shape[1])

        plan = autoplan(coo, profile=profile)
        if plan.format_name != "Hybrid":
            failures.append(
                f"{cls}: auto-planner picked {plan.format_name}, not the "
                "hybrid plan"
            )
        hybrid = plan.hybrid
        kernel, formats = hybrid.compile()
        formats["X"] = DenseVector(x.copy())
        formats["Y"] = DenseVector.zeros(coo.shape[0])

        # correctness gate before any timing: bitwise vs dense product
        # (integer-valued entries make float64 sums exact)
        kernel(**formats)
        want = coo.to_dense() @ x
        if formats["Y"].vals.tobytes() != want.tobytes():
            failures.append(f"{cls}: hybrid SpMV is not bitwise-correct")
            continue

        t_hybrid = _time_bound(kernel.bind(**formats), min_time)
        times = _single_format_times(coo, profile, x, min_time)
        best_name = min(times, key=times.get)
        lost_to = sorted(name for name, t in times.items() if t <= t_hybrid)
        if lost_to:
            failures.append(
                f"{cls}: hybrid ({t_hybrid * 1e6:.1f}us) does not beat "
                + ", ".join(f"{nm} ({times[nm] * 1e6:.1f}us)" for nm in lost_to)
            )
        ratio = times[best_name] / t_hybrid
        ratios.append(ratio)
        rows.append({
            "class": cls,
            "n": n,
            "nnz": profile.nnz,
            "partition_fingerprint": hybrid.partition.fingerprint(),
            "regions": [r.summary() for r in hybrid.partition.regions],
            "predicted_seconds": hybrid.predicted_seconds,
            "hybrid_seconds": t_hybrid,
            "single_seconds": times,
            "best_single": best_name,
            "ratio_vs_best_single": ratio,
            "auto_choice": plan.format_name,
        })
        print(
            f"{cls:14s} hybrid={t_hybrid * 1e6:8.1f}us "
            f"best_single={best_name}:{times[best_name] * 1e6:8.1f}us "
            f"ratio={ratio:5.2f} regions="
            + "+".join(r.kind for r in hybrid.partition.regions)
        )

    # single-structure controls: the model must not pick Hybrid there
    controls = {}
    for cls in CONTROL_CLASSES:
        rng = np.random.default_rng([rng_base, 100 + ord(cls[0])])
        coo = STRUCTURE_CLASSES[cls](rng, n)
        plan = autoplan(coo)
        controls[cls] = plan.format_name
        if plan.format_name == "Hybrid":
            failures.append(
                f"control {cls}: auto-planner picked Hybrid on a "
                "single-structure matrix"
            )
        print(f"{cls:14s} control: auto={plan.format_name}")

    headline = float(np.exp(np.mean(np.log(ratios)))) if ratios else 0.0
    print(f"\nbest-single/hybrid geomean: {headline:.4f}  (target >= 1.0)")

    config = {
        "suite": "hybrid-generators", "n": n, "smoke": bool(args.smoke),
        "seed": rng_base,
    }
    if args.out:
        doc = {
            "bench": BENCH,
            "config": config,
            "best_single_vs_hybrid_geomean": headline,
            "classes": rows,
            "controls": controls,
            "failures": failures,
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        raise SystemExit(1)
    if headline < 1.0:
        print(f"FAIL: geomean {headline:.4f} < 1.0")
        raise SystemExit(1)

    metrics = {f"ratio.{r['class']}": r["ratio_vs_best_single"] for r in rows}
    # only a passing run joins the tracked trajectory
    if not args.no_track:
        BenchHistory(args.history).append(BenchRecord(
            bench=BENCH,
            value=headline,
            direction="higher",
            config=config,
            metrics=metrics,
        ))
    return headline, config, metrics


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="CI-sized problems")
    ap.add_argument("--seed", type=int, default=None,
                    help=f"suite base seed (default {SEED})")
    ap.add_argument("--out", default="BENCH_hybrid.json",
                    help="per-class table artifact (default BENCH_hybrid.json)")
    add_tracking_args(ap)
    args = ap.parse_args(argv)
    value, config, metrics = measure(args)
    print(f"{BENCH}: headline={value:.6g} (higher is better)")
    return finish_tracking(args, BENCH, value, "higher", config, metrics)


if __name__ == "__main__":
    raise SystemExit(main())
