"""Service load generator: latency/throughput under concurrent tenants.

Drives a :class:`repro.service.CompileSolveService` with an asyncio storm
of concurrent compile and solve requests from several tenants, twice over
the same request set:

* **cold** — a fresh plan cache: every distinct structural key must be
  compiled, and the single-flight path must dedupe the concurrent
  duplicates (exactly one compilation per key, the rest coalesced/hits),
* **warm** — the same storm again: every compile request is a cache
  probe, so the p50 collapses toward queue + dispatch overhead.  This is
  the inspector/executor economics of the paper applied to the service
  tier: compile once, amortize across every caller.

Reported per phase: p50/p99/mean total latency (admission → response),
wall time, and throughput; plus the single-flight accounting (distinct
keys vs compilations vs coalesced waits).  Asserted here so CI fails on
a regression, not just a worse table:

* zero failed/shed responses (the queue is sized for the storm),
* **exactly one compilation per distinct structural key** in the cold
  phase,
* warm-cache p50 below cold p50.

The tracked headline is the warm p50 in milliseconds (lower is better) —
the steady-state latency a tenant sees once the service is hot.

Full mode fires 1200 concurrent requests (the "1k+ concurrent" service
target); ``--smoke`` shrinks the storm for CI.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import argparse
import asyncio
import json
import time

import numpy as np

from repro.compiler import clear_kernel_cache
from repro.compiler.plan_cache import PlanCache
from repro.formats import COOMatrix, CRSMatrix, DenseVector
from repro.kernels.spmv import SPMV_SRC
from repro.service import CompileSolveService, ServiceConfig

TENANTS = ["alice", "bob", "carol", "dave"]


def _poisson_system(n: int):
    """The 1-D Poisson SPD system (the repo's standard CG test matrix)."""
    dense = np.zeros((n, n))
    np.fill_diagonal(dense, 4.0)
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = -1.0
    A = CRSMatrix.from_coo(COOMatrix.from_dense(dense))
    b = np.random.default_rng(1997).standard_normal(n)
    return A, b


def build_requests(n_requests: int, distinct_keys: int, solve_every: int, n: int):
    """The request mix: compile requests round-robin over ``distinct_keys``
    structural keys (distinct via ``extra_key``, the autoplan mechanism),
    with every ``solve_every``-th request a small CG solve."""
    A, b = _poisson_system(n)
    fmts = {
        "A": A,
        "X": DenseVector(np.ones(n)),
        "Y": DenseVector.zeros(n),
    }
    requests = []
    for i in range(n_requests):
        tenant = TENANTS[i % len(TENANTS)]
        if solve_every and i % solve_every == solve_every - 1:
            requests.append(
                ("solve_cg", {"A": A, "b": b, "maxiter": 8, "tol": 0.0}, tenant)
            )
        else:
            requests.append(
                (
                    "compile",
                    {
                        "source": SPMV_SRC,
                        "formats": fmts,
                        "extra_key": ("bench_service", i % distinct_keys),
                    },
                    tenant,
                )
            )
    return requests


async def _storm(svc: CompileSolveService, requests):
    return await asyncio.gather(
        *[
            svc.request_async(kind, payload, tenant=tenant)
            for kind, payload, tenant in requests
        ]
    )


def run_phase(svc: CompileSolveService, requests) -> dict:
    """Fire every request concurrently; summarize latency + throughput."""
    t0 = time.perf_counter()
    responses = asyncio.run(_storm(svc, requests))
    wall = time.perf_counter() - t0
    lat = np.array([r.total_ms for r in responses])
    statuses: dict[str, int] = {}
    for r in responses:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    return {
        "requests": len(responses),
        "statuses": statuses,
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
        "mean_ms": float(lat.mean()),
        "max_ms": float(lat.max()),
        "wall_seconds": wall,
        "throughput_rps": len(responses) / wall,
    }


def run_load(n_requests: int, distinct_keys: int, workers: int,
             solve_every: int, n: int) -> dict:
    requests = build_requests(n_requests, distinct_keys, solve_every, n)
    plan_cache = PlanCache("compiler", max_entries=4 * distinct_keys + 64)
    clear_kernel_cache()  # the solve path compiles through the global cache
    config = ServiceConfig(
        workers=workers,
        max_queue=n_requests + 16,  # the whole storm may queue at once
        queue_timeout=None,         # measuring latency, not shedding
        plan_cache=plan_cache,
    )
    with CompileSolveService(config) as svc:
        cold = run_phase(svc, requests)
        cache_after_cold = dict(plan_cache.stats())
        warm = run_phase(svc, requests)
        cache_after_warm = dict(plan_cache.stats())
    n_compile = sum(1 for k, _, _ in requests if k == "compile")
    return {
        "config": {
            "requests": n_requests,
            "distinct_keys": distinct_keys,
            "workers": workers,
            "solve_every": solve_every,
            "n": n,
            "compile_requests": n_compile,
            "tenants": len(TENANTS),
        },
        "cold": cold,
        "warm": warm,
        "single_flight": {
            "distinct_keys": distinct_keys,
            "compilations_cold": cache_after_cold["misses"],
            "coalesced_cold": cache_after_cold["coalesced"],
            "hits_cold": cache_after_cold["hits"],
            "compilations_total": cache_after_warm["misses"],
            "cache_size": cache_after_warm["size"],
        },
        "warm_over_cold_p50": warm["p50_ms"] / cold["p50_ms"],
    }


def main(argv=None):
    from bench_cli import add_tracking_args, finish_tracking

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small storm, CI-sized")
    ap.add_argument("--out", default="BENCH_service.json", help="output JSON path")
    ap.add_argument("--requests", type=int, default=None,
                    help="concurrent requests per phase (default 1200, smoke 200)")
    ap.add_argument("--keys", type=int, default=None,
                    help="distinct structural keys (default 48, smoke 8)")
    ap.add_argument("--workers", type=int, default=8)
    add_tracking_args(ap)
    args = ap.parse_args(argv)

    n_requests = args.requests or (200 if args.smoke else 1200)
    distinct_keys = args.keys or (8 if args.smoke else 48)
    n = 64 if args.smoke else 256
    result = run_load(
        n_requests=n_requests,
        distinct_keys=distinct_keys,
        workers=args.workers,
        solve_every=10,
        n=n,
    )

    cold, warm, sf = result["cold"], result["warm"], result["single_flight"]
    for phase, name in ((cold, "cold"), (warm, "warm")):
        bad = {s: c for s, c in phase["statuses"].items() if s != "ok"}
        assert not bad, f"{name} phase had non-ok responses: {bad}"
    assert sf["compilations_cold"] == distinct_keys, (
        "single-flight failed: expected exactly one compilation per "
        f"structural key ({distinct_keys}), got {sf['compilations_cold']}"
    )
    assert sf["compilations_total"] == sf["compilations_cold"], (
        "warm phase recompiled: "
        f"{sf['compilations_total']} != {sf['compilations_cold']}"
    )
    assert warm["p50_ms"] < cold["p50_ms"], (
        f"warm cache p50 ({warm['p50_ms']:.3f} ms) not below cold "
        f"({cold['p50_ms']:.3f} ms)"
    )

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    print(
        f"cold: p50={cold['p50_ms']:.2f}ms p99={cold['p99_ms']:.2f}ms "
        f"throughput={cold['throughput_rps']:.0f} req/s "
        f"({cold['requests']} concurrent)"
    )
    print(
        f"warm: p50={warm['p50_ms']:.2f}ms p99={warm['p99_ms']:.2f}ms "
        f"throughput={warm['throughput_rps']:.0f} req/s"
    )
    print(
        f"single-flight: {sf['compilations_cold']} compilations for "
        f"{result['config']['compile_requests']} compile requests over "
        f"{distinct_keys} structural keys "
        f"({sf['coalesced_cold']} coalesced, {sf['hits_cold']} cold-phase hits)"
    )

    return finish_tracking(
        args,
        bench="service_latency",
        value=warm["p50_ms"],
        direction="lower",
        config={
            "requests": n_requests,
            "keys": distinct_keys,
            "workers": args.workers,
            "smoke": bool(args.smoke),
        },
        metrics={
            "cold_p50_ms": cold["p50_ms"],
            "cold_p99_ms": cold["p99_ms"],
            "warm_p99_ms": warm["p99_ms"],
            "warm_throughput_rps": warm["throughput_rps"],
            "cold_throughput_rps": cold["throughput_rps"],
        },
    )


if __name__ == "__main__":
    sys.exit(main())
