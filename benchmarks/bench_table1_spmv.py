"""Table 1: sequential SpMV across matrices × storage formats.

Paper claim reproduced: there is no single best format — the winner is
determined by matrix structure (Diagonal/ITPACK on regular grids, CRS on
irregular/row-skewed matrices, BS95 on multi-dof FEM structure).

Each benchmark measures one y = A·x through the compiled kernel (library
matvec for BS95).  The executor backend is selected with ``--backend``
(default ``vectorized``) and recorded in every benchmark's ``extra_info``
so saved JSON never presents numbers from different backends as
comparable.  ``harness.py table1`` prints the full paper-style grid.

Standalone usage (no pytest)::

    python benchmarks/bench_table1_spmv.py --backend vectorized
        # measure Table 1 under interpreted AND the named backend,
        # print per-cell speedups and the geomean (target: >= 2x)
    python benchmarks/bench_table1_spmv.py --smoke
        # CRS-only quick check: fails unless vectorized beats interpreted
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from paperbench import TABLE1_FORMATS, TABLE1_NAMES, spmv_closure
from repro.matrices import table1_matrix

_MATRICES = {name: table1_matrix(name) for name in TABLE1_NAMES}


@pytest.mark.parametrize("fmt", TABLE1_FORMATS)
@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_spmv(benchmark, request, name, fmt):
    coo = _MATRICES[name]
    backend = request.config.getoption("--backend")
    fn, flops, label = spmv_closure(fmt, coo, backend=backend)
    benchmark.extra_info["matrix"] = name
    benchmark.extra_info["format"] = fmt
    benchmark.extra_info["nnz"] = coo.nnz
    # the backend that actually produced this number ("library" for BS95):
    # saved JSON rows are only comparable when these labels match
    benchmark.extra_info["backend"] = label
    benchmark.pedantic(fn, rounds=5, iterations=3, warmup_rounds=1)
    # MFlop/s for the report
    benchmark.extra_info["mflops"] = flops / benchmark.stats.stats.min / 1e6


def _main(argv=None):
    import argparse

    import paperbench as pb
    from bench_cli import add_tracking_args, finish_tracking

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--backend", default="vectorized",
                    help="candidate backend to compare against interpreted")
    ap.add_argument("--min-time", type=float, default=0.15,
                    help="per-cell measurement budget (seconds)")
    ap.add_argument("--smoke", action="store_true",
                    help="CRS-only quick check; exit 1 unless the candidate "
                         "backend beats interpreted on every matrix")
    add_tracking_args(ap)
    args = ap.parse_args(argv)

    if args.smoke:
        formats = ["CRS"]
        min_time = min(args.min_time, 0.05)
    else:
        formats = None
        min_time = args.min_time

    base, cand, speedups, gm = pb.compare_backends(
        formats=formats, min_time=min_time, candidate=args.backend
    )
    print(pb.format_backend_comparison(base, cand, speedups, gm))
    if args.smoke:
        slow = {k: s for k, s in speedups.items() if s <= 1.0}
        if slow:
            print(f"SMOKE FAIL: {args.backend} did not beat interpreted on {sorted(slow)}")
            return 1
        print(f"SMOKE OK: {args.backend} beats interpreted on all CRS cells")
    return finish_tracking(
        args,
        bench="table1_spmv",
        value=gm,
        direction="higher",  # geomean speedup over interpreted
        config={
            "backend": args.backend,
            "smoke": bool(args.smoke),
            "formats": sorted(formats) if formats else "all",
        },
        metrics={f"speedup_{m}_{f}": s for (m, f), s in speedups.items()},
    )


if __name__ == "__main__":
    raise SystemExit(_main())
