"""Table 1: sequential SpMV across matrices × storage formats.

Paper claim reproduced: there is no single best format — the winner is
determined by matrix structure (Diagonal/ITPACK on regular grids, CRS on
irregular/row-skewed matrices, BS95 on multi-dof FEM structure).

Each benchmark measures one y = A·x through the compiled kernel (library
matvec for BS95).  ``harness.py table1`` prints the full paper-style grid.
"""

import pytest

from paperbench import TABLE1_FORMATS, TABLE1_NAMES, spmv_closure
from repro.matrices import table1_matrix

_MATRICES = {name: table1_matrix(name) for name in TABLE1_NAMES}


@pytest.mark.parametrize("fmt", TABLE1_FORMATS)
@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_spmv(benchmark, name, fmt):
    coo = _MATRICES[name]
    fn, flops = spmv_closure(fmt, coo)
    benchmark.extra_info["matrix"] = name
    benchmark.extra_info["format"] = fmt
    benchmark.extra_info["nnz"] = coo.nnz
    benchmark.pedantic(fn, rounds=5, iterations=3, warmup_rounds=1)
    # MFlop/s for the report
    benchmark.extra_info["mflops"] = flops / benchmark.stats.stats.min / 1e6
