"""Table 2: parallel CG executor (10 iterations), weak scaling.

Paper claims reproduced in shape:

* Bernoulli-Mixed tracks the hand-written BlockSolve executor closely
  (the paper saw 2–4%; our Python backend pays more — see EXPERIMENTS.md),
* the naive fully-global Bernoulli executor is measurably slower than the
  mixed one (redundant global-to-local indirection on every x access),
* per-rank times are roughly flat across P (weak scaling).

Each benchmark runs a full 10-iteration CG through the simulated machine.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from paperbench import run_cg_measurement

VARIANTS = ["blocksolve", "mixed-bs", "global-bs"]
P_LIST = [2, 4]


@pytest.mark.parametrize("P", P_LIST)
@pytest.mark.parametrize("variant", VARIANTS)
def test_table2_executor(benchmark, variant, P):
    # warm caches (BlockSolve analysis, kernel compilation) outside timing
    run_cg_measurement(variant, P, niter=2)

    def run():
        return run_cg_measurement(variant, P, niter=10)

    m = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["P"] = P
    benchmark.extra_info["executor_seconds"] = m.executor_seconds
    benchmark.extra_info["inspector_seconds"] = m.inspector_seconds


def test_table2_shape():
    """The ordering claim itself, asserted: mixed ≤ ~global, and both
    Bernoulli executors within a small factor of the library."""
    ms = {v: run_cg_measurement(v, 4, niter=10) for v in VARIANTS}
    t_bs = ms["blocksolve"].executor_seconds
    t_mx = ms["mixed-bs"].executor_seconds
    t_gl = ms["global-bs"].executor_seconds
    # in our backend per-block loop overhead puts mixed and naive within
    # noise of each other; the robust claims are the bounds vs the library
    assert t_mx < t_gl * 1.35, "mixed executor should track the naive one"
    assert t_mx < 3 * t_bs, "compiled mixed executor within a small factor of library"
    assert t_gl < 3 * t_bs, "compiled naive executor within a small factor of library"


def main(argv=None):
    from bench_cli import tracked_main
    from paperbench import geomean

    def measure(args):
        niter = 4 if args.smoke else 10
        P = 2 if args.smoke else 4
        ms = {v: run_cg_measurement(v, P, niter=niter) for v in VARIANTS}
        for v, m in ms.items():
            print(f"{v:<12} executor={m.executor_seconds:.4f}s "
                  f"inspector={m.inspector_seconds:.4f}s")
        value = geomean(m.executor_seconds for m in ms.values())
        config = {"P": P, "niter": niter, "smoke": bool(args.smoke)}
        metrics = {
            f"{v}_executor_seconds": ms[v].executor_seconds for v in VARIANTS
        } | {f"{v}_inspector_seconds": ms[v].inspector_seconds for v in VARIANTS}
        return value, config, metrics

    return tracked_main(
        "table2_executor", measure, direction="lower",
        description=__doc__, argv=argv,
    )


if __name__ == "__main__":
    raise SystemExit(main())
