"""Table 3: inspector overhead (inspector time / one executor iteration).

Paper claims reproduced in shape:

* the naive Bernoulli inspector is an order of magnitude above
  Bernoulli-Mixed (it translates every reference, work ∝ problem size),
* the Chaos/HPF-2 Indirect inspectors pay for the distributed translation
  table (build ∝ problem size + all-to-all dereference): Indirect-Mixed
  lands an order of magnitude above Bernoulli-Mixed,
* exploiting distribution structure (replicated multi-block relation)
  keeps the BlockSolve and Bernoulli-Mixed inspectors cheap.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from paperbench import run_cg_measurement, run_indirect_inspector

P_LIST = [2, 4]


@pytest.mark.parametrize("P", P_LIST)
@pytest.mark.parametrize("variant", ["blocksolve", "mixed-bs", "global-bs"])
def test_table3_bernoulli_inspectors(benchmark, variant, P):
    run_cg_measurement(variant, P, niter=2)  # warm caches

    def run():
        return run_cg_measurement(variant, P, niter=10)

    m = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["P"] = P
    benchmark.extra_info["inspector_ratio"] = m.inspector_ratio


@pytest.mark.parametrize("P", P_LIST)
@pytest.mark.parametrize("mixed", [True, False], ids=["indirect-mixed", "indirect"])
def test_table3_chaos_inspectors(benchmark, mixed, P):
    run_indirect_inspector(mixed, P)  # warm caches

    def run():
        return run_indirect_inspector(mixed, P)

    secs = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["P"] = P
    benchmark.extra_info["inspector_seconds"] = secs


def test_table3_shape():
    """The ordering claim, asserted at P=4."""
    niter = 10
    ms = {
        v: run_cg_measurement(v, 4, niter=niter)
        for v in ("blocksolve", "mixed-bs", "global-bs")
    }
    per_iter_mixed = ms["mixed-bs"].executor_seconds / niter
    r_blocksolve = ms["blocksolve"].inspector_ratio
    r_mixed = ms["mixed-bs"].inspector_ratio
    r_naive = ms["global-bs"].inspector_ratio
    r_indirect_mixed = run_indirect_inspector(True, 4) / per_iter_mixed
    # the Chaos path must be far above the structured path (the paper's
    # order-of-magnitude claim; compressed but robust here)
    assert r_indirect_mixed > 2.5 * r_mixed
    # the naive inspector is never cheaper than the mixed one (its extra
    # translation work is vectorized here, so the margin is modest)
    assert r_naive > 0.8 * r_mixed
    # structured inspectors cost at most a few executor iterations
    assert r_blocksolve < 10 and r_mixed < 10 and r_naive < 10


def main(argv=None):
    """CLI: the communication-optimization measurement → BENCH_comm.json.

    ``--smoke`` shrinks the problem so CI can run it in seconds; the
    acceptance claims (warm inspector cheaper than cold, coalesced α+β·n
    time below the per-value baseline, overlap never worse than blocking)
    are asserted here so a regression fails the job, not just the table.
    """
    import argparse
    import json

    from bench_cli import add_tracking_args, finish_tracking
    from paperbench import geomean, run_comm_optimization

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small problem, CI-sized")
    ap.add_argument("--out", default="BENCH_comm.json", help="output JSON path")
    ap.add_argument("--nprocs", type=int, default=4)
    ap.add_argument("--niter", type=int, default=10)
    add_tracking_args(ap)
    args = ap.parse_args(argv)

    cells = 6 if args.smoke else None
    result = run_comm_optimization(
        nprocs=args.nprocs, niter=args.niter, cells_per_rank=cells
    )

    reuse = result["schedule_reuse"]
    assert (
        reuse["warm_inspector"]["nbytes"] < reuse["cold_inspector"]["nbytes"]
    ), "schedule reuse did not reduce inspector traffic"
    co = result["coalescing"]
    assert (
        co["coalesced"]["comm_seconds"] < co["per_value"]["comm_seconds"]
    ), "coalescing did not reduce modeled comm time"
    ov = result["overlap"]
    assert (
        ov["on_parallel_seconds"] <= ov["on_blocking_equivalent_seconds"]
    ), "overlap made the modeled schedule worse"

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    print(
        "inspector bytes cold={cold} warm={warm}  cache hits={hits} misses={misses}".format(
            cold=reuse["cold_inspector"]["nbytes"],
            warm=reuse["warm_inspector"]["nbytes"],
            hits=reuse["cache"]["hits"],
            misses=reuse["cache"]["misses"],
        )
    )
    print(
        "executor comm seconds coalesced={c:.6f} per-value={p:.6f}".format(
            c=co["coalesced"]["comm_seconds"], p=co["per_value"]["comm_seconds"]
        )
    )
    print(
        "parallel seconds overlap-on={on:.6f} overlap-off={off:.6f} blocking-equivalent={blk:.6f}".format(
            on=ov["on_parallel_seconds"],
            off=ov["off_parallel_seconds"],
            blk=ov["on_blocking_equivalent_seconds"],
        )
    )

    # headline: geomean of the four modeled seconds this bench optimizes
    # (all α–β model outputs — deterministic across machines, so the
    # regression gate sees code changes, not host noise)
    headline = geomean(
        [
            co["coalesced"]["comm_seconds"],
            co["per_value"]["comm_seconds"],
            reuse["cold_inspector"]["seconds"],
            ov["on_parallel_seconds"],
        ]
    )
    return finish_tracking(
        args,
        bench="table3_inspector",
        value=headline,
        direction="lower",
        config={
            "nprocs": args.nprocs,
            "niter": args.niter,
            "smoke": bool(args.smoke),
            "calibration": result["calibration"],
            "n": result["n"],
        },
        metrics={
            "coalesced_comm_seconds": co["coalesced"]["comm_seconds"],
            "per_value_comm_seconds": co["per_value"]["comm_seconds"],
            "cold_inspector_seconds": reuse["cold_inspector"]["seconds"],
            "warm_inspector_seconds": reuse["warm_inspector"]["seconds"],
            "overlap_on_parallel_seconds": ov["on_parallel_seconds"],
            "overlap_off_parallel_seconds": ov["off_parallel_seconds"],
        },
    )


if __name__ == "__main__":
    raise SystemExit(main())
