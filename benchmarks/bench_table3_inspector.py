"""Table 3: inspector overhead (inspector time / one executor iteration).

Paper claims reproduced in shape:

* the naive Bernoulli inspector is an order of magnitude above
  Bernoulli-Mixed (it translates every reference, work ∝ problem size),
* the Chaos/HPF-2 Indirect inspectors pay for the distributed translation
  table (build ∝ problem size + all-to-all dereference): Indirect-Mixed
  lands an order of magnitude above Bernoulli-Mixed,
* exploiting distribution structure (replicated multi-block relation)
  keeps the BlockSolve and Bernoulli-Mixed inspectors cheap.
"""

import pytest

from paperbench import run_cg_measurement, run_indirect_inspector

P_LIST = [2, 4]


@pytest.mark.parametrize("P", P_LIST)
@pytest.mark.parametrize("variant", ["blocksolve", "mixed-bs", "global-bs"])
def test_table3_bernoulli_inspectors(benchmark, variant, P):
    run_cg_measurement(variant, P, niter=2)  # warm caches

    def run():
        return run_cg_measurement(variant, P, niter=10)

    m = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["P"] = P
    benchmark.extra_info["inspector_ratio"] = m.inspector_ratio


@pytest.mark.parametrize("P", P_LIST)
@pytest.mark.parametrize("mixed", [True, False], ids=["indirect-mixed", "indirect"])
def test_table3_chaos_inspectors(benchmark, mixed, P):
    run_indirect_inspector(mixed, P)  # warm caches

    def run():
        return run_indirect_inspector(mixed, P)

    secs = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["P"] = P
    benchmark.extra_info["inspector_seconds"] = secs


def test_table3_shape():
    """The ordering claim, asserted at P=4."""
    niter = 10
    ms = {
        v: run_cg_measurement(v, 4, niter=niter)
        for v in ("blocksolve", "mixed-bs", "global-bs")
    }
    per_iter_mixed = ms["mixed-bs"].executor_seconds / niter
    r_blocksolve = ms["blocksolve"].inspector_ratio
    r_mixed = ms["mixed-bs"].inspector_ratio
    r_naive = ms["global-bs"].inspector_ratio
    r_indirect_mixed = run_indirect_inspector(True, 4) / per_iter_mixed
    # the Chaos path must be far above the structured path (the paper's
    # order-of-magnitude claim; compressed but robust here)
    assert r_indirect_mixed > 2.5 * r_mixed
    # the naive inspector is never cheaper than the mixed one (its extra
    # translation work is vectorized here, so the margin is modest)
    assert r_naive > 0.8 * r_mixed
    # structured inspectors cost at most a few executor iterations
    assert r_blocksolve < 10 and r_mixed < 10 and r_naive < 10
