"""pytest-benchmark configuration for the paper-reproduction benches.

Run with::

    pytest benchmarks/ --benchmark-only

Workload sizes scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0; the harness uses larger settings for the EXPERIMENTS.md
tables).
"""

import sys
from pathlib import Path

# make `import paperbench` work when pytest is launched from the repo root
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="vectorized",
        help="executor backend for compiled benchmark kernels "
             "(vectorized / interpreted; BS95 cells always use the library "
             "matvec and are labeled 'library')",
    )
