"""Regenerate the paper's tables and figures from the command line.

Usage::

    python benchmarks/harness.py table1            # Table 1 (SpMV MFlop/s)
    python benchmarks/harness.py table2            # Table 2 (CG executor)
    python benchmarks/harness.py table3            # Table 3 (inspector overhead)
    python benchmarks/harness.py fig4              # Figure 4 (conditioning)
    python benchmarks/harness.py ablations         # the four ablation studies
    python benchmarks/harness.py all

Options: ``--procs 2,4,8`` for the parallel experiments, ``--cells N`` for
the per-rank weak-scaling size, ``--fig4-procs 8,64``.  EXPERIMENTS.md
records a full run.

``--trace out.json`` records the whole run — compiler spans, per-rank
phase spans, communication matrices — as Chrome ``trace_event`` JSON;
inspect it with ``chrome://tracing`` or
``python -m repro.observability.report out.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
try:
    import repro  # noqa: F401  (installed, or on PYTHONPATH)
except ModuleNotFoundError:  # run from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import paperbench as pb


def cmd_table1(args):
    print(f"== Table 1: sparse matrix-vector product, MFlop/s "
          f"(compiled kernels, backend={args.backend}; * marks the row winner) ==")
    t0 = time.perf_counter()
    results = pb.run_table1(min_time=args.min_time, backend=args.backend)
    print(pb.format_table1(results))
    print(f"[measured in {time.perf_counter() - t0:.1f}s]")


def _plist(text):
    return tuple(int(x) for x in text.split(","))


def cmd_table2(args):
    P_list = _plist(args.procs)
    print(f"== Table 2: CG executor time, 10 iterations, seconds "
          f"(~{pb.CELLS_PER_RANK * pb.DOF if not args.cells else args.cells * pb.DOF} rows/rank) ==")
    t0 = time.perf_counter()
    rows = pb.run_table2(P_list, cells_per_rank=args.cells)
    print(pb.format_table2(rows))
    print(f"[measured in {time.perf_counter() - t0:.1f}s]")


def cmd_table3(args):
    P_list = _plist(args.procs)
    print("== Table 3: inspector overhead (inspector time / one executor iteration) ==")
    t0 = time.perf_counter()
    rows = pb.run_table3(P_list, cells_per_rank=args.cells)
    print(pb.format_table3(rows))
    print(f"[measured in {time.perf_counter() - t0:.1f}s]")


def cmd_fig4(args):
    P_list = _plist(args.fig4_procs)
    print("== Figure 4: (k + r_I) / (k + r_B) vs iteration count k ==")
    t0 = time.perf_counter()
    series = pb.run_fig4(P_list=P_list, cells_per_rank=args.cells)
    print(pb.format_fig4(series))
    print(f"[measured in {time.perf_counter() - t0:.1f}s]")


def cmd_ablations(args):
    import bench_ablation_codegen as abc_
    import bench_ablation_inode as abi
    import bench_ablation_joinorder as abj
    import bench_ablation_translation as abt

    def best(fn, reps=3):
        fn()
        ts = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            ts.append(time.perf_counter() - t0)
        return min(ts)

    print("== Ablation: scalar vs vectorized codegen (gr_30_30 SpMV, seconds) ==")
    for fmt in abc_.FORMATS:
        ts = best(abc_.make_kernel(fmt, False), 2)
        tv = best(abc_.make_kernel(fmt, True), 3)
        print(f"  {fmt.__name__:<18} scalar {ts:.5f}  vector {tv:.6f}  speedup {ts / tv:7.1f}x")

    print("== Ablation: join order (SpMV with sparse x, seconds) ==")
    from repro.compiler import compile_kernel
    from repro.kernels.spmv import SPMV_SRC

    A, X, Y = abj.setup()
    for driver in ("A", "X"):
        kern = compile_kernel(SPMV_SRC, {"A": A, "X": X, "Y": Y}, force_driver=driver, cache=False)

        def run(k=kern):
            Y.vals[:] = 0.0
            k(A=A, X=X, Y=Y)

        print(f"  driver={driver}: {best(run):.5f}s"
              + ("  (planner's unforced choice)" if driver == "A" else "  (forced bad order)"))

    print("== Ablation: join implementation (merge vs binary search, sparse x) ==")
    A2, X2, Y2 = abj.setup(n=400, density=0.06)
    for impl in ("merge", "search"):
        kern = compile_kernel(
            SPMV_SRC, {"A": A2, "X": X2, "Y": Y2}, allow_merge=(impl == "merge"), cache=False
        )

        def run2(k=kern):
            Y2.vals[:] = 0.0
            k(A=A2, X=X2, Y=Y2)

        print(f"  {impl:<7}: {best(run2):.5f}s")

    print("== Ablation: replicated vs distributed translation (schedule build) ==")
    dist, needed = abt.workload()
    for name, fn in (("replicated", abt.run_replicated), ("translated", abt.run_translated)):
        stats = fn(dist, needed)
        print(
            f"  {name:<11} est. parallel time {stats.parallel_time(pb.COMM) * 1e3:8.2f} ms,"
            f" bytes moved {stats.total_nbytes():>10}"
        )

    print("== Ablation: i-node dense blocks (FEM matrix SpMV, seconds) ==")
    for name, fn in abi.paths().items():
        print(f"  {name:<16} {best(fn):.5f}s")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("what", choices=["table1", "table2", "table3", "fig4", "ablations", "all"])
    ap.add_argument("--procs", default="2,4,8", help="processor counts for tables 2/3")
    ap.add_argument("--fig4-procs", default="8,64", help="processor counts for figure 4")
    ap.add_argument("--cells", type=int, default=None, help="grid cells per rank (default from REPRO_BENCH_SCALE)")
    ap.add_argument("--min-time", type=float, default=0.15, help="per-cell measurement budget for table 1")
    ap.add_argument("--backend", default="vectorized",
                    help="executor backend for table 1's compiled kernels "
                         "(vectorized / interpreted)")
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="save a Chrome-trace of the run (compiler spans, "
                         "per-rank phases, comm matrices)")
    args = ap.parse_args(argv)
    tracer = None
    if args.trace:
        from repro.observability import enable_tracing

        tracer = enable_tracing(process_name=f"harness:{args.what}")
    steps = {
        "table1": cmd_table1,
        "table2": cmd_table2,
        "table3": cmd_table3,
        "fig4": cmd_fig4,
        "ablations": cmd_ablations,
    }
    try:
        if args.what == "all":
            for name in ("table1", "table2", "table3", "fig4", "ablations"):
                steps[name](args)
                print()
        else:
            steps[args.what](args)
    finally:
        if tracer is not None:
            from repro.observability import disable_tracing

            tracer.save(args.trace)
            disable_tracing()
            print(f"[trace: {len(tracer.records)} events -> {args.trace}; "
                  f"view with python -m repro.observability.report {args.trace}]")


if __name__ == "__main__":
    main()
