"""Shared measurement library for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation is regenerated from the
functions here; the ``bench_*`` modules wrap them for pytest-benchmark and
``harness.py`` prints the paper-style tables (recorded in EXPERIMENTS.md).

Scaling: the paper ran 12,288 rows/processor on an IBM SP-2.  Pure-Python
defaults are smaller (``CELLS_PER_RANK`` grid cells × DOF rows per rank);
set the environment variable ``REPRO_BENCH_SCALE`` (float, default 1.0) to
grow or shrink every workload proportionally.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compiler import compile_kernel
from repro.distribution import MultiBlockDistribution
from repro.formats import (
    BlockSolveMatrix,
    DenseVector,
    matrix_format_by_name,
)
from repro.kernels.spmv import SPMV_SRC
from repro.matrices import TABLE1_MATRICES, stencil_matrix, table1_matrix
from repro.observability.trace import span
from repro.parallel.spmd_blocksolve import BSFragments
from repro.parallel.spmd_spmv import IndirectInspector
from repro.runtime import CommModel, Machine
from repro.solvers import parallel_cg

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Table 1 column order (paper Appendix A formats).
TABLE1_FORMATS = ["Diagonal", "Coordinate", "CRS", "ITPACK", "JDiag", "BS95"]
#: Table 1 row order (paper matrices).
TABLE1_NAMES = list(TABLE1_MATRICES)

#: Weak-scaling workload: the paper's 3-D 7-point stencil with 5 dof.
DOF = 5
CELLS_PER_RANK = max(8, int(216 * SCALE))

#: Communication calibration.  Our Python ranks compute roughly this many
#: times slower than the SP-2's compiled node code; scaling the α–β model
#: by the same factor preserves the original machine's compute-to-
#: communication balance, which is what the inspector/executor ratios of
#: Tables 2–3 actually measure.  Override with REPRO_COMM_CALIBRATION.
CALIBRATION = float(os.environ.get("REPRO_COMM_CALIBRATION", "30.0"))
COMM = CommModel(latency=40e-6 * CALIBRATION, inv_bandwidth=25e-9 * CALIBRATION)


# ----------------------------------------------------------------------
# Table 1: sequential SpMV MFlop/s per (matrix, format)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Cell:
    """One (matrix, format) measurement, stamped with the backend that
    produced it so a grid can never silently mix executor backends."""

    mflops: float
    backend: str  # "vectorized" / "interpreted" / "library" (BS95)


def spmv_closure(fmt_name: str, coo, backend: str | None = None):
    """A zero-argument y=A·x callable for one (format, matrix) pair.

    Bernoulli-compiled kernels for the simple formats; the hand-written
    library matvec for BS95 (mirroring the paper, where the BS95 column
    is the BlockSolve library — its label is ``"library"`` regardless of
    ``backend``).  Returns (fn, flops_per_call, backend_label).
    """
    cls = matrix_format_by_name(fmt_name)
    A = cls.from_coo(coo)
    x = np.ones(coo.shape[1])
    flops = 2.0 * coo.nnz
    if fmt_name == "BS95":
        return (lambda: A.matvec(x)), flops, "library"
    X = DenseVector(x)
    Y = DenseVector.zeros(coo.shape[0])
    kern = compile_kernel(SPMV_SRC, {"A": A, "X": X, "Y": Y}, backend=backend)

    def fn():
        Y.vals[:] = 0.0
        kern(A=A, X=X, Y=Y)

    return fn, flops, kern.backend


def measure_mflops(fn, flops: float, min_time: float = 0.15, min_reps: int = 3) -> float:
    """Best-of measurement: repeat until ``min_time`` total, report the
    fastest single call as MFlop/s."""
    fn()  # warm up (compilation, caches)
    best = float("inf")
    total = 0.0
    reps = 0
    while total < min_time or reps < min_reps:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        total += dt
        reps += 1
    return flops / best / 1e6


def run_table1(names=None, formats=None, min_time: float = 0.15, backend: str | None = None):
    """Measure every (matrix, format) pair under one executor backend;
    dict keyed by (name, fmt) of :class:`Table1Cell`."""
    names = names or TABLE1_NAMES
    formats = formats or TABLE1_FORMATS
    out: dict[tuple[str, str], Table1Cell] = {}
    for name in names:
        coo = table1_matrix(name)
        for fmt in formats:
            fn, flops, label = spmv_closure(fmt, coo, backend=backend)
            with span(
                "bench.table1_cell", matrix=name, format=fmt, backend=label, nnz=coo.nnz
            ) as sp:
                mflops = measure_mflops(fn, flops, min_time)
                sp.set(mflops=round(mflops, 2))
            out[(name, fmt)] = Table1Cell(mflops, label)
    return out


def _compiled_backends(results) -> set[str]:
    return {c.backend for c in results.values() if c.backend != "library"}


def format_table1(results, names=None, formats=None) -> str:
    """Paper-style Table 1: rows = matrices, columns = formats; the boxed
    (best) number per row is marked with ``*``.

    Refuses to render a grid whose compiled cells came from different
    executor backends: numbers measured under ``interpreted`` and
    ``vectorized`` are not comparable, and a mixed table would present
    them as if they were.  Use :func:`compare_backends` for that.
    """
    names = names or TABLE1_NAMES
    formats = formats or TABLE1_FORMATS
    backends = _compiled_backends(results)
    if len(backends) > 1:
        raise ValueError(
            f"refusing to format a table mixing executor backends {sorted(backends)}; "
            "cross-backend numbers are not comparable — use compare_backends()"
        )
    w = 12
    header = f"[compiled cells: backend={next(iter(backends))}; BS95: library]" if backends else ""
    lines = ["Name".ljust(12) + "".join(f.rjust(w) for f in formats)]
    for name in names:
        vals = [results[(name, f)].mflops for f in formats]
        best = max(vals)
        cells = [
            (f"{v:.1f}*" if v == best else f"{v:.1f}").rjust(w) for v in vals
        ]
        lines.append(name.ljust(12) + "".join(cells))
    if header:
        lines.append(header)
    return "\n".join(lines)


def geomean(values) -> float:
    vals = np.asarray(list(values), dtype=np.float64)
    if len(vals) == 0:
        raise ValueError("geomean of an empty sequence")
    return float(np.exp(np.log(vals).mean()))


def compare_backends(
    names=None,
    formats=None,
    min_time: float = 0.15,
    baseline: str = "interpreted",
    candidate: str = "vectorized",
):
    """Table 1 under two executor backends, with per-cell speedups.

    Returns ``(base, cand, speedups, geomean_speedup)`` where the speedup
    dict covers *compiled* cells only — the BS95 library column runs the
    same hand-written kernel under either backend and is excluded from
    the comparison rather than diluting it.
    """
    base = run_table1(names, formats, min_time, backend=baseline)
    cand = run_table1(names, formats, min_time, backend=candidate)
    speedups = {
        key: cand[key].mflops / cell.mflops
        for key, cell in base.items()
        if cell.backend != "library" and cand[key].backend != "library"
    }
    return base, cand, speedups, geomean(speedups.values())


def format_backend_comparison(base, cand, speedups, gm) -> str:
    """Per-cell speedup grid (candidate MFlop/s / baseline MFlop/s)."""
    base_name = next(iter(_compiled_backends(base)))
    cand_name = next(iter(_compiled_backends(cand)))
    names = sorted({k[0] for k in speedups}, key=lambda n: TABLE1_NAMES.index(n))
    formats = sorted({k[1] for k in speedups}, key=lambda f: TABLE1_FORMATS.index(f))
    w = 12
    lines = [
        f"speedup: {cand_name} over {base_name} (MFlop/s ratio; library cells excluded)",
        "Name".ljust(12) + "".join(f.rjust(w) for f in formats),
    ]
    for name in names:
        lines.append(
            name.ljust(12)
            + "".join(f"{speedups[(name, f)]:.2f}x".rjust(w) for f in formats)
        )
    lines.append(f"geomean speedup: {gm:.2f}x over {len(speedups)} cells")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables 2 & 3 + Figure 4: the parallel CG experiment
# ----------------------------------------------------------------------
@dataclass
class CGMeasurement:
    """One (variant, P) cell of Tables 2/3."""

    variant: str
    nprocs: int
    niter: int
    executor_seconds: float  # estimated parallel time, whole executor phase
    inspector_seconds: float

    @property
    def inspector_ratio(self) -> float:
        """Inspector time / one executor iteration (Table 3's quantity)."""
        return self.inspector_seconds / (self.executor_seconds / self.niter)


def weak_scaling_problem(nprocs: int, cells_per_rank: int | None = None, dof: int = DOF):
    """The paper's synthetic problem at P ranks: a 3-D grid sized so every
    rank holds ``cells_per_rank`` points (7-pt stencil, ``dof`` dof)."""
    cells = cells_per_rank or CELLS_PER_RANK
    total = cells * nprocs
    # fixed 6×6 cross-section, grow the third dimension with P
    nz = max(1, int(round(total / 36)))
    return stencil_matrix((6, 6, nz), dof=dof, rng=97)


_BS_CACHE: dict[tuple, tuple] = {}


def _bs_problem(nprocs: int, cells_per_rank: int | None = None):
    key = (nprocs, cells_per_rank or CELLS_PER_RANK)
    if key not in _BS_CACHE:
        coo = weak_scaling_problem(nprocs, cells_per_rank)
        bs = BlockSolveMatrix.from_coo(coo)
        dist = MultiBlockDistribution.from_color_classes(bs.clique_ptr, bs.colors, nprocs)
        _BS_CACHE[key] = (coo, bs, dist)
    return _BS_CACHE[key]


def run_cg_measurement(
    variant: str,
    nprocs: int,
    niter: int = 10,
    cells_per_rank: int | None = None,
    warmup: bool = True,
) -> CGMeasurement:
    """One CG run of a Bernoulli/BlockSolve variant; times from the
    machine's phase statistics under the α–β model."""
    coo, bs, dist = _bs_problem(nprocs, cells_per_rank)
    rng = np.random.default_rng(5)
    b = rng.standard_normal(coo.shape[0])
    if warmup:
        # compile kernels, fault in numpy paths, warm allocator caches
        parallel_cg(bs, b, nprocs=nprocs, variant=variant, niter=1, dist=dist)
    res = parallel_cg(bs, b, nprocs=nprocs, variant=variant, niter=niter, dist=dist)
    stats = res.stats
    return CGMeasurement(
        variant,
        nprocs,
        niter,
        executor_seconds=stats.window("executor").parallel_time(COMM),
        inspector_seconds=stats.window("inspector").parallel_time(COMM),
    )


def run_indirect_inspector(
    mixed: bool,
    nprocs: int,
    niter_for_ratio: int = 10,
    cells_per_rank: int | None = None,
    warmup: bool = True,
) -> float:
    """Inspector seconds of the Chaos (HPF-2 INDIRECT) path on the same
    problem and the same partitioning, expressed as an indirect map."""
    if warmup:
        run_indirect_inspector(mixed, nprocs, niter_for_ratio, cells_per_rank, warmup=False)
    coo, bs, dist = _bs_problem(nprocs, cells_per_rank)
    n = bs.shape[0]
    frs = [BSFragments(p, dist, bs) for p in range(nprocs)]  # assembly, untimed

    def make(p):
        yield ("phase", "inspector")
        fr = frs[p]
        if mixed:
            used = fr.A_SNL_global.column_support()
        else:
            used = np.union1d(
                fr.A_D_ino.column_support(), fr.off_global.column_support()
            )
        insp = IndirectInspector(p, n, nprocs, dist.owned_by(p), used)
        yield from insp.setup()
        return insp.sched.nghost

    machine = Machine(nprocs)
    _, stats = machine.run(make)
    return stats.window("inspector").parallel_time(COMM)


def run_comm_optimization(
    nprocs: int = 4, niter: int = 10, cells_per_rank: int | None = None
) -> dict:
    """The communication-optimization measurement behind BENCH_comm.json.

    Three paired runs of the same mixed-spec CG solve, each isolating one
    :class:`~repro.runtime.comm.CommOptions` knob:

    * **schedule reuse** — cold vs warm solve sharing a
      :class:`~repro.runtime.schedule_cache.ScheduleCache`: the warm
      inspector pays one agreement allreduce instead of the request
      exchange, amortizing inspection to ~once per structure,
    * **coalescing** — packed envelopes vs one ``(slot, value)`` envelope
      per ghost value, compared under the α–β model,
    * **overlap** — nonblocking exchange + interior compute vs blocking,
      compared as modeled parallel time.

    Every pair also checks bitwise-identical iterates — the knobs'
    contract — and the returned dict carries the observability snapshot
    (``inspector.cache_hits``, ``comm.coalesced_msgs``,
    ``comm.overlap_ratio``, ...).
    """
    from repro.observability import metrics as _metrics
    from repro.runtime.schedule_cache import ScheduleCache

    coo, bs, dist = _bs_problem(nprocs, cells_per_rank)
    rng = np.random.default_rng(5)
    b = rng.standard_normal(coo.shape[0])

    def solve(iters=niter, **kw):
        return parallel_cg(
            bs, b, nprocs, variant="mixed-bs", niter=iters, dist=dist, **kw
        )

    solve(iters=1)  # warm kernels/compile caches, untimed

    def insp(stats):
        w = stats.window("inspector")
        return {
            "msgs": w.total_msgs(),
            "nbytes": w.total_nbytes(),
            "seconds": w.parallel_time(COMM),
        }

    reg = _metrics.enable_metrics()
    # (a) schedule reuse: cold vs warm against one shared cache
    cache = ScheduleCache()
    cold = solve(schedule_cache=cache)
    warm = solve(schedule_cache=cache)
    # (b) coalescing: packed envelopes vs per-value Fragmented baseline
    co = solve(overlap=False, coalesce=True)
    pv = solve(overlap=False, coalesce=False)
    # (c) overlap: nonblocking + interior compute vs blocking
    on = solve(overlap=True)
    off = solve(overlap=False)
    snapshot = {
        k: v
        for k, v in reg.snapshot().items()
        if any(t in k for t in ("cache", "coalesced", "pervalue", "overlap"))
    }
    _metrics.disable_metrics()

    for other in (warm, co, pv, on, off):
        if not np.array_equal(cold.x, other.x):
            raise AssertionError("comm knobs changed the computed iterates")

    ex_co = co.stats.window("executor")
    ex_pv = pv.stats.window("executor")
    return {
        "nprocs": nprocs,
        "niter": niter,
        "n": int(coo.shape[0]),
        "calibration": CALIBRATION,
        "schedule_reuse": {
            "cold_inspector": insp(cold.stats),
            "warm_inspector": insp(warm.stats),
            "cache": cache.stats.as_dict(),
        },
        "coalescing": {
            "coalesced": {
                "executor_msgs": ex_co.total_msgs(),
                "executor_nbytes": ex_co.total_nbytes(),
                "comm_seconds": ex_co.comm_time(COMM),
            },
            "per_value": {
                "executor_msgs": ex_pv.total_msgs(),
                "executor_nbytes": ex_pv.total_nbytes(),
                "comm_seconds": ex_pv.comm_time(COMM),
            },
        },
        "overlap": {
            "on_parallel_seconds": on.stats.parallel_time(COMM),
            "off_parallel_seconds": off.stats.parallel_time(COMM),
            "on_blocking_equivalent_seconds": sum(
                p.step_time(COMM) for p in on.stats.phases
            ),
        },
        "metrics": snapshot,
    }


def run_table2(P_list=(2, 4, 8), niter: int = 10, cells_per_rank: int | None = None):
    """Table 2: executor seconds for the trio at each P."""
    rows = []
    for P in P_list:
        cells = {}
        for variant in ("blocksolve", "mixed-bs", "global-bs"):
            cells[variant] = run_cg_measurement(variant, P, niter, cells_per_rank)
        rows.append((P, cells))
    return rows


def format_table2(rows) -> str:
    lines = [
        f"{'P':>3} {'BlockSolve':>12} {'Bern-Mixed':>12} {'diff':>8} {'Bernoulli':>12} {'diff':>8}"
    ]
    for P, cells in rows:
        t_bs = cells["blocksolve"].executor_seconds
        t_mx = cells["mixed-bs"].executor_seconds
        t_gl = cells["global-bs"].executor_seconds
        lines.append(
            f"{P:>3} {t_bs:>12.4f} {t_mx:>12.4f} {100 * (t_mx - t_bs) / t_bs:>7.1f}% "
            f"{t_gl:>12.4f} {100 * (t_gl - t_bs) / t_bs:>7.1f}%"
        )
    return "\n".join(lines)


def run_table3(P_list=(2, 4, 8), niter: int = 10, cells_per_rank: int | None = None):
    """Table 3: inspector overhead ratios (inspector / one executor
    iteration).  Indirect-* use the Bernoulli executors as the denominator,
    exactly as the paper does."""
    rows = []
    for P in P_list:
        ms = {
            v: run_cg_measurement(v, P, niter, cells_per_rank)
            for v in ("blocksolve", "mixed-bs", "global-bs")
        }
        per_iter_mixed = ms["mixed-bs"].executor_seconds / niter
        per_iter_global = ms["global-bs"].executor_seconds / niter
        ind_mixed = run_indirect_inspector(True, P, niter, cells_per_rank)
        ind_naive = run_indirect_inspector(False, P, niter, cells_per_rank)
        rows.append(
            (
                P,
                {
                    "BlockSolve": ms["blocksolve"].inspector_ratio,
                    "Bernoulli-Mixed": ms["mixed-bs"].inspector_ratio,
                    "Bernoulli": ms["global-bs"].inspector_ratio,
                    "Indirect-Mixed": ind_mixed / per_iter_mixed,
                    "Indirect": ind_naive / per_iter_global,
                },
            )
        )
    return rows


def format_table3(rows) -> str:
    cols = ["BlockSolve", "Bernoulli-Mixed", "Bernoulli", "Indirect-Mixed", "Indirect"]
    lines = [f"{'P':>3} " + " ".join(c.rjust(16) for c in cols)]
    for P, cells in rows:
        lines.append(
            f"{P:>3} " + " ".join(f"{cells[c]:>16.2f}" for c in cols)
        )
    return "\n".join(lines)


def run_fig4(P_list=(8, 64), ks=None, niter: int = 10, cells_per_rank: int | None = None):
    """Figure 4: (k + r_I) / (k + r_B) for iteration counts k — the
    relative cost of the Indirect-Mixed solver vs Bernoulli-Mixed as the
    problem conditioning (iteration count) varies (paper Eq. 25)."""
    ks = list(ks) if ks is not None else list(range(5, 101))
    series = {}
    for P in P_list:
        m = run_cg_measurement("mixed-bs", P, niter, cells_per_rank)
        per_iter = m.executor_seconds / niter
        r_b = m.inspector_seconds / per_iter
        r_i = run_indirect_inspector(True, P, niter, cells_per_rank) / per_iter
        series[P] = {
            "r_B": r_b,
            "r_I": r_i,
            "k": ks,
            "ratio": [(k + r_i) / (k + r_b) for k in ks],
        }
    return series


def format_fig4(series) -> str:
    lines = []
    for P, s in sorted(series.items()):
        lines.append(
            f"P={P}: r_B={s['r_B']:.2f} iterations, r_I={s['r_I']:.2f} iterations"
        )
        marks = [5, 10, 20, 40, 60, 80, 100]
        for k in marks:
            if k in s["k"]:
                r = s["ratio"][s["k"].index(k)]
                lines.append(f"  k={k:>3}: Indirect-Mixed / Bernoulli-Mixed = {r:.3f}")
        # iterations needed to get within 10% / 20%
        for pct in (0.10, 0.20):
            within = [k for k, r in zip(s["k"], s["ratio"]) if r <= 1 + pct]
            txt = str(within[0]) if within else f">{s['k'][-1]}"
            lines.append(f"  within {int(pct * 100)}%: k >= {txt}")
    return "\n".join(lines)
