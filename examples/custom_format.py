#!/usr/bin/env python
"""Extensibility: teach the compiler a storage format it has never seen.

The paper's central claim: "the compilation algorithms are independent of
any particular set of storage formats and new storage formats can be added
to the compiler" (Sec. 2.3).  Here we define LAPACK-style *banded* storage
from scratch — outside the library — by implementing the access-method
protocol, and the unmodified compiler plans and generates vectorized code
for it.  Run::

    python examples/custom_format.py
"""

import numpy as np

from repro import COOMatrix, DenseVector, compile_kernel
from repro.formats.base import AccessLevel, Format
from repro.formats.dense import DenseAxisLevel


class BandRowLevel(AccessLevel):
    """Entries of one row of a banded matrix: j ∈ [i-kl, i+ku] ∩ [0, m)."""

    searchable = True
    sorted_enum = True
    dense = False
    search_cost = 1.0  # O(1): position is arithmetic

    def __init__(self, owner: "BandedMatrix"):
        self.binds = (1,)
        self._owner = owner

    def avg_fanout(self):
        return float(self._owner.kl + self._owner.ku + 1)

    def emit_enumerate(self, g, prefix, parent_pos, axis_vars):
        i = parent_pos
        j = axis_vars[1]
        g.open(
            f"for {j} in range(max(0, {i} - {prefix}_kl), "
            f"min({prefix}_n1, {i} + {prefix}_ku + 1)):"
        )
        return f"{i}, {j} - {i} + {prefix}_kl"

    def emit_search(self, g, prefix, parent_pos, axis_exprs):
        i, j = parent_pos, axis_exprs[1]
        g.open(f"if not (max(0, {i} - {prefix}_kl) <= {j} < min({prefix}_n1, {i} + {prefix}_ku + 1)):")
        g.emit("continue")
        g.close()
        return f"{i}, {j} - {i} + {prefix}_kl"


class BandedMatrix(Format):
    """LAPACK-band storage: ``band[i, j - i + kl]`` holds A[i, j]."""

    format_name = "Banded"

    def __init__(self, shape, kl, ku, band):
        self._shape = tuple(shape)
        self.kl, self.ku = int(kl), int(ku)
        self.band = np.ascontiguousarray(band, dtype=np.float64)
        assert self.band.shape == (shape[0], self.kl + self.ku + 1)

    @classmethod
    def from_coo(cls, coo):
        d = coo.col - coo.row
        kl = int(max(0, -d.min(initial=0)))
        ku = int(max(0, d.max(initial=0)))
        band = np.zeros((coo.shape[0], kl + ku + 1))
        band[coo.row, coo.col - coo.row + kl] = coo.vals
        return cls(coo.shape, kl, ku, band)

    def to_coo(self):
        i, off = np.nonzero(self.band)
        j = i + off - self.kl
        ok = (j >= 0) & (j < self._shape[1])
        return COOMatrix.from_entries(self._shape, i[ok], j[ok], self.band[i[ok], off[ok]])

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self):
        return int(np.count_nonzero(self.band))

    def levels(self):
        return (DenseAxisLevel(0, self._shape[0]), BandRowLevel(self))

    def storage(self, prefix):
        return {
            f"{prefix}_band": self.band,
            f"{prefix}_kl": self.kl,
            f"{prefix}_ku": self.ku,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_band[{pos}]"

    def inner_vector_view(self, prefix, parent_pos):
        i = parent_pos
        lo = f"max(0, {i} - {prefix}_kl)"
        hi = f"min({prefix}_n1, {i} + {prefix}_ku + 1)"
        return {
            "slice": (lo, hi),
            "index": {1: ("affine", lo)},
            "vals": f"{prefix}_band[{i}][{{s}} - {i} + {prefix}_kl : {{e}} - {i} + {prefix}_kl]",
        }


def main():
    rng = np.random.default_rng(0)
    n = 500
    # a pentadiagonal test matrix
    diags = {-2: 0.3, -1: -1.0, 0: 4.0, 1: -1.0, 2: 0.3}
    rows, cols, vals = [], [], []
    for off, v in diags.items():
        i = np.arange(max(0, -off), min(n, n - off))
        rows.append(i)
        cols.append(i + off)
        vals.append(np.full(len(i), v) * (1 + 0.01 * rng.standard_normal(len(i))))
    coo = COOMatrix.from_entries((n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals))

    A = BandedMatrix.from_coo(coo)
    x = rng.standard_normal(n)
    X, Y = DenseVector(x), DenseVector.zeros(n)
    kernel = compile_kernel(
        "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",
        formats={"A": A, "X": X, "Y": Y},
    )
    kernel(A=A, X=X, Y=Y)
    assert np.allclose(Y.vals, coo.to_dense() @ x)
    print("the unmodified compiler generated, for a format it has never seen:\n")
    print(kernel.source)
    print("result matches the dense reference: ||y|| =", np.linalg.norm(Y.vals))


if __name__ == "__main__":
    main()
