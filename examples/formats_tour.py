#!/usr/bin/env python
"""Regenerate the paper's storage-format illustrations (Figures 1 and 2).

Figure 1: the 6×6 example matrix in CCS and CCCS — the COLP / VALS /
ROWIND / COLIND arrays exactly as drawn in the paper.

Figure 2: a multi-dof FEM matrix through the BlockSolve analysis —
i-nodes, cliques, coloring, and the i-node dense-block storage.

Run::

    python examples/formats_tour.py
"""

import numpy as np

from repro import BlockSolveMatrix, CCCSMatrix, CCSMatrix, COOMatrix, fem_matrix
from repro.graphs import adjacency_sets, find_inodes


def figure1() -> None:
    # the matrix of paper Fig. 1(a): values 1..6, columns 2 and 5 empty
    dense = np.array(
        [
            [1.0, 0, 0, 0, 5.0, 0],
            [0, 3.0, 0, 0, 0, 0],
            [2.0, 0, 0, 0, 0, 0],
            [0, 0, 0, 4.0, 0, 0],
            [0, 0, 0, 0, 6.0, 0],
            [0, 0, 0, 0, 0, 0],
        ]
    )
    A = COOMatrix.from_dense(dense)
    print("=== Figure 1(a): the example matrix ===")
    for row in dense:
        print("   ", "  ".join(f"{v:3.0f}" if v else "  ." for v in row))

    ccs = CCSMatrix.from_coo(A)
    print("\n=== Figure 1(b): CCS storage ===")
    print("  COLP   =", ccs.colp.tolist())
    print("  VALS   =", ccs.vals.tolist())
    print("  ROWIND =", ccs.rowind.tolist())

    cccs = CCCSMatrix.from_coo(A)
    print("\n=== Figure 1(c): CCCS storage (empty columns compressed away) ===")
    print("  COLIND =", cccs.colind.tolist())
    print("  COLP   =", cccs.colp.tolist())
    print("  VALS   =", cccs.vals.tolist())
    print("  ROWIND =", cccs.rowind.tolist())


def figure2() -> None:
    dof = 3
    m = fem_matrix(points=8, dof=dof, neighbors=2, rng=4)
    print("\n=== Figure 2: BlockSolve analysis of a 3-dof FEM matrix ===")
    groups = find_inodes(adjacency_sets(m))
    print(f"  i-nodes (rows with identical column structure): {len(groups)} groups")
    for g in groups[:4]:
        print(f"    rows {g}")
    bs = BlockSolveMatrix.from_coo(m)
    widths = np.diff(bs.clique_ptr).tolist()
    print(f"  cliques after partition: sizes {widths}")
    print(f"  colors used by the greedy coloring: {bs.ncolors}")
    print(f"  color of each clique (reordered): {bs.colors.tolist()}")
    print("  reordered layout: dense diagonal clique blocks "
          f"({bs.dense_blocks.nblocks} blocks, {bs.dense_blocks.stored_count} stored values)")
    off = bs.offdiag
    print(f"  off-diagonal i-node storage: {off.ninodes} i-nodes, {off.nnz} values")
    t = 0
    rows = off.rows[off.inodeptr[t]:off.inodeptr[t + 1]].tolist()
    cols = off.cols[off.colptr[t]:off.colptr[t + 1]].tolist()
    print(f"  i-node 0 (paper Fig. 2(c) style): rows {rows} share columns {cols}")
    block = off.vals[off.voff[t]:off.voff[t + 1]].reshape(len(rows), len(cols))
    print("  its dense value block:")
    for r in block:
        print("    ", "  ".join(f"{v:7.3f}" for v in r))

    # the round trip is exact
    assert np.allclose(bs.to_dense(), m.to_dense())
    print("  (reordering + splitting round-trips exactly)")


if __name__ == "__main__":
    figure1()
    figure2()
