#!/usr/bin/env python
"""The paper's parallel experiment in miniature (Sections 3–4).

Builds the synthetic 3-D stencil problem (7-point, 5 dof per grid point),
reorders it into BlockSolve form, and solves it with preconditioned CG on
the simulated SPMD machine using all three executor strategies:

* the hand-written BlockSolve library path,
* the compiler's mixed local/global specification (paper Eq. 24),
* the naive fully-global specification (paper Eq. 23).

Prints solution agreement, executor/inspector times and communication
counts.  Run::

    python examples/parallel_cg.py
"""

import numpy as np

from repro import CRSMatrix, cg, parallel_cg, render_comm_matrix, spmv, stencil_matrix
from repro.observability import render_phase_breakdown
from repro.runtime import CommModel


def main() -> None:
    coo = stencil_matrix((6, 6, 6), dof=5, rng=7)
    n = coo.shape[0]
    rng = np.random.default_rng(1)
    xstar = rng.standard_normal(n)
    b = spmv(CRSMatrix.from_coo(coo), xstar)
    print(f"problem: {n} unknowns ({coo.nnz} nonzeros), 7-pt stencil, 5 dof/point")

    niter = 10
    seq = cg(CRSMatrix.from_coo(coo), b, diag=coo.diagonal(), maxiter=niter, tol=0.0)
    print(f"sequential PCG, {niter} iterations: residual {seq.final_residual:.3e}\n")

    P = 4
    comm = CommModel()
    print(f"{'variant':<12} {'=seq?':>6} {'exec(s)':>9} {'insp(s)':>9} {'msgs':>7} {'MB':>7}")
    last = None
    for variant in ("blocksolve", "mixed-bs", "global-bs"):
        res = last = parallel_cg(coo, b, nprocs=P, variant=variant, niter=niter)
        same = np.allclose(res.x, seq.x, atol=1e-8)
        ex = res.stats.window("executor").parallel_time(comm)
        insp = res.stats.window("inspector").parallel_time(comm)
        print(
            f"{variant:<12} {'yes' if same else 'NO':>6} {ex:>9.4f} {insp:>9.4f}"
            f" {res.stats.total_msgs():>7} {res.stats.total_nbytes() / 1e6:>7.3f}"
        )
        assert same, "parallel result must match sequential CG"

    print("\nall three strategies reproduce the sequential iterates exactly;")
    print("they differ in inspector work and executor indirection (Tables 2-3).")

    # observability: who talked to whom, and where the time went
    # (for the last variant run — the naive fully-global specification)
    stats = last.stats
    print()
    print(render_comm_matrix(stats.comm_matrix(), title="global-bs rank-to-rank bytes"))
    print()
    print(render_phase_breakdown(stats, comm))


if __name__ == "__main__":
    main()
