#!/usr/bin/env python
"""Quickstart: compile the paper's SpMV loop against three storage formats.

The Bernoulli compiler takes a *dense* DOANY loop nest plus per-array
storage formats and generates efficient sparse code.  Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CCSMatrix,
    COOMatrix,
    CRSMatrix,
    DenseVector,
    compile_kernel,
    explain,
)

# the paper's running example (Sec. 2): y = A x
SPMV = "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }"


def main() -> None:
    rng = np.random.default_rng(0)
    n = 2000
    coo = COOMatrix.random(n, n, density=0.005, rng=rng)
    x = rng.standard_normal(n)
    print(f"matrix: {n}x{n}, {coo.nnz} nonzeros\n")

    reference = None
    for fmt in (CRSMatrix, CCSMatrix, COOMatrix):
        A = fmt.from_coo(coo)
        X = DenseVector(x)
        Y = DenseVector.zeros(n)
        kernel = compile_kernel(SPMV, formats={"A": A, "X": X, "Y": Y})
        kernel(A=A, X=X, Y=Y)

        print(f"--- {fmt.__name__}: what the compiler generated ---")
        print(kernel.source)
        if reference is None:
            reference = Y.vals.copy()
        else:
            assert np.allclose(Y.vals, reference), "formats disagree!"

    print("all formats agree; ||y|| =", np.linalg.norm(reference))

    # the same compiler output, explained: per-statement access plans
    A = CRSMatrix.from_coo(coo)
    kernel = compile_kernel(SPMV, formats={"A": A, "X": DenseVector(x), "Y": DenseVector.zeros(n)})
    print("--- the plan the optimizer chose for CRS ---")
    print(kernel.describe_plans())

    # full planner post-mortem: join order, join method per term, and the
    # alternatives the optimizer rejected (see repro.observability)
    print("--- explain(kernel) ---")
    print(explain(kernel))


if __name__ == "__main__":
    main()
