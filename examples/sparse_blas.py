#!/usr/bin/env python
"""The "extensible sparse BLAS" (paper Sec. 1 & 6).

Instead of hand-writing 6² format combinations of every operation, each
operation is *one* dense loop compiled on demand against whatever formats
the data is in.  This script exercises the kernel layer — SpMV, transposed
SpMV, sparse × skinny-dense, sparse × sparse — across formats, then uses
them inside the iterative solvers.  Run::

    python examples/sparse_blas.py
"""

import numpy as np

from repro import (
    CCSMatrix,
    COOMatrix,
    CRSMatrix,
    DiagonalMatrix,
    ELLMatrix,
    JaggedDiagonalMatrix,
    cg,
    grid_laplacian,
    jacobi,
    power_iteration,
    spmm,
    spmv,
    spmv_transpose,
)

FORMATS = [COOMatrix, CRSMatrix, CCSMatrix, ELLMatrix, DiagonalMatrix, JaggedDiagonalMatrix]


def main():
    rng = np.random.default_rng(0)
    coo = COOMatrix.random(400, 300, density=0.02, rng=rng)
    dense = coo.to_dense()
    x = rng.standard_normal(300)
    xt = rng.standard_normal(400)
    B = rng.standard_normal((300, 8))

    print("one SpMV loop, six formats:")
    for fmt in FORMATS:
        A = fmt.from_coo(coo)
        y = spmv(A, x)
        ok = np.allclose(y, dense @ x)
        print(f"  y = A x      [{fmt.__name__:<22}] {'ok' if ok else 'WRONG'}")
        assert ok

    A = CRSMatrix.from_coo(coo)
    assert np.allclose(spmv_transpose(A, xt), dense.T @ xt)
    print("  y = A^T x    [CRSMatrix              ] ok  (no transposed copy built)")

    assert np.allclose(spmm(A, B), dense @ B)
    print("  C = A B      [sparse x skinny dense  ] ok")

    other = COOMatrix.random(300, 100, density=0.05, rng=rng)
    got = spmm(A, CRSMatrix.from_coo(other))
    assert np.allclose(got, dense @ other.to_dense())
    print("  C = A B      [sparse x sparse        ] ok  (chained drivers)")

    # the kernels inside solvers
    lap = grid_laplacian((20, 20))
    b = rng.standard_normal(lap.shape[0])
    res = cg(CRSMatrix.from_coo(lap), b, diag=lap.diagonal(), tol=1e-10)
    print(f"\nPCG on a 400-unknown Laplacian: {res.iterations} iterations, "
          f"residual {res.final_residual:.2e}")

    dd = COOMatrix.from_dense(lap.to_dense() + 3 * np.eye(lap.shape[0]))
    _, it, r = jacobi(CRSMatrix.from_coo(dd), b, tol=1e-10)
    print(f"Jacobi on the shifted system: {it} iterations, residual {r:.2e}")

    lam, _, it = power_iteration(CRSMatrix.from_coo(lap), rng=0)
    print(f"power iteration: dominant eigenvalue {lam:.6f} in {it} iterations "
          f"(exact {np.linalg.eigvalsh(lap.to_dense())[-1]:.6f})")


if __name__ == "__main__":
    main()
