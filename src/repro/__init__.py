"""repro — a reproduction of the Bernoulli sparse compiler.

"Compiling Parallel Code for Sparse Matrix Applications"
(Kotlyar, Pingali, Stodghill — Cornell, SC 1997).

The library compiles dense DOANY loop nests plus storage-format
specifications into efficient sparse code (sequential and SPMD parallel),
by modelling arrays as relations and loop execution as relational query
evaluation.

Quickstart::

    import numpy as np
    from repro import compile_kernel, CRSMatrix, COOMatrix, DenseVector

    A = CRSMatrix.from_coo(COOMatrix.random(1000, 1000, 0.01, rng=0))
    x = DenseVector(np.ones(1000))
    y = DenseVector.zeros(1000)
    k = compile_kernel(
        "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",
        formats={"A": A, "X": x, "Y": y},
    )
    k(A=A, X=x, Y=y)        # y += A @ x, through generated code
    print(k.source)          # inspect what the compiler emitted

See README.md for the architecture and DESIGN.md / EXPERIMENTS.md for the
paper-reproduction map.
"""

from repro.compiler import (
    AutoPlan,
    CompiledKernel,
    autoplan,
    autoplan_spmv,
    compile_kernel,
    parse,
)
from repro.formats import (
    BlockDiagonalMatrix,
    BlockSolveMatrix,
    CCCSMatrix,
    CCSMatrix,
    COOMatrix,
    CRSMatrix,
    DenseMatrix,
    DenseVector,
    DiagonalMatrix,
    ELLMatrix,
    Format,
    InodeMatrix,
    JaggedDiagonalMatrix,
    Permutation,
    PermutedMatrix,
    SparseVector,
    TranslatedVector,
    FORMAT_NAMES,
    matrix_format_by_name,
)
from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    GeneralizedBlockDistribution,
    IndirectDistribution,
    MultiBlockDistribution,
)
from repro.kernels import spmm, spmv, spmv_transpose
from repro.matrices import (
    TABLE1_MATRICES,
    fem_matrix,
    grid_laplacian,
    read_matrix_market,
    stencil_matrix,
    table1_matrix,
    write_matrix_market,
)
from repro.observability import (
    Tracer,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    explain,
    get_tracer,
    render_comm_matrix,
    render_phase_breakdown,
)
from repro.runtime import CommModel, DeliveryConfig, FaultPlan, Machine
from repro.solvers import (
    CGResult,
    cg,
    ilu0,
    ilu_preconditioned_cg,
    jacobi,
    parallel_cg,
    power_iteration,
    solve_lower,
    solve_upper,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # compiler
    "compile_kernel",
    "CompiledKernel",
    "parse",
    "AutoPlan",
    "autoplan",
    "autoplan_spmv",
    # formats
    "Format",
    "COOMatrix",
    "CRSMatrix",
    "CCSMatrix",
    "CCCSMatrix",
    "ELLMatrix",
    "DiagonalMatrix",
    "JaggedDiagonalMatrix",
    "DenseMatrix",
    "DenseVector",
    "SparseVector",
    "InodeMatrix",
    "BlockDiagonalMatrix",
    "BlockSolveMatrix",
    "Permutation",
    "PermutedMatrix",
    "TranslatedVector",
    "FORMAT_NAMES",
    "matrix_format_by_name",
    # distributions
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "GeneralizedBlockDistribution",
    "IndirectDistribution",
    "MultiBlockDistribution",
    # kernels
    "spmv",
    "spmv_transpose",
    "spmm",
    # workloads
    "grid_laplacian",
    "stencil_matrix",
    "fem_matrix",
    "table1_matrix",
    "TABLE1_MATRICES",
    "read_matrix_market",
    "write_matrix_market",
    # observability
    "explain",
    "Tracer",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "enable_metrics",
    "disable_metrics",
    "render_comm_matrix",
    "render_phase_breakdown",
    # runtime + solvers
    "Machine",
    "CommModel",
    "FaultPlan",
    "DeliveryConfig",
    "cg",
    "parallel_cg",
    "CGResult",
    "jacobi",
    "power_iteration",
    "ilu0",
    "solve_lower",
    "solve_upper",
    "ilu_preconditioned_cg",
]
