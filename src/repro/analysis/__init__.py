"""Static analysis & verification for the Bernoulli pipeline.

Seven passes over the artifacts the compiler and runtime otherwise take
on faith, each reporting :class:`~repro.analysis.diagnostics.Diagnostic`
findings with stable ``BER0xx`` codes:

* :mod:`repro.analysis.doany` — is the loop nest really DOANY?
* :mod:`repro.analysis.depend` — *how* parallel is it?  Classification
  into the lattice ``DOALL ⊏ DOANY ⊏ REDUCTION(op) ⊏ SEQUENTIAL`` with
  per-verdict evidence, checkable certificates, and a mutation
  self-check.
* :mod:`repro.analysis.contracts` — do formats deliver the access-method
  properties their levels declare?
* :mod:`repro.analysis.lint` — are the chosen plans and the emitted
  kernels structurally sane?
* :mod:`repro.analysis.schedule` — are the SPMD communication schedules
  deadlock-free before any rank executes?
* :mod:`repro.analysis.structure` — does the chosen storage format match
  the matrix's detected sparsity structure (and does the auto-planner
  pick a defensible one)?
* :mod:`repro.analysis.regions` — is a hybrid region decomposition a
  loss-free cover (no dropped, double-counted, or shifted entries), and
  does the auditor catch seeded partition defects?

``python -m repro.analysis`` runs them from the command line; the
dependence classifier also gates :func:`~repro.compiler.compile_kernel`
(the ``verify=`` parameter), and the schedule checker re-verifies
fault-recovery rebuilds inside the runtime.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARN,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.registry import AnalysisPass, all_passes, get_pass, register_pass

# importing the pass modules registers their sweep runners
from repro.analysis import (  # noqa: E402,F401
    contracts,
    depend,
    doany,
    lint,
    regions,
    schedule,
    structure,
)
from repro.analysis.contracts import audit_format, audit_registered_formats
from repro.analysis.depend import (
    ParallelismCertificate,
    check_certificate,
    classify_program,
    classify_source,
    run_depend_selfcheck,
)
from repro.analysis.regions import audit_partition
from repro.analysis.doany import check_program, check_source
from repro.analysis.lint import lint_generated_source, lint_kernel, lint_plan
from repro.analysis.schedule import (
    check_gather_schedules,
    check_spmv_strategies,
    trace_collectives,
    verify_rebuilt_schedule,
)
from repro.analysis.structure import (
    StructureProfile,
    analyze_structure,
    audit_format_choice,
)

__all__ = [
    "ERROR",
    "WARN",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticReport",
    "AnalysisPass",
    "register_pass",
    "get_pass",
    "all_passes",
    "check_program",
    "check_source",
    "ParallelismCertificate",
    "classify_program",
    "classify_source",
    "check_certificate",
    "run_depend_selfcheck",
    "audit_format",
    "audit_registered_formats",
    "lint_plan",
    "lint_kernel",
    "lint_generated_source",
    "check_gather_schedules",
    "check_spmv_strategies",
    "trace_collectives",
    "verify_rebuilt_schedule",
    "StructureProfile",
    "analyze_structure",
    "audit_format_choice",
    "audit_partition",
]
