"""Command-line front end: ``python -m repro.analysis``.

Examples::

    # everything: registered sweep passes (doany, contracts, lint,
    # schedule, structure)
    python -m repro.analysis --all

    # sparsity-structure profile + auto-format recommendation for a file
    python -m repro.analysis --structure matrix.mtx

    # audit every registered format's access-method contracts
    python -m repro.analysis --all-formats

    # dependence-check + lint the kernels under a directory (*.loop files)
    python -m repro.analysis --kernels examples/

    # classify kernels into the parallelism lattice (DOALL / DOANY /
    # REDUCTION(op) / SEQUENTIAL) with per-loop evidence; --json carries
    # the full ParallelismCertificate payload per file
    python -m repro.analysis --depend examples/kernels --json certs.json

    # machine-readable report for CI artifacts; exit 1 on any error
    python -m repro.analysis --all --json diagnostics.json

Kernel files are mini-language loop nests.  The CLI compiles each one
against probe formats chosen by convention — assignment targets get
writable dense storage, other matrices a CRS probe, vectors dense — so
the plan and the generated code can be linted without the caller wiring
up storage.

A kernel file may declare ``# depend: sequential`` in a comment: the file
documents a deliberately loop-carried nest (a teaching example or a
negative test).  ``--kernels`` then *requires* the dependence checker to
find the carried dependence — reporting it as info, not error — and skips
the compile/lint step (the gate would rightly refuse); a stale directive
on an actually-parallel kernel is itself an error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis import all_passes
from repro.analysis.diagnostics import ERROR, Diagnostic, DiagnosticReport
from repro.analysis.doany import check_program
from repro.analysis.lint import lint_kernel
from repro.errors import ReproError

#: extent given to every symbolic loop bound when probing CLI kernels
_PROBE_EXTENT = 6


def _probe_formats(program):
    """Choose probe storage for every array by convention."""
    from repro.formats.coo import COOMatrix
    from repro.formats.crs import CRSMatrix
    from repro.formats.dense import DenseMatrix, DenseVector

    extents = {}
    for spec in program.loops:
        extents[spec.var] = (
            int(spec.hi) if spec.hi.lstrip("-").isdigit() else _PROBE_EXTENT
        )
    targets = {stmt.target.array for stmt in program.body}
    arity: dict[str, int] = {}
    refs = [stmt.target for stmt in program.body] + [
        r for stmt in program.body for r in stmt.expr.refs()
    ]
    shapes: dict[str, tuple[int, ...]] = {}
    for ref in refs:
        arity[ref.array] = len(ref.indices)
        shapes[ref.array] = tuple(
            extents.get(v, _PROBE_EXTENT) for v in ref.indices
        )
    rng = np.random.default_rng(0)
    formats = {}
    for name, nd in arity.items():
        shape = shapes[name]
        if nd == 1:
            formats[name] = DenseVector(np.zeros(shape[0]))
        elif name in targets:
            formats[name] = DenseMatrix.zeros(*shape)
        else:
            d = (rng.random(shape) < 0.5) * rng.integers(1, 5, shape).astype(float)
            formats[name] = CRSMatrix.from_coo(COOMatrix.from_dense(d))
    return formats


def _declared_sequential(source: str) -> bool:
    """True when the file carries a ``# depend: sequential`` directive."""
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#") and "depend:" in stripped:
            return "sequential" in stripped.split("depend:", 1)[1]
    return False


def _check_kernel_file(path: Path) -> DiagnosticReport:
    from repro.compiler import compile_kernel
    from repro.compiler.parser import parse
    from repro.errors import CompileError, ParseError

    source = path.read_text()
    report = DiagnosticReport()
    try:
        program = parse(source)
    except ParseError as e:
        report.add(
            Diagnostic(
                "BER001",
                ERROR,
                f"kernel does not parse: {e}",
                pass_name="cli",
                location=str(path),
            )
        )
        return report
    if _declared_sequential(source):
        findings = check_program(program, source=source)
        if findings.ok:
            report.add(
                Diagnostic(
                    "BER062",
                    ERROR,
                    "kernel declares '# depend: sequential' but the "
                    "dependence checker found no carried dependence — "
                    "stale directive (drop it, or restore the dependence)",
                    pass_name="cli",
                    location=str(path),
                )
            )
        else:
            report.add(
                Diagnostic(
                    "BER060",
                    "info",
                    "kernel is declared sequential and the dependence "
                    "checker confirms a carried dependence "
                    f"({len(findings.errors())} finding(s)); compile/lint "
                    "skipped",
                    pass_name="cli",
                    location=str(path),
                )
            )
        return report
    report.extend(check_program(program, source=source))
    try:
        formats = _probe_formats(program)
        kern = compile_kernel(
            program, formats, cache=False, verify="off"
        )
    except (CompileError, ReproError) as e:
        report.add(
            Diagnostic(
                "BER001",
                ERROR,
                f"kernel does not compile against probe formats: {e}",
                pass_name="cli",
                location=str(path),
            )
        )
        return report
    report.extend(lint_kernel(kern, formats, where=str(path)))
    return report


def _depend_kernel_file(path: Path, certificates: dict) -> DiagnosticReport:
    """Classify one kernel file into the parallelism lattice."""
    from repro.analysis.depend import classify_source
    from repro.errors import ParseError

    source = path.read_text()
    report = DiagnosticReport()
    try:
        cls = classify_source(source, gate=False)
    except ParseError as e:
        report.add(
            Diagnostic(
                "BER001",
                ERROR,
                f"kernel does not parse: {e}",
                pass_name="cli",
                location=str(path),
            )
        )
        return report
    certificates[str(path)] = cls.certificate.to_dict()
    per_loop = ", ".join(
        f"{lv.var}: {lv.verdict.label()}" for lv in cls.loops
    )
    print(f"{path}: {cls.verdict.label()}  [{per_loop}]")
    report.extend(cls.report)
    return report


def _analyze_structure_file(path: Path) -> DiagnosticReport:
    """Structure-analyze one MatrixMarket file: BER050 profile info, the
    auto-planner's pick, and any audit findings against that pick."""
    from repro.analysis.structure import audit_format_choice, profile_diagnostic
    from repro.analysis.structure import analyze_structure
    from repro.compiler.autoplan import autoplan
    from repro.errors import FormatError
    from repro.matrices.mmio import read_matrix_market

    report = DiagnosticReport()
    try:
        coo = read_matrix_market(str(path))
    except (OSError, FormatError, ReproError) as e:
        report.add(
            Diagnostic(
                "BER001",
                ERROR,
                f"cannot read MatrixMarket file: {e}",
                pass_name="structure",
                location=str(path),
            )
        )
        return report
    profile = analyze_structure(coo)
    plan = autoplan(coo, profile=profile)
    report.add(
        profile_diagnostic(profile, where=str(path), recommend=plan.format_name)
    )
    report.extend(audit_format_choice(profile, plan.format_name, where=str(path)))
    return report


def _discover_kernels(paths) -> list[Path]:
    found: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.extend(sorted(p.rglob("*.loop")))
        else:
            found.append(p)
    return found


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Bernoulli static analysis & verification",
    )
    ap.add_argument(
        "--all", action="store_true", help="run every registered sweep pass"
    )
    ap.add_argument(
        "--passes",
        default=None,
        help="comma-separated pass names (see --list)",
    )
    ap.add_argument(
        "--all-formats",
        action="store_true",
        help="audit every registered format's access-method contracts",
    )
    ap.add_argument(
        "--kernels",
        nargs="+",
        default=None,
        metavar="PATH",
        help="dependence-check + lint *.loop kernel files (dirs recurse)",
    )
    ap.add_argument(
        "--depend",
        nargs="+",
        default=None,
        metavar="PATH",
        help="classify *.loop kernel files into the parallelism lattice "
        "(DOALL / DOANY / REDUCTION(op) / SEQUENTIAL) with per-loop "
        "evidence; --json carries each file's certificate payload",
    )
    ap.add_argument(
        "--structure",
        nargs="+",
        default=None,
        metavar="MTX",
        help="analyze the sparsity structure of MatrixMarket file(s): "
        "emit the BER05x profile, the auto-planner's format choice, and "
        "any profile/format-mismatch findings",
    )
    ap.add_argument(
        "--list", action="store_true", help="list registered passes and exit"
    )
    ap.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the full report as JSON ('-' for stdout)",
    )
    ap.add_argument(
        "--min-severity",
        choices=["error", "warn", "info"],
        default="warn",
        help="lowest severity to print (default: warn)",
    )
    args = ap.parse_args(argv)

    passes = all_passes()
    if args.list:
        for p in passes.values():
            print(f"{p.name:12s} {p.description}")
        return 0

    report = DiagnosticReport()
    ran = False
    # validate every explicitly named pass BEFORE running anything, and
    # merge with --all instead of ignoring one of the two: an unknown
    # name must be a hard usage error, never a silent skip
    named = (
        [s.strip() for s in args.passes.split(",") if s.strip()]
        if args.passes
        else []
    )
    for name in named:
        if name not in passes:
            ap.error(f"unknown pass {name!r}; known: {sorted(passes)}")
    selected = list(passes) if args.all else []
    selected.extend(n for n in named if n not in selected)
    if args.all_formats and "contracts" not in selected:
        selected.append("contracts")
    executed: list[str] = []
    for name in selected:
        report.extend(passes[name].run())
        executed.append(name)
        ran = True
    certificates: dict[str, dict] = {}
    if args.kernels:
        files = _discover_kernels(args.kernels)
        if not files:
            ap.error(f"no kernel files found under {args.kernels}")
        for path in files:
            report.extend(_check_kernel_file(path))
        executed.append("kernels")
        ran = True
    if args.depend:
        files = _discover_kernels(args.depend)
        if not files:
            ap.error(f"no kernel files found under {args.depend}")
        for path in files:
            report.extend(_depend_kernel_file(path, certificates))
        executed.append("depend-files")
        ran = True
    if args.structure:
        for path in args.structure:
            report.extend(_analyze_structure_file(Path(path)))
        executed.append("structure-files")
        ran = True
    if not ran:
        ap.error(
            "nothing to do: pass --all, --passes, --all-formats, "
            "--kernels or --structure"
        )

    rendered = report.render(args.min_severity)
    if rendered != "no diagnostics":
        print(rendered)
    print(report.summary())
    if args.json:
        payload = report.to_json(
            passes=executed,
            extra={"certificates": certificates} if certificates else None,
        )
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
    return 1 if report.errors() else 0


if __name__ == "__main__":
    sys.exit(main())
