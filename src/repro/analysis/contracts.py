"""Format-contract auditor: do formats deliver what they declare?

The planner trusts every :class:`~repro.formats.base.AccessLevel`'s
*claimed* properties — ``binds``, ``sorted_enum``, ``dense``,
``searchable`` — when it picks join order and join implementation.  A
mislabeled level silently corrupts results (a false ``sorted_enum``
breaks merge joins; a wrong ``binds`` breaks everything).  This pass
verifies the claims two ways:

* **statically** — the levels' ``binds`` must cover every matrix axis
  exactly once, the hierarchy must be constructible, and ``storage(prefix)``
  names must be prefix-scoped (collision-free across arrays);
* **dynamically** — the auditor *drives the format's own codegen hooks*
  (``emit_enumerate`` / ``emit_search`` / ``emit_load``) on small probe
  matrices, instruments the generated code with per-level bind events,
  and checks the observed enumeration against the claims and against
  ``to_dense()``.

Codes:

=======  ============================================================
BER020   error — ``binds`` do not cover the axes exactly once
BER021   error — hierarchy malformed (``levels()``/``avg_fanout`` broken)
BER022   error — ``storage(prefix)`` key not prefix-scoped / collision
BER023   error — ``sorted_enum`` claimed but enumeration is unsorted
BER024   error — duplicate entries enumerated (same index tuple twice)
BER025   error — ``searchable`` level's search disagrees with enumeration
BER026   error — ``dense`` claimed but enumeration skips indices
BER027   error — enumeration disagrees with ``to_dense()`` (entries/values)
BER028   info — audit skipped (composite / library format)
=======  ============================================================
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass
from repro.errors import FormatError
from repro.formats.base import Emitter, Format

__all__ = ["audit_format", "audit_registered_formats", "default_probes"]

_PASS = "contracts"


def _diag(code, severity, message, location):
    return Diagnostic(code, severity, message, pass_name=_PASS, location=location)


# ----------------------------------------------------------------------
# probe matrices
# ----------------------------------------------------------------------
def default_probes():
    """Small COO probe matrices exercising irregular structure.

    Includes the paper's Fig.-1a-like 6×6 pattern (empty rows, dense-ish
    rows, a full diagonal) and a rectangular matrix; formats that reject a
    probe in ``from_coo`` (e.g. square-only formats) simply skip it.
    """
    from repro.formats.coo import COOMatrix

    rng = np.random.default_rng(20260806)
    probes = []
    # 6x6 with a full diagonal (square formats often require it), empty
    # row/column structure off the diagonal, and duplicate-prone ordering
    n = 6
    row = list(range(n))
    col = list(range(n))
    vals = [float(k + 1) for k in range(n)]
    extra = [(0, 3), (0, 5), (2, 1), (3, 4), (5, 0), (5, 2), (4, 1)]
    for k, (i, j) in enumerate(extra):
        row.append(i)
        col.append(j)
        vals.append(10.0 + k)
    probes.append(
        COOMatrix((n, n), np.array(row), np.array(col), np.array(vals)).canonicalized()
    )
    # rectangular 4x7, random pattern
    m = (rng.random((4, 7)) < 0.4).astype(float)
    m *= rng.integers(1, 9, m.shape)
    probes.append(COOMatrix.from_dense(m))
    return probes


def _vector_probes():
    return [np.array([0.0, 3.0, 0.0, 0.0, -2.5, 7.0, 0.0, 1.0])]


# ----------------------------------------------------------------------
# static structure checks
# ----------------------------------------------------------------------
def _check_structure(fmt: Format, name: str, report: DiagnosticReport):
    """Static invariants; returns the levels or None when unauditable."""
    loc = f"format {fmt.name}"
    try:
        levels = fmt.levels()
    except FormatError as e:
        report.add(
            _diag(
                "BER028",
                INFO,
                f"composite/library format — access-method audit skipped ({e})",
                loc,
            )
        )
        return None
    except Exception as e:  # noqa: BLE001 — auditing arbitrary formats
        report.add(
            _diag("BER021", ERROR, f"levels() raised {type(e).__name__}: {e}", loc)
        )
        return None
    if not levels:
        report.add(_diag("BER021", ERROR, "levels() returned an empty hierarchy", loc))
        return None

    seen_axes: list[int] = []
    for li, level in enumerate(levels):
        lloc = f"{loc}, level {li} ({type(level).__name__})"
        for a in level.binds:
            if not (0 <= a < fmt.ndim):
                report.add(
                    _diag("BER020", ERROR, f"binds axis {a} outside 0..{fmt.ndim - 1}", lloc)
                )
            seen_axes.append(a)
        try:
            fan = level.avg_fanout()
            if not (fan >= 0.0):
                report.add(
                    _diag("BER021", ERROR, f"avg_fanout() returned {fan!r}", lloc)
                )
        except Exception as e:  # noqa: BLE001
            report.add(
                _diag("BER021", ERROR, f"avg_fanout() raised {type(e).__name__}: {e}", lloc)
            )
    dupes = sorted({a for a in seen_axes if seen_axes.count(a) > 1})
    missing = sorted(set(range(fmt.ndim)) - set(seen_axes))
    if dupes:
        report.add(
            _diag("BER020", ERROR, f"axes {dupes} bound by more than one level", loc)
        )
    if missing:
        report.add(_diag("BER020", ERROR, f"axes {missing} bound by no level", loc))

    try:
        keys = sorted(fmt.storage(name).keys())
    except Exception as e:  # noqa: BLE001
        report.add(
            _diag("BER022", ERROR, f"storage({name!r}) raised {type(e).__name__}: {e}", loc)
        )
        return None
    for k in keys:
        if not k.isidentifier():
            report.add(
                _diag("BER022", ERROR, f"storage key {k!r} is not an identifier", loc)
            )
        elif not (k == name or k.startswith(f"{name}_")):
            report.add(
                _diag(
                    "BER022",
                    ERROR,
                    f"storage key {k!r} is not scoped under prefix {name!r}; "
                    "two arrays of this format would collide in one kernel",
                    loc,
                )
            )
    if dupes or missing:
        return None  # the probe interpreter needs a well-formed hierarchy
    return levels


# ----------------------------------------------------------------------
# dynamic probes: drive the format's own emit hooks
# ----------------------------------------------------------------------
def _run_probe(src: str, fn_name: str, namespace: dict, hooks: dict):
    ns = dict(namespace)
    ns.update(hooks)
    ns["np"] = np
    exec(compile(src, f"<contract-probe:{fn_name}>", "exec"), ns)
    ns[fn_name]()


def _enumeration_probe(fmt: Format, levels, name: str):
    """(events, entries) observed by enumerating through the emit hooks.

    ``events`` is the DFS stream of ``(level_index, bound_index_tuple)``;
    ``entries`` the full ``(index_tuple, value)`` list in enumeration
    order.
    """
    storage = fmt.storage(name)
    g = Emitter()
    axis_vars = {a: f"i{a}" for a in range(fmt.ndim)}
    g.reserve(list(storage) + list(axis_vars.values()) + ["__ev", "__entry"])
    g.open("def __probe():")
    parent = None
    for li, level in enumerate(levels):
        parent = level.emit_enumerate(
            g, name, parent, {a: axis_vars[a] for a in level.binds}
        )
        bound = ", ".join(axis_vars[a] for a in level.binds)
        g.emit(f"__ev({li}, ({bound}{',' if level.binds else ''}))")
    load = fmt.emit_load(g, name, axis_vars, parent)
    full = ", ".join(axis_vars[a] for a in range(fmt.ndim))
    g.emit(f"__entry(({full},), {load})")
    g.close(g.depth)

    events: list[tuple[int, tuple]] = []
    entries: list[tuple[tuple, float]] = []
    _run_probe(
        g.source(),
        "__probe",
        storage,
        {
            "__ev": lambda li, vals: events.append((li, tuple(int(v) for v in vals))),
            "__entry": lambda idx, v: entries.append(
                (tuple(int(i) for i in idx), float(v))
            ),
        },
    )
    return events, entries


def _level_runs(events, li: int):
    """Split level li's bind events into runs (one per parent position)."""
    runs: list[list[tuple]] = []
    current: list[tuple] | None = None
    for lev, vals in events:
        if lev < li:
            current = None  # the parent advanced: a new run starts
        elif lev == li:
            if current is None:
                current = []
                runs.append(current)
            current.append(vals)
    return runs


def _audit_enumeration(fmt, levels, name, probe_label, report):
    loc = f"format {fmt.name} ({probe_label})"
    try:
        events, entries = _enumeration_probe(fmt, levels, name)
    except Exception as e:  # noqa: BLE001
        report.add(
            _diag(
                "BER021",
                ERROR,
                f"enumeration probe failed: {type(e).__name__}: {e}",
                loc,
            )
        )
        return None

    # claimed sortedness / density per level, observed per parent run
    for li, level in enumerate(levels):
        if not level.binds:
            continue
        lloc = f"{loc}, level {li} ({type(level).__name__})"
        runs = _level_runs(events, li)
        if level.sorted_enum:
            for run in runs:
                bad = next(
                    (k for k in range(1, len(run)) if run[k] <= run[k - 1]), None
                )
                if bad is not None:
                    report.add(
                        _diag(
                            "BER023",
                            ERROR,
                            "level claims sorted_enum=True but enumerated "
                            f"{run[bad - 1]} before {run[bad]} under one parent "
                            "position — merge joins would silently drop entries",
                            lloc,
                        )
                    )
                    break
        if level.dense and len(level.binds) == 1:
            extent = fmt.shape[level.binds[0]]
            expected = [(k,) for k in range(extent)]
            for run in runs:
                if run != expected:
                    report.add(
                        _diag(
                            "BER026",
                            ERROR,
                            f"level claims dense=True but one parent position "
                            f"enumerated {len(run)} of {extent} indices",
                            lloc,
                        )
                    )
                    break

    # duplicate-freedom of the full entry stream
    seen: set[tuple] = set()
    for idx, _v in entries:
        if idx in seen:
            report.add(
                _diag(
                    "BER024",
                    ERROR,
                    f"index {idx} enumerated more than once — reductions "
                    "would double-count the entry",
                    loc,
                )
            )
            break
        seen.add(idx)

    # enumeration must reconstruct the exchange-format contents
    dense = np.asarray(fmt.to_dense(), dtype=np.float64)
    acc = np.zeros(fmt.shape)
    for idx, v in entries:
        acc[idx] += v
    if not np.allclose(acc, dense):
        bad = np.argwhere(~np.isclose(acc, dense))[:3]
        report.add(
            _diag(
                "BER027",
                ERROR,
                "enumeration through the emit hooks disagrees with "
                f"to_dense() at {[tuple(map(int, b)) for b in bad]} — stored "
                "entries and access methods are out of sync",
                loc,
            )
        )
    return entries


def _audit_search(fmt, levels, name, probe_label, entries, report):
    """Drive every searchable level's ``emit_search`` over all candidate
    indices; the hits must be exactly the enumerated entries."""
    storage = fmt.storage(name)
    for li, level in enumerate(levels):
        if not level.searchable or not level.binds:
            continue
        lloc = f"format {fmt.name} ({probe_label}), level {li} ({type(level).__name__})"
        g = Emitter()
        axis_vars = {a: f"i{a}" for a in range(fmt.ndim)}
        search_vars = {a: f"s{a}" for a in level.binds}
        g.reserve(
            list(storage)
            + list(axis_vars.values())
            + list(search_vars.values())
            + ["__hit"]
        )
        g.open("def __sprobe():")
        try:
            parent = None
            for lj in range(li):
                parent = levels[lj].emit_enumerate(
                    g, name, parent, {a: axis_vars[a] for a in levels[lj].binds}
                )
            for a in level.binds:
                g.open(f"for {search_vars[a]} in range({fmt.shape[a]}):")
            pos = level.emit_search(g, name, parent, search_vars)
            for a in level.binds:
                g.emit(f"{axis_vars[a]} = {search_vars[a]}")
            for lj in range(li + 1, len(levels)):
                pos = levels[lj].emit_enumerate(
                    g, name, pos, {a: axis_vars[a] for a in levels[lj].binds}
                )
            load = fmt.emit_load(g, name, axis_vars, pos)
            full = ", ".join(axis_vars[a] for a in range(fmt.ndim))
            g.emit(f"__hit(({full},), {load})")
            g.close(g.depth)
            hits: list[tuple[tuple, float]] = []
            _run_probe(
                g.source(),
                "__sprobe",
                storage,
                {
                    "__hit": lambda idx, v: hits.append(
                        (tuple(int(i) for i in idx), float(v))
                    )
                },
            )
        except Exception as e:  # noqa: BLE001
            report.add(
                _diag(
                    "BER025",
                    ERROR,
                    f"search probe failed: {type(e).__name__}: {e}",
                    lloc,
                )
            )
            continue
        want = sorted(entries)
        got = sorted(hits)
        if got != want:
            missing = [idx for idx, _ in want if idx not in {i for i, _ in got}]
            spurious = [idx for idx, _ in got if idx not in {i for i, _ in want}]
            detail = []
            if missing:
                detail.append(f"missed stored indices {missing[:3]}")
            if spurious:
                detail.append(f"spurious hits at {spurious[:3]}")
            if not detail:
                detail.append("values at found positions differ")
            report.add(
                _diag(
                    "BER025",
                    ERROR,
                    "searchable level's emit_search disagrees with its own "
                    f"enumeration: {'; '.join(detail)}",
                    lloc,
                )
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def audit_format(fmt: Format, name: str = "A", probe_label: str = "") -> DiagnosticReport:
    """Audit one concrete format instance (static + dynamic checks)."""
    report = DiagnosticReport()
    levels = _check_structure(fmt, name, report)
    if levels is None:
        return report
    label = probe_label or f"{fmt.shape[0]}x{fmt.shape[-1] if fmt.ndim > 1 else 1}"
    entries = _audit_enumeration(fmt, levels, name, label, report)
    if entries is not None:
        _audit_search(fmt, levels, name, label, entries, report)
    return report


def audit_registered_formats(names=None, probes=None) -> DiagnosticReport:
    """Audit every registered matrix format (plus the vector formats)
    against the probe matrices; one clean info line per format."""
    from repro.formats import FORMAT_NAMES
    from repro.formats.dense import DenseVector
    from repro.formats.sparse_vector import SparseVector

    report = DiagnosticReport()
    probes = list(probes) if probes is not None else default_probes()
    targets = dict(FORMAT_NAMES)
    if names is not None:
        unknown = sorted(set(names) - set(targets))
        if unknown:
            raise FormatError(
                f"unknown format name(s) {unknown}; known: {sorted(targets)}"
            )
        targets = {n: targets[n] for n in names}

    for fname, cls in sorted(targets.items()):
        before = len(report)
        for probe in probes:
            label = f"probe {probe.shape[0]}x{probe.shape[1]}"
            try:
                inst = cls.from_coo(probe)
            except FormatError:
                continue  # format legitimately rejects this shape
            report.extend(audit_format(inst, name="A", probe_label=label))
        sub = report.diagnostics[before:]
        if not any(d.severity == ERROR for d in sub) and not any(
            d.code == "BER028" for d in sub
        ):
            report.add(
                _diag(
                    "BER028",
                    INFO,
                    "all declared access-method properties verified on "
                    f"{len(probes)} probe(s)",
                    f"format {fname}",
                )
            )

    if names is None:
        for vec in (DenseVector, SparseVector):
            for dense in _vector_probes():
                inst = (
                    vec(dense.copy())
                    if vec is DenseVector
                    else SparseVector.from_dense(dense)
                )
                report.extend(
                    audit_format(inst, name="X", probe_label=f"vector[{len(dense)}]")
                )
    return report


@register_pass("contracts", "format-contract auditor over registered formats")
def _sweep() -> DiagnosticReport:
    return audit_registered_formats()
