"""Dependence & reduction analyzer: the parallelism-classification lattice.

The DOANY pass (:mod:`repro.analysis.doany`) answers a binary question —
may the iterations of this nest run in any order?  This pass answers the
finer one the paper's Bernoulli pipeline actually needs: *how much*
ordering freedom does each loop have, and *why*.  Every loop of the nest
is classified into the lattice

    DOALL  ⊏  DOANY  ⊏  REDUCTION(op)  ⊏  SEQUENTIAL

* **DOALL** — no dependence is carried by the loop: every access pair is
  either confined to one iteration or provably disjoint across
  iterations (the index tuples name the loop variable, so distinct
  iterations touch distinct elements).
* **DOANY** — the only carried dependences are additive reduction
  updates (``x[e] += rhs``): iterations commute up to floating-point
  reassociation, the classic DOANY contract the legacy gate accepted.
* **REDUCTION(op)** — the carried dependences are recognized
  associative/commutative updates ``x[e] = x[e] ⊕ rhs`` with
  ⊕ ∈ {``*``, ``min``, ``max``} and rhs independent of ``x`` — newly
  admitted by this pass, and lowered through privatized-accumulation
  scatters (``np.multiply.at`` / ``np.minimum.at`` / ``np.maximum.at``).
* **SEQUENTIAL** — a genuine carried dependence with no commuting
  structure; the verdict carries the witness access pair.

Because indices are plain loop-variable names, the carried-dependence
test is pure tuple algebra: accesses ``w`` and ``r`` on the same array
can conflict across two iterations that differ in loop ``v`` unless
their index tuples are equal *and* name ``v`` (then the element is
pinned to one ``v``-iteration).

Every verdict is packaged as a :class:`ParallelismCertificate` — the
per-loop verdicts plus their evidence, keyed by a fingerprint of the
normalized program — which rides on compiled kernels and their
:class:`~repro.compiler.plan_cache.PlanCache` entries.
:func:`check_certificate` independently re-validates a certificate
against a program (fingerprint, loop set, evidence claims, re-derived
verdicts) and is re-run on every cache hit, so a stale or corrupted
cache entry fails loudly instead of executing with the wrong
parallelism assumption.

Codes:

=======  ============================================================
BER060   info — per-loop verdict (one per loop of the nest)
BER061   info — certificate issued (program verdict + fingerprint)
BER062   error — SEQUENTIAL: carried-dependence witness access pair
BER063   info — recognized reduction update (statement + operator)
BER064   error — certificate validation failed (stale/corrupt/mismatch)
BER065   error — mutation self-check: a planted dependence-breaking
         mutant did not flip the verdict (the analyzer is blind to it)
BER066   info — mutation self-check: planted mutant caught as designed
=======  ============================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.diagnostics import ERROR, INFO, WARN, Diagnostic, DiagnosticReport
from repro.errors import ParseError
from repro.analysis.registry import register_pass
from repro.compiler.ast_nodes import (
    Assign,
    BinOp,
    Program,
    Ref,
    REDUCTION_OPS,
    normalize_program,
)

__all__ = [
    "Verdict",
    "Evidence",
    "LoopVerdict",
    "ParallelismCertificate",
    "Classification",
    "classify_program",
    "classify_source",
    "check_certificate",
    "program_fingerprint",
    "run_depend_selfcheck",
    "DOALL",
    "DOANY",
    "REDUCTION",
    "SEQUENTIAL",
]

_PASS = "depend"

DOALL = "DOALL"
DOANY = "DOANY"
REDUCTION = "REDUCTION"
SEQUENTIAL = "SEQUENTIAL"

_RANK = {DOALL: 0, DOANY: 1, REDUCTION: 2, SEQUENTIAL: 3}


@dataclass(frozen=True)
class Verdict:
    """One lattice element: a kind plus the combine operator for
    REDUCTION verdicts (``None`` otherwise)."""

    kind: str
    op: str | None = None

    def __post_init__(self):
        if self.kind not in _RANK:
            raise ValueError(f"unknown verdict kind {self.kind!r}")
        if (self.kind == REDUCTION) != (self.op is not None):
            raise ValueError("REDUCTION verdicts (and only they) carry an op")
        if self.op is not None and self.op not in REDUCTION_OPS:
            raise ValueError(f"unknown reduction op {self.op!r}")

    @property
    def rank(self) -> int:
        return _RANK[self.kind]

    def label(self) -> str:
        return f"{self.kind}({self.op})" if self.op else self.kind

    def join(self, other: "Verdict") -> "Verdict":
        """Lattice join (least upper bound): the worse of the two; two
        REDUCTION verdicts with *different* operators do not commute with
        each other and join to SEQUENTIAL."""
        if self.rank > other.rank:
            return self
        if other.rank > self.rank:
            return other
        if self.kind == REDUCTION and self.op != other.op:
            return Verdict(SEQUENTIAL)
        return self

    def to_dict(self) -> dict:
        return {"kind": self.kind, "op": self.op}


@dataclass(frozen=True)
class Evidence:
    """Why one loop earned (part of) its verdict.

    ``kind`` is ``"disjoint"`` (proved-disjoint accesses — DOALL),
    ``"commutes"`` (recognized reduction update — DOANY/REDUCTION), or
    ``"witness"`` (the carried-dependence access pair — SEQUENTIAL).
    ``statements`` are body indices; ``refs`` the access reprs involved.
    """

    kind: str
    detail: str
    statements: tuple[int, ...] = ()
    refs: tuple[str, ...] = ()
    op: str | None = None

    def to_dict(self) -> dict:
        d = {
            "kind": self.kind,
            "detail": self.detail,
            "statements": list(self.statements),
            "refs": list(self.refs),
        }
        if self.op is not None:
            d["op"] = self.op
        return d


@dataclass(frozen=True)
class LoopVerdict:
    """The verdict for one loop variable, with its evidence."""

    var: str
    verdict: Verdict
    evidence: tuple[Evidence, ...] = ()

    def to_dict(self) -> dict:
        return {
            "var": self.var,
            "verdict": self.verdict.to_dict(),
            "evidence": [e.to_dict() for e in self.evidence],
        }


@dataclass(frozen=True)
class ParallelismCertificate:
    """A checkable record of the analyzer's verdicts for one program.

    ``fingerprint`` is :func:`program_fingerprint` of the normalized
    program — a certificate only ever describes exactly one loop nest.
    """

    fingerprint: str
    verdict: Verdict
    loops: tuple[LoopVerdict, ...]
    version: int = 1

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "verdict": self.verdict.to_dict(),
            "loops": [lv.to_dict() for lv in self.loops],
        }


@dataclass
class Classification:
    """Everything :func:`classify_program` produces in one object."""

    program: Program
    verdict: Verdict
    loops: tuple[LoopVerdict, ...]
    certificate: ParallelismCertificate
    report: DiagnosticReport


def program_fingerprint(program: Program) -> str:
    """Stable fingerprint of a (normalized) program's canonical repr."""
    return hashlib.sha256(repr(program).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# core per-loop classification
# ----------------------------------------------------------------------
def _pinned(t1: tuple[str, ...], t2: tuple[str, ...], v: str) -> bool:
    """True when accesses with tuples t1, t2 cannot touch the same element
    from two different iterations of loop ``v``: equal tuples naming ``v``
    pin the element to a single ``v``-iteration."""
    return t1 == t2 and v in t1


def _classify_loop(program: Program, v: str) -> tuple[Verdict, tuple[Evidence, ...]]:
    """Classify one loop variable of a *normalized* program."""
    body = program.body
    verdict = Verdict(DOALL)
    evidence: list[Evidence] = []

    writes = [(k, s.target, s.reduce, s.op) for k, s in enumerate(body)]
    reads = [(k, r) for k, s in enumerate(body) for r in s.expr.refs()]

    # write-write pairs, the self-pair included: a statement conflicts
    # with its own writes from other v-iterations
    for a, (k1, w1, red1, op1) in enumerate(writes):
        for k2, w2, red2, op2 in writes[a:]:
            if w1.array != w2.array:
                continue
            if _pinned(w1.indices, w2.indices, v):
                continue
            if red1 and red2 and op1 == op2:
                verdict = verdict.join(
                    Verdict(DOANY) if op1 == "+" else Verdict(REDUCTION, op1)
                )
                evidence.append(
                    Evidence(
                        "commutes",
                        f"carried updates to {w1.array!r} are "
                        f"'{op1}'-reductions with RHS independent of the "
                        "target: iterations commute",
                        (k1, k2) if k1 != k2 else (k1,),
                        (repr(w1),) if k1 == k2 else (repr(w1), repr(w2)),
                        op=op1,
                    )
                )
            else:
                if k1 == k2:
                    why = (
                        f"every iteration of {v!r} writes {w1!r} as a "
                        "plain assignment: last writer wins"
                    )
                elif red1 and red2:
                    why = (
                        f"statements [{k1}] and [{k2}] update {w1.array!r} "
                        f"with different operators ('{op1}' vs '{op2}'): "
                        "the updates do not commute with each other"
                    )
                else:
                    why = (
                        f"statements [{k1}] and [{k2}] both write "
                        f"{w1.array!r} and at least one is a plain "
                        "assignment: the final value depends on order"
                    )
                verdict = verdict.join(Verdict(SEQUENTIAL))
                evidence.append(
                    Evidence(
                        "witness",
                        f"output dependence carried by {v!r}: {why}",
                        (k1, k2) if k1 != k2 else (k1,),
                        (repr(w1),) if k1 == k2 else (repr(w1), repr(w2)),
                    )
                )

    # write-read pairs (same or different statement): any read of a
    # written array not pinned to the writing iteration is a carried
    # flow/anti dependence — reductions never survive here because
    # normalization strips the recognized self-read from the RHS
    for k1, w, _red, _op in writes:
        for k2, r in reads:
            if r.array != w.array:
                continue
            if _pinned(w.indices, r.indices, v):
                continue
            verdict = verdict.join(Verdict(SEQUENTIAL))
            evidence.append(
                Evidence(
                    "witness",
                    f"flow/anti dependence carried by {v!r}: statement "
                    f"[{k1}] writes {w!r} while statement [{k2}] reads "
                    f"{r!r} — iterations of {v!r} are not independent",
                    (k1, k2) if k1 != k2 else (k1,),
                    (repr(w), repr(r)),
                )
            )

    if verdict.kind == DOALL:
        pinned_writes = tuple(
            repr(w) for _, w, _, _ in writes if v in w.indices
        )
        evidence.append(
            Evidence(
                "disjoint",
                f"no dependence is carried by {v!r}: every written element "
                f"is pinned to a single {v!r}-iteration",
                tuple(range(len(body))),
                pinned_writes,
            )
        )
    # drop duplicate evidence (symmetric pairs produce identical records)
    seen: set[tuple] = set()
    uniq: list[Evidence] = []
    for e in evidence:
        key = (e.kind, e.detail, e.statements, e.refs, e.op)
        if key not in seen:
            seen.add(key)
            uniq.append(e)
    return verdict, tuple(uniq)


def _diag(code, severity, message, location, node=None, source=None):
    span = getattr(node, "span", None)
    return Diagnostic(
        code,
        severity,
        message,
        pass_name=_PASS,
        location=location,
        span=span,
        source=source if span is not None else None,
    )


def classify_program(
    program: Program,
    source: str | None = None,
    gate: bool = True,
) -> Classification:
    """Classify every loop of the nest; package the verdicts.

    The program is normalized first (recognized self-updates become
    reductions), so parser output and directly-built programs classify
    identically.  ``gate=True`` (the compile-gate mode) reports
    SEQUENTIAL witnesses at **error** severity and merges the legacy
    DOANY checker's findings in front of them — the binary checker is an
    independent implementation, and any program it rejects is demoted to
    SEQUENTIAL here even if this analyzer's native verdict disagrees
    (defense in depth; the two should always agree).  ``gate=False`` is
    classification-as-a-product (the CLI): witnesses render at **warn**
    severity and the legacy findings are omitted.
    """
    program = normalize_program(program)
    loops: list[LoopVerdict] = []
    verdict = Verdict(DOALL)
    for spec in program.loops:
        lv, ev = _classify_loop(program, spec.var)
        loops.append(LoopVerdict(spec.var, lv, ev))
        verdict = verdict.join(lv)

    report = DiagnosticReport()
    if gate:
        from repro.analysis.doany import check_program

        legacy = check_program(program, source=source)
        if not legacy.ok:
            report.extend(legacy.errors())
            verdict = verdict.join(Verdict(SEQUENTIAL))

    witness_severity = ERROR if gate else WARN
    for lv in loops:
        report.add(
            _diag(
                "BER060",
                INFO,
                f"loop {lv.var!r}: {lv.verdict.label()} — "
                + "; ".join(e.detail for e in lv.evidence),
                f"loop {lv.var}",
            )
        )
        for e in lv.evidence:
            if e.kind == "witness":
                report.add(
                    _diag(
                        "BER062",
                        witness_severity,
                        f"SEQUENTIAL witness (loop {lv.var!r}): {e.detail} "
                        f"[{' vs '.join(e.refs)}]",
                        f"loop {lv.var}, statements {list(e.statements)}",
                    )
                )
    for k, stmt in enumerate(program.body):
        if stmt.reduce and stmt.op != "+":
            report.add(
                _diag(
                    "BER063",
                    INFO,
                    f"recognized reduction update {stmt!r}: associative/"
                    f"commutative combine '{stmt.op}' with RHS independent "
                    "of the target",
                    f"statement [{k}]",
                    stmt,
                    source,
                )
            )

    certificate = ParallelismCertificate(
        fingerprint=program_fingerprint(program),
        verdict=verdict,
        loops=tuple(loops),
    )
    report.add(
        _diag(
            "BER061",
            INFO,
            f"parallelism certificate issued: program verdict "
            f"{verdict.label()}, fingerprint {certificate.fingerprint}",
            "program",
        )
    )
    return Classification(program, verdict, tuple(loops), certificate, report)


def classify_source(source: str, gate: bool = True) -> Classification:
    """Parse mini-language text and classify it."""
    from repro.compiler.parser import parse

    return classify_program(parse(source), source=source, gate=gate)


# ----------------------------------------------------------------------
# certificate validation (re-run on every plan-cache hit)
# ----------------------------------------------------------------------
def check_certificate(
    program: Program, certificate: ParallelismCertificate
) -> DiagnosticReport:
    """Validate a certificate against a program, without trusting it.

    Checks, each a BER064 error on failure:

    * the fingerprint matches the normalized program,
    * the certified loops are exactly the program's loops, in order,
    * every evidence record's claims hold structurally (statement
      indices in range, cited accesses present in those statements,
      commute evidence matching an actual reduction of that operator),
    * each per-loop verdict equals a fresh re-derivation, and the
      program verdict is the lattice join of the per-loop verdicts.

    This is pure tuple algebra — microseconds, cheap enough to re-run on
    every cache hit.
    """
    report = DiagnosticReport()

    def fail(msg: str, where: str = "certificate") -> None:
        report.add(_diag("BER064", ERROR, msg, where))

    if certificate is None:
        fail("no certificate attached to the compiled plan")
        return report
    if certificate.version != 1:
        fail(f"unsupported certificate version {certificate.version}")
        return report
    program = normalize_program(program)
    fp = program_fingerprint(program)
    if certificate.fingerprint != fp:
        fail(
            f"fingerprint mismatch: certificate says "
            f"{certificate.fingerprint}, program hashes to {fp} — the "
            "certificate describes a different loop nest"
        )
        return report
    want_vars = [l.var for l in program.loops]
    have_vars = [lv.var for lv in certificate.loops]
    if want_vars != have_vars:
        fail(
            f"certified loops {have_vars} do not match the program's "
            f"loops {want_vars}"
        )
        return report

    accesses_of = []
    for stmt in program.body:
        accesses_of.append(
            {repr(stmt.target)} | {repr(r) for r in stmt.expr.refs()}
        )
    joined = Verdict(DOALL)
    for lv in certificate.loops:
        where = f"certificate, loop {lv.var}"
        for e in lv.evidence:
            if any(k < 0 or k >= len(program.body) for k in e.statements):
                fail(
                    f"evidence cites statement indices {list(e.statements)} "
                    f"outside the program body", where,
                )
                continue
            cited = set().union(
                *(accesses_of[k] for k in e.statements)
            ) if e.statements else set()
            missing = [r for r in e.refs if r not in cited]
            if missing:
                fail(
                    f"evidence cites accesses {missing} absent from "
                    f"statements {list(e.statements)}", where,
                )
            if e.kind == "commutes":
                stmts = [program.body[k] for k in e.statements]
                if not all(s.reduce and s.op == e.op for s in stmts):
                    fail(
                        f"commute evidence claims '{e.op}'-reductions but "
                        f"statements {list(e.statements)} are not", where,
                    )
        fresh, _ = _classify_loop(program, lv.var)
        if fresh != lv.verdict:
            fail(
                f"verdict mismatch: certificate says "
                f"{lv.verdict.label()}, re-derivation says {fresh.label()}",
                where,
            )
        joined = joined.join(lv.verdict)
    if joined != certificate.verdict:
        fail(
            f"program verdict {certificate.verdict.label()} is not the "
            f"join of the per-loop verdicts ({joined.label()})"
        )
    return report


# ----------------------------------------------------------------------
# seeded mutation self-check: planted dependence-breaking mutants must
# flip the verdict (regions-pass idiom — the detector itself is on trial)
# ----------------------------------------------------------------------
def _rotate_tuple(indices: tuple[str, ...], loop_vars: tuple[str, ...]) -> tuple[str, ...]:
    """An index tuple provoking aliasing: rotate a multi-index tuple, or
    swap a single index for the next loop variable."""
    if len(indices) > 1:
        return indices[1:] + indices[:1]
    k = loop_vars.index(indices[0]) if indices[0] in loop_vars else 0
    return (loop_vars[(k + 1) % len(loop_vars)],)


def mutate_plainify(program: Program, rng) -> Program | None:
    """Defect: a reduction whose target does not cover the nest silently
    becomes a plain assignment (the classic dropped-'+=')."""
    loop_vars = frozenset(l.var for l in program.loops)
    cands = [
        k
        for k, s in enumerate(program.body)
        if s.reduce and not loop_vars <= set(s.target.indices)
    ]
    if not cands:
        return None
    k = int(rng.choice(cands))
    body = list(program.body)
    s = body[k]
    body[k] = Assign(s.target, s.expr, reduce=False)
    return Program(program.loops, tuple(body))


def mutate_self_read(program: Program, rng) -> Program | None:
    """Defect: the RHS gains a read of the target under a rotated index
    tuple — a planted loop-carried flow dependence."""
    if len(program.loops) < 2 and all(
        len(s.target.indices) < 2 for s in program.body
    ):
        return None
    loop_vars = tuple(l.var for l in program.loops)
    k = int(rng.integers(len(program.body)))
    body = list(program.body)
    s = body[k]
    alias = Ref(s.target.array, _rotate_tuple(s.target.indices, loop_vars))
    if alias.indices == s.target.indices:
        return None
    body[k] = Assign(s.target, BinOp("*", s.expr, alias), s.reduce, s.op)
    return Program(program.loops, tuple(body))


def mutate_mixed_ops(program: Program, rng) -> Program | None:
    """Defect: a second update to the same array with a *different*
    combine operator — updates that no longer commute with each other."""
    loop_vars = frozenset(l.var for l in program.loops)
    cands = [
        k
        for k, s in enumerate(program.body)
        if s.reduce and not loop_vars <= set(s.target.indices)
    ]
    if not cands:
        return None
    k = int(rng.choice(cands))
    s = program.body[k]
    other = "*" if s.op != "*" else "+"
    extra = Assign(s.target, s.expr, reduce=True, op=other)
    return Program(program.loops, program.body + (extra,))


def mutate_drop_target_index(program: Program, rng) -> Program | None:
    """Defect: a covering plain-assignment target loses one index — every
    iteration of the dropped loop now writes the same element."""
    loop_vars = frozenset(l.var for l in program.loops)
    cands = [
        k
        for k, s in enumerate(program.body)
        if not s.reduce
        and len(s.target.indices) > 1
        and loop_vars <= set(s.target.indices)
    ]
    if not cands:
        return None
    k = int(rng.choice(cands))
    body = list(program.body)
    s = body[k]
    drop = int(rng.integers(len(s.target.indices)))
    kept = tuple(ix for a, ix in enumerate(s.target.indices) if a != drop)
    body[k] = Assign(Ref(s.target.array, kept), s.expr, reduce=False)
    return Program(program.loops, tuple(body))


_MUTANTS = {
    "plainify-reduction": mutate_plainify,
    "inject-self-read": mutate_self_read,
    "mixed-op-update": mutate_mixed_ops,
    "drop-target-index": mutate_drop_target_index,
}

#: clean probe nests for the self-check, spanning the whole lattice
#: short of SEQUENTIAL (built inline — analysis passes cannot import
#: the test suite)
_PROBES = (
    ("spmv", "for i in 0:n { for j in 0:m { Y[i] += A[i,j] * X[j] } }"),
    ("spmv_t", "for i in 0:n { for j in 0:m { Y[j] += A[i,j] * X[i] } }"),
    ("rowprod", "for i in 0:n { for j in 0:m { Y[i] = Y[i] * A[i,j] } }"),
    ("rowmin", "for i in 0:n { for j in 0:m { M[i] = min(M[i], A[i,j]) } }"),
    ("entrywise", "for i in 0:n { for j in 0:m { C[i,j] = A[i,j] * B[i,j] } }"),
)


def run_depend_selfcheck(seed: int = 1997) -> DiagnosticReport:
    """Apply every seeded dependence-breaking mutant to every clean probe
    and require the lattice verdict to strictly worsen.  An escaped
    mutant is a BER065 error — the analyzer itself failed."""
    from repro.compiler.parser import parse

    report = DiagnosticReport()
    rng = np.random.default_rng(seed)
    for name, src in _PROBES:
        program = normalize_program(parse(src))
        clean = classify_program(program, source=src)
        if clean.verdict.kind == SEQUENTIAL:
            report.extend(clean.report.errors())
            report.add(
                _diag(
                    "BER065",
                    ERROR,
                    "unmutated probe classified SEQUENTIAL — the probe "
                    "set or the analyzer is broken",
                    f"probe {name}",
                )
            )
            continue
        for mname, mutate in _MUTANTS.items():
            mutant = mutate(program, rng)
            if mutant is None:
                continue  # mutation not applicable to this probe shape
            try:
                mutated = classify_program(mutant, gate=False)
            except ParseError:
                # the front-end itself rejects the mutant (e.g. a planted
                # self-read in a plain assignment) — caught even earlier
                # than the analyzer
                report.add(
                    _diag(
                        "BER066",
                        INFO,
                        f"seeded mutant {mname!r} caught: rejected by "
                        "normalization before analysis",
                        f"probe {name}",
                    )
                )
                continue
            if mutated.verdict.rank <= clean.verdict.rank:
                report.add(
                    _diag(
                        "BER065",
                        ERROR,
                        f"seeded mutant {mname!r} escaped: verdict stayed "
                        f"{mutated.verdict.label()} (clean: "
                        f"{clean.verdict.label()}) — the analyzer is blind "
                        "to this planted dependence",
                        f"probe {name}",
                    )
                )
            else:
                report.add(
                    _diag(
                        "BER066",
                        INFO,
                        f"seeded mutant {mname!r} caught: "
                        f"{clean.verdict.label()} → {mutated.verdict.label()}",
                        f"probe {name}",
                    )
                )
    return report


# ----------------------------------------------------------------------
# registered sweep pass: classify the shipped kernels + self-check
# ----------------------------------------------------------------------
@register_pass(
    "depend",
    "parallelism-lattice classification of shipped kernels "
    "(+ seeded mutation self-check)",
)
def _sweep() -> DiagnosticReport:
    from repro.kernels.spmm import SPMM_SRC
    from repro.kernels.spmv import SPMV_SRC, SPMV_T_SRC
    from repro.kernels.vecops import AXPY_SRC, DOT_SRC, SCALE_SRC

    report = DiagnosticReport()
    for src in (SPMV_SRC, SPMV_T_SRC, SPMM_SRC, AXPY_SRC, DOT_SRC, SCALE_SRC):
        report.extend(classify_source(src).report)
    report.extend(run_depend_selfcheck())
    return report
