"""Diagnostic objects shared by every verification pass.

Each finding is a :class:`Diagnostic` with a *stable* code (``BER0xx``) —
tests and CI gate on codes, never on message text — a severity, and a
location: a human-readable ``location`` string always, plus a
:class:`~repro.sourceloc.SourceSpan` + source text when the finding
points at mini-language source (the caret snippet then matches
:class:`~repro.errors.ParseError` rendering exactly).

Code allocation (see DESIGN.md §9 for the full table):

=========  ==========================================================
BER001     CLI input failure (parse/compile of a kernel file)
BER010-014 DOANY dependence checker (:mod:`repro.analysis.doany`)
BER020-028 format-contract auditor (:mod:`repro.analysis.contracts`)
BER030-034 plan & generated-code linter (:mod:`repro.analysis.lint`)
BER040-045 SPMD schedule checker (:mod:`repro.analysis.schedule`)
BER050-055 sparsity-structure analyzer (:mod:`repro.analysis.structure`)
BER056-059 region-partition auditor (:mod:`repro.analysis.regions`)
BER060-069 dependence & reduction analyzer (:mod:`repro.analysis.depend`)
=========  ==========================================================
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.sourceloc import SourceSpan, caret_snippet

__all__ = [
    "ERROR",
    "WARN",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticReport",
]

ERROR = "error"
WARN = "warn"
INFO = "info"
SEVERITIES = (ERROR, WARN, INFO)

_CODE_RE = re.compile(r"^BER\d{3}$")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one verification pass."""

    code: str  # stable "BER0xx" identifier
    severity: str  # error | warn | info
    message: str
    #: which pass produced it: "doany" | "contracts" | "lint" | "schedule"
    pass_name: str = ""
    #: human-readable location — "statement [0]", "format CRS, level 1",
    #: "plan step 2", "rank 1, collective 3", ...
    location: str = ""
    #: source span + text when the finding points at mini-language source
    span: SourceSpan | None = field(default=None, compare=False)
    source: str | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not _CODE_RE.match(self.code):
            raise ValueError(f"diagnostic code {self.code!r} is not BERnnn")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        """``code severity [location]: message`` plus a caret snippet when
        the diagnostic carries a source span."""
        loc = f" [{self.location}]" if self.location else ""
        head = f"{self.code} {self.severity}{loc}: {self.message}"
        if self.span is not None and self.source is not None:
            return f"{head}\n  at {caret_snippet(self.source, self.span, indent='      ')}"
        return head

    def to_dict(self) -> dict:
        d = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "pass": self.pass_name,
            "location": self.location,
        }
        if self.span is not None:
            d["span"] = [self.span.start, self.span.end]
        return d


class DiagnosticReport:
    """An ordered collection of diagnostics with severity accessors."""

    def __init__(self, diagnostics=()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------------
    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> "DiagnosticReport":
        """Append diagnostics (or another report); returns self."""
        if isinstance(diags, DiagnosticReport):
            diags = diags.diagnostics
        self.diagnostics.extend(diags)
        return self

    # ------------------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARN]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were recorded."""
        return not self.errors()

    # ------------------------------------------------------------------
    def dedupe(self) -> "DiagnosticReport":
        """Drop exact-duplicate diagnostics in place; returns self.

        Two diagnostics are duplicates when code, severity, message,
        pass, location *and* source span all match — re-analyzing the
        same artifact (e.g. linting a kernel served twice from a warm
        plan cache) must not inflate the report.  First occurrences win,
        order is preserved."""
        seen: set[tuple] = set()
        kept: list[Diagnostic] = []
        for d in self.diagnostics:
            key = (
                d.code,
                d.severity,
                d.message,
                d.pass_name,
                d.location,
                (d.span.start, d.span.end) if d.span is not None else None,
            )
            if key not in seen:
                seen.add(key)
                kept.append(d)
        self.diagnostics = kept
        return self

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ------------------------------------------------------------------
    def render(self, min_severity: str = INFO) -> str:
        """Render every diagnostic at or above ``min_severity``."""
        order = {ERROR: 0, WARN: 1, INFO: 2}
        cutoff = order[min_severity]
        lines = [
            d.render() for d in self.diagnostics if order[d.severity] <= cutoff
        ]
        if not lines:
            return "no diagnostics"
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"{len(self.errors())} error(s), {len(self.warnings())} "
            f"warning(s), {len(self.infos())} info"
        )

    def to_json(self, indent: int | None = 2, passes=None, extra=None) -> str:
        """JSON payload; ``passes`` lists the pass names that produced
        this report (CI consumers need to tell "pass ran clean" apart
        from "pass never ran").  ``extra`` merges additional top-level
        keys into the document (e.g. the CLI's per-file parallelism
        certificates) without colliding with the report's own keys."""
        doc = {
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "infos": len(self.infos()),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if passes is not None:
            doc["passes"] = list(passes)
        if extra:
            for key in extra:
                if key in doc:
                    raise ValueError(f"extra key {key!r} collides with the report")
            doc.update(extra)
        return json.dumps(doc, indent=indent)
