"""DOANY dependence checker (paper Sec. 2's unchecked assumption).

The mini-language promises the compiler a DOANY nest: every iteration of
the loop product may execute in any order (or concurrently) without
changing the result.  Nothing verified that promise before this pass.

Because indices are plain loop-variable names (no affine arithmetic —
the grammar only admits ``A[i,j]``), the classic dependence tests reduce
to tuple algebra over index tuples:

* an access tuple *covers* the nest when every loop variable appears in
  it — then the tuple names a distinct element in every iteration, so
  any dependence through it is intra-iteration (harmless);
* two accesses to the same array with *different* index tuples (e.g.
  ``Y[i,j]`` vs ``Y[j,i]``) touch the same element from different
  iterations whenever the tuples can collide — a loop-carried flow/anti
  dependence;
* a tuple that does *not* cover the nest is written by every iteration
  of the missing variables — an output dependence for plain writes, and
  exactly the *legal reduction* carve-out for pure ``+=`` accumulation
  (order-independent up to floating-point rounding, the DOANY contract).

Codes:

=======  ============================================================
BER010   info — statement verified iteration-independent / legal reduction
BER011   error — plain assignment's target does not cover the nest
         (many iterations write the same element; last writer wins)
BER012   error — RHS reads the statement's own target across iterations
         (reduction reading its target, or plain assignment doing so)
BER013   error — cross-statement loop-carried flow/anti dependence
         (one statement writes what another reads, tuples differ or
         do not cover the nest)
BER014   error — cross-statement output dependence (two writes to the
         same array that are not both pure reductions)
=======  ============================================================
"""

from __future__ import annotations

from repro.analysis.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass
from repro.compiler.ast_nodes import Program

__all__ = ["check_program", "check_source"]

_PASS = "doany"


def _covers(indices: tuple[str, ...], loop_vars: frozenset[str]) -> bool:
    """True when every loop variable appears in the index tuple."""
    return loop_vars <= set(indices)


def _diag(code, severity, message, location, stmt_or_ref=None, source=None):
    span = getattr(stmt_or_ref, "span", None)
    return Diagnostic(
        code,
        severity,
        message,
        pass_name=_PASS,
        location=location,
        span=span,
        source=source if span is not None else None,
    )


def check_program(program: Program, source: str | None = None) -> DiagnosticReport:
    """Prove every statement DOANY-legal, or say exactly why not.

    ``source`` is the mini-language text the program was parsed from
    (optional); with it, error diagnostics carry caret snippets.
    """
    report = DiagnosticReport()
    loop_vars = frozenset(l.var for l in program.loops)

    # ------------------------------------------------------------------
    # per-statement checks: target coverage + self-reads
    # ------------------------------------------------------------------
    stmt_clean = [True] * len(program.body)
    for k, stmt in enumerate(program.body):
        loc = f"statement [{k}]"
        t = stmt.target.indices
        if not stmt.reduce and not _covers(t, loop_vars):
            missing = sorted(loop_vars - set(t))
            report.add(
                _diag(
                    "BER011",
                    ERROR,
                    f"plain assignment target {stmt.target!r} does not cover "
                    f"loop variable(s) {missing}: every iteration of the "
                    "missing loops writes the same element (not DOANY); "
                    "write a reduction with '+=' or index the target fully",
                    loc,
                    stmt.target,
                    source,
                )
            )
            stmt_clean[k] = False
        for r in stmt.expr.refs():
            if r.array != stmt.target.array:
                continue
            if stmt.reduce and r.indices == t and _covers(t, loop_vars):
                # Y[i] += Y[i] * ... : each iteration owns its element
                continue
            if stmt.reduce:
                why = (
                    "the update is not a pure reduction: iteration order "
                    "changes the value read"
                )
            else:
                why = "zero-fill compilation would read the cleared target"
            report.add(
                _diag(
                    "BER012",
                    ERROR,
                    f"{r!r} reads the statement's own target "
                    f"{stmt.target!r} across iterations — {why}",
                    loc,
                    r,
                    source,
                )
            )
            stmt_clean[k] = False

    # ------------------------------------------------------------------
    # cross-statement checks: flow/anti (write vs read) and output
    # (write vs write) dependences between different statements
    # ------------------------------------------------------------------
    for k1, s1 in enumerate(program.body):
        for k2, s2 in enumerate(program.body):
            if k1 == k2:
                continue
            # write in s1 vs read in s2 (k1 < k2: flow; k1 > k2: anti —
            # symmetric for DOANY, so only report each unordered pair once)
            if k1 > k2:
                continue
            for writer, reader, wk, rk in ((s1, s2, k1, k2), (s2, s1, k2, k1)):
                w = writer.target
                for r in reader.expr.refs():
                    if r.array != w.array:
                        continue
                    if r.indices == w.indices and _covers(w.indices, loop_vars):
                        continue  # same element, same iteration only
                    kind = "flow" if wk < rk else "anti"
                    report.add(
                        _diag(
                            "BER013",
                            ERROR,
                            f"loop-carried {kind} dependence: statement "
                            f"[{wk}] writes {w!r}, statement [{rk}] reads "
                            f"{r!r} — iterations are not independent",
                            f"statements [{wk}]→[{rk}]",
                            r,
                            source,
                        )
                    )
                    stmt_clean[wk] = stmt_clean[rk] = False
            # write vs write (output dependence)
            if s1.target.array == s2.target.array:
                # updates commute with each other only under the SAME
                # combine operator ('+=' then '*=' is order-sensitive)
                both_reduce = s1.reduce and s2.reduce and s1.op == s2.op
                same_elem = s1.target.indices == s2.target.indices and _covers(
                    s1.target.indices, loop_vars
                )
                if not (both_reduce or same_elem):
                    report.add(
                        _diag(
                            "BER014",
                            ERROR,
                            f"output dependence: statements [{k1}] and "
                            f"[{k2}] both write {s1.target.array!r} and at "
                            "least one is a plain assignment — the final "
                            "value depends on iteration order",
                            f"statements [{k1}]→[{k2}]",
                            s2.target,
                            source,
                        )
                    )
                    stmt_clean[k1] = stmt_clean[k2] = False

    for k, stmt in enumerate(program.body):
        if stmt_clean[k]:
            verdict = (
                "legal reduction" if stmt.reduce else "iteration-independent"
            )
            report.add(
                _diag(
                    "BER010",
                    INFO,
                    f"{stmt!r}: verified {verdict} (DOANY-legal)",
                    f"statement [{k}]",
                    stmt,
                    source,
                )
            )
    return report


def check_source(source: str) -> DiagnosticReport:
    """Parse mini-language text and run the dependence checker on it."""
    from repro.compiler.parser import parse

    return check_program(parse(source), source=source)


@register_pass("doany", "DOANY dependence checker over shipped kernels")
def _sweep() -> DiagnosticReport:
    from repro.kernels.spmm import SPMM_SRC
    from repro.kernels.spmv import SPMV_SRC, SPMV_T_SRC
    from repro.kernels.vecops import AXPY_SRC, DOT_SRC, SCALE_SRC

    report = DiagnosticReport()
    for src in (SPMV_SRC, SPMV_T_SRC, SPMM_SRC, AXPY_SRC, DOT_SRC, SCALE_SRC):
        report.extend(check_source(src))
    return report
