"""Plan & generated-code linter.

Two halves, one report:

* **plan lint** — walk a :class:`~repro.compiler.scheduling.Plan`'s steps
  and flag join shapes that execute correctly but defeat the paper's cost
  story: a guarded enumerate×enumerate join (filtering a full enumeration
  against already-bound indices) where the level declared itself
  searchable, and executor backends that fell back to scalar lowering;
* **generated-code lint** — ``ast``-parse the emitted kernel source and
  check structural hygiene the ``exec`` boundary cannot: every name loaded
  is a parameter, a bound local, or a known builtin; subscript writes land
  only in declared output arrays; no statement rebinds a storage
  parameter.

Codes:

=======  ============================================================
BER030   warn — guarded enumerate×enumerate join (filter guard on an
         already-bound index; worse when the level was searchable)
BER031   warn — executor backend fell back to scalar lowering
BER032   error — generated code reads a name that is never bound
BER033   error — generated code writes an array outside the declared
         kernel outputs
BER034   error — generated code rebinds a storage parameter
=======  ============================================================
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import ERROR, WARN, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass

__all__ = [
    "lint_plan",
    "lint_generated_source",
    "lint_kernel",
    "lint_shipped_kernels",
]

_PASS = "lint"

#: names the generated code may read without binding them itself
_ALLOWED_GLOBALS = frozenset(
    {"np", "range", "len", "min", "max", "abs", "int", "float", "enumerate"}
)


def _diag(code, severity, message, location):
    return Diagnostic(code, severity, message, pass_name=_PASS, location=location)


# ----------------------------------------------------------------------
# plan lint
# ----------------------------------------------------------------------
def lint_plan(plan, formats=None, where: str = "plan") -> DiagnosticReport:
    """Flag plan shapes that are legal but costly.

    ``formats`` (name → Format instance) refines the message: with it the
    linter can say whether a search join was actually available at the
    guarded level."""
    report = DiagnosticReport()
    if plan.noop:
        return report
    for k, step in enumerate(plan.steps):
        if step.kind != "enumerate" or not step.guards:
            continue
        level = None
        if formats is not None and step.term in formats:
            level = formats[step.term].levels()[step.level_index]
        if level is None:
            hint = "a filtered full enumeration runs in the join's inner loop"
        elif level.searchable:
            hint = (
                "the level is searchable — a join order that binds all of "
                "its axes first could search instead of filtering"
            )
        else:
            hint = (
                "the level is not searchable, so the filter is forced; "
                "consider a format whose level can be searched on "
                f"{list(step.guards)}"
            )
        report.add(
            _diag(
                "BER030",
                WARN,
                f"enumerate×enumerate join: step {step!r} enumerates "
                f"{step.term!r} and filters on already-bound "
                f"{list(step.guards)}; {hint}",
                f"{where}, step {k}",
            )
        )
    return report


# ----------------------------------------------------------------------
# generated-code lint
# ----------------------------------------------------------------------
def lint_generated_source(
    source: str, param_names, output_arrays, where: str = "generated source"
) -> DiagnosticReport:
    """``ast``-level hygiene checks on an emitted kernel function.

    ``output_arrays`` are the array names the program's statements write;
    any subscript store into a parameter outside their storage prefixes
    is an error (the kernel would silently corrupt an input operand).
    """
    report = DiagnosticReport()
    params = set(param_names)
    try:
        tree = ast.parse(source)
    except SyntaxError as e:
        report.add(
            _diag(
                "BER032",
                ERROR,
                f"generated source does not parse: {e.msg}",
                f"{where} line {e.lineno}",
            )
        )
        return report

    bound: set[str] = set(params)
    loads: list[ast.Name] = []

    class Visitor(ast.NodeVisitor):
        def visit_FunctionDef(self, node):
            bound.add(node.name)
            bound.update(a.arg for a in node.args.args)
            self.generic_visit(node)

        def visit_Name(self, node):
            if isinstance(node.ctx, ast.Load):
                loads.append(node)
            else:
                bound.add(node.id)
                if node.id in params and isinstance(node.ctx, ast.Store):
                    report.add(
                        _diag(
                            "BER034",
                            ERROR,
                            f"statement rebinds storage parameter {node.id!r} "
                            "— later loads read the shadowing value, not the "
                            "bound storage",
                            f"{where} line {node.lineno}",
                        )
                    )

    Visitor().visit(tree)
    for node in loads:
        if node.id not in bound and node.id not in _ALLOWED_GLOBALS:
            report.add(
                _diag(
                    "BER032",
                    ERROR,
                    f"name {node.id!r} is read but never bound (not a "
                    "parameter, local, or allowed global) — the kernel "
                    "would raise NameError at run time",
                    f"{where} line {node.lineno}",
                )
            )

    ok_prefixes = tuple(f"{a}_" for a in output_arrays)
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign,)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if not isinstance(base, ast.Name) or base.id not in params:
                continue  # writes into generated locals are fine
            if not base.id.startswith(ok_prefixes):
                report.add(
                    _diag(
                        "BER033",
                        ERROR,
                        f"subscript write into {base.id!r}, which is not "
                        f"storage of a declared output "
                        f"({sorted(output_arrays)}) — an input operand "
                        "would be mutated",
                        f"{where} line {node.lineno}",
                    )
                )
    return report


# ----------------------------------------------------------------------
# whole-kernel entry point
# ----------------------------------------------------------------------
def lint_kernel(
    kernel, formats=None, where: str = "kernel", into: DiagnosticReport | None = None
) -> DiagnosticReport:
    """Lint a :class:`~repro.compiler.kernels.CompiledKernel`: every
    unit's plan, the backend lowering labels, and the emitted source.

    Pass ``formats`` (the instances the kernel was compiled against) to
    get level-aware plan messages; without it plan lint still runs but
    cannot say whether a search was available.

    ``into`` accumulates findings into an existing report instead of a
    fresh one.  Either way the result is deduplicated: linting the same
    kernel object twice (a warm :class:`~repro.compiler.plan_cache.PlanCache`
    serves one kernel to every identical compile) reports each finding
    once, not once per compile."""
    report = into if into is not None else DiagnosticReport()
    for k, unit in enumerate(kernel.units):
        report.extend(
            lint_plan(unit.plan, formats, where=f"{where}, unit [{k}]")
        )
    for k, label in enumerate(kernel.unit_backends):
        if label.startswith("fallback"):
            report.add(
                _diag(
                    "BER031",
                    WARN,
                    f"backend {kernel.backend!r} lowered unit [{k}] via "
                    f"{label!r} — the vectorized strategy did not apply",
                    f"{where}, unit [{k}]",
                )
            )
    outputs = {u.stmt.target.array for u in kernel.units}
    report.extend(
        lint_generated_source(
            kernel.source,
            kernel.param_names,
            outputs,
            where=f"{where} source",
        )
    )
    return report.dedupe()


# ----------------------------------------------------------------------
# sweep: shipped kernels on representative formats
# ----------------------------------------------------------------------
@register_pass("lint", "plan & generated-code lint over shipped kernels")
def lint_shipped_kernels() -> DiagnosticReport:
    import numpy as np

    from repro.compiler import compile_kernel
    from repro.formats.coo import COOMatrix
    from repro.formats.crs import CRSMatrix
    from repro.formats.dense import DenseMatrix, DenseVector
    from repro.kernels.spmm import SPMM_SRC
    from repro.kernels.spmv import SPMV_SRC, SPMV_T_SRC
    from repro.kernels.vecops import AXPY_SRC, DOT_SRC, SCALE_SRC

    rng = np.random.default_rng(7)
    d = (rng.random((5, 5)) < 0.5) * rng.integers(1, 5, (5, 5)).astype(float)
    A = CRSMatrix.from_coo(COOMatrix.from_dense(d))
    x = DenseVector(np.ones(5))
    y = DenseVector(np.zeros(5))
    B = DenseMatrix.zeros(5, 4)
    C = DenseMatrix.zeros(5, 4)
    s = DenseVector.zeros(1)

    cases = [
        ("spmv", SPMV_SRC, {"A": A, "X": x, "Y": y}),
        ("spmv_t", SPMV_T_SRC, {"A": A, "X": x, "Y": y}),
        ("spmm", SPMM_SRC, {"A": A, "B": B, "C": C}),
        ("axpy", AXPY_SRC, {"X": x, "Y": y}),
        ("dot", DOT_SRC, {"X": x, "Y": y, "S": s}),
        ("scale", SCALE_SRC, {"X": x, "Y": y}),
    ]
    report = DiagnosticReport()
    for name, src, formats in cases:
        kern = compile_kernel(src, formats, cache=False)
        report.extend(lint_kernel(kern, formats, where=f"kernel {name}"))
    return report
