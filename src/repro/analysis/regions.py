"""Region-partition auditor: is a hybrid decomposition a loss-free cover?

:func:`repro.compiler.specialize.partition_regions` promises that every
stored entry of the input lands in **exactly one** region and that the
regions reassemble to the input bit for bit.  A partition that silently
drops an entry, claims one twice, or shifts a boundary produces a hybrid
SpMV that is *plausibly close* to correct — exactly the class of bug a
tolerance-based test waves through.  This pass checks the invariant
structurally, with stable codes:

=========  ==========================================================
BER056     entries of the input missing from every region (dropped)
BER057     entries claimed by more than one region, or present in a
           region but absent from the input (double-counted/spurious)
BER058     coordinates match but values do not reassemble exactly, or
           a region's materialized format does not round-trip its
           entries (materialization infidelity)
BER059     self-check meta finding: a seeded mutant escaped the audit
           (error) or was caught as designed (info)
=========  ==========================================================

The registered ``regions`` sweep pass partitions planted hybrid probes,
requires the audit to pass clean, then applies seeded structural
mutations — :func:`mutate_drop_region`, :func:`mutate_shift_boundary`,
:func:`mutate_double_count` — and requires the audit to *fail* on every
mutant.  An auditor that cannot catch a planted defect is reported as a
BER059 error, so the defect detector itself is under test.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass
from repro.formats.coo import COOMatrix

__all__ = [
    "audit_partition",
    "mutate_drop_region",
    "mutate_shift_boundary",
    "mutate_double_count",
    "run_region_selfcheck",
]


def _keys(coo: COOMatrix, ncols: int) -> np.ndarray:
    """Row-major scalar keys of a COO's coordinates."""
    return coo.row * np.int64(max(ncols, 1)) + coo.col


def _fmt_keys(keys: np.ndarray, ncols: int, limit: int = 4) -> str:
    """A few (i, j) pairs for a diagnostic message."""
    shown = [
        f"({int(k) // max(ncols, 1)},{int(k) % max(ncols, 1)})"
        for k in keys[:limit]
    ]
    more = f" …+{len(keys) - limit}" if len(keys) > limit else ""
    return ", ".join(shown) + more


def audit_partition(coo, partition, where: str = "") -> DiagnosticReport:
    """Verify that ``partition`` is a loss-free cover of ``coo``.

    Checks, in order of severity:

    * **BER056** — every canonical entry of the input appears in some
      region (nothing dropped);
    * **BER057** — no coordinate is claimed by two regions and no region
      contains a coordinate the input lacks (nothing double-counted or
      invented);
    * **BER058** — summing region values per coordinate reproduces the
      input values *exactly* (bitwise — region entries are disjoint
      single contributions, so no floating-point reassociation is
      involved), and each region's :meth:`~Region.build` materialization
      round-trips its entries exactly (explicit zeros that a dense
      window adds for padding are allowed — they do not change any sum).

    A clean audit ends with one BER050-style info line per region.
    """
    report = DiagnosticReport()
    if not isinstance(coo, COOMatrix):
        coo = coo.to_coo()
    coo = coo.canonicalized()
    n, m = coo.shape
    loc = where or f"partition of {n}x{m}"
    if tuple(partition.shape) != (n, m):
        report.add(
            Diagnostic(
                "BER057",
                ERROR,
                f"partition shape {partition.shape} != matrix shape {(n, m)}",
                pass_name="regions",
                location=loc,
            )
        )
        return report

    in_keys = _keys(coo, m)
    reg_keys = [
        _keys(r.coo.canonicalized(), m) for r in partition.regions
    ]
    union = (
        np.concatenate(reg_keys) if reg_keys else np.empty(0, dtype=np.int64)
    )
    uniq, counts = np.unique(union, return_counts=True)

    dropped = np.setdiff1d(in_keys, uniq, assume_unique=True)
    if len(dropped):
        report.add(
            Diagnostic(
                "BER056",
                ERROR,
                f"{len(dropped)} input entries missing from every region: "
                f"{_fmt_keys(dropped, m)}",
                pass_name="regions",
                location=loc,
            )
        )

    dupes = uniq[counts > 1]
    if len(dupes):
        report.add(
            Diagnostic(
                "BER057",
                ERROR,
                f"{len(dupes)} coordinates claimed by more than one region "
                f"(double-counted): {_fmt_keys(dupes, m)}",
                pass_name="regions",
                location=loc,
            )
        )
    spurious = np.setdiff1d(uniq, in_keys, assume_unique=True)
    if len(spurious):
        report.add(
            Diagnostic(
                "BER057",
                ERROR,
                f"{len(spurious)} region entries absent from the input "
                f"(spurious): {_fmt_keys(spurious, m)}",
                pass_name="regions",
                location=loc,
            )
        )

    # value fidelity: only meaningful once the coordinate sets agree —
    # reassemble() sums region values per coordinate; with a disjoint
    # cover each coordinate has exactly one contribution, so equality
    # must hold bitwise
    if report.ok:
        back = partition.reassemble().canonicalized()
        same = len(back.vals) == len(coo.vals) and np.array_equal(
            back.vals, coo.vals
        )
        if not same:
            bad = (
                np.flatnonzero(back.vals != coo.vals)
                if len(back.vals) == len(coo.vals)
                else np.arange(min(4, len(coo.vals)))
            )
            report.add(
                Diagnostic(
                    "BER058",
                    ERROR,
                    f"region values do not reassemble the input exactly "
                    f"({len(bad)} mismatched entries)",
                    pass_name="regions",
                    location=loc,
                )
            )

    # materialization fidelity: region.build().to_coo() must reproduce
    # the region's entries (a dense window may add explicit zero padding
    # — harmless; any *nonzero* deviation is a defect)
    for i, region in enumerate(partition.regions):
        rloc = f"{loc}, region [{i}] {region.kind}/{region.format_name}"
        try:
            built = region.build().to_coo().canonicalized()
        except Exception as exc:  # noqa: BLE001 - report, never crash the sweep
            report.add(
                Diagnostic(
                    "BER058",
                    ERROR,
                    f"region failed to materialize: {exc}",
                    pass_name="regions",
                    location=rloc,
                )
            )
            continue
        rcoo = region.coo.canonicalized()
        delta_keys = np.concatenate([_keys(built, m), _keys(rcoo, m)])
        delta_vals = np.concatenate([built.vals, -rcoo.vals])
        uk, inv = np.unique(delta_keys, return_inverse=True)
        sums = np.zeros(len(uk))
        np.add.at(sums, inv, delta_vals)
        bad = uk[sums != 0.0]
        if len(bad):
            report.add(
                Diagnostic(
                    "BER058",
                    ERROR,
                    f"materialized format does not round-trip the region's "
                    f"entries: {len(bad)} deviations at {_fmt_keys(bad, m)}",
                    pass_name="regions",
                    location=rloc,
                )
            )

    if report.ok:
        for i, region in enumerate(partition.regions):
            report.add(
                Diagnostic(
                    "BER050",
                    INFO,
                    f"region [{i}] {region.kind} in {region.format_name}: "
                    f"nnz={region.coo.nnz} stored={region.stored:.0f} "
                    f"segments={region.segments:.0f}",
                    pass_name="regions",
                    location=loc,
                )
            )
    return report


# ----------------------------------------------------------------------
# seeded structural mutations (defect injection for the self-check)
# ----------------------------------------------------------------------
def _clone_partition(partition, regions):
    from repro.compiler.specialize import RegionPartition

    return RegionPartition(
        shape=partition.shape,
        nnz=partition.nnz,
        regions=tuple(regions),
        profile=partition.profile,
    )


def _clone_region(region, coo):
    from repro.compiler.specialize import Region

    return Region(
        kind=region.kind,
        format_name=region.format_name,
        coo=coo,
        detail=region.detail + " [mutated]",
        stored=region.stored,
        segments=region.segments,
        windows=region.windows,
    )


def mutate_drop_region(partition, index: int):
    """Defect: a whole region silently vanishes (its entries drop)."""
    regions = [
        r for i, r in enumerate(partition.regions) if i != index % len(
            partition.regions
        )
    ]
    return _clone_partition(partition, regions)


def mutate_shift_boundary(partition, index: int):
    """Defect: one region's column coordinates shift by +1 (mod ncols) —
    the classic off-by-one region boundary."""
    idx = index % len(partition.regions)
    regions = list(partition.regions)
    r = regions[idx]
    shifted = COOMatrix(
        r.coo.shape,
        r.coo.row,
        (r.coo.col + 1) % max(r.coo.shape[1], 1),
        r.coo.vals,
    ).canonicalized()
    regions[idx] = _clone_region(r, shifted)
    return _clone_partition(partition, regions)


def mutate_double_count(partition, index: int):
    """Defect: one region appears twice (its entries double-count)."""
    idx = index % len(partition.regions)
    regions = list(partition.regions)
    regions.append(regions[idx])
    return _clone_partition(partition, regions)


_MUTANTS = {
    "drop-region": mutate_drop_region,
    "shift-boundary": mutate_shift_boundary,
    "double-count": mutate_double_count,
}


# ----------------------------------------------------------------------
# the registered sweep pass
# ----------------------------------------------------------------------
def _hybrid_probes() -> list[tuple[str, COOMatrix]]:
    """Planted mixed-structure probes (band + dense window + hub rows),
    built inline — analysis passes cannot import the test suite."""
    rng = np.random.default_rng(1997)
    n = 240
    i = np.arange(n)
    # band + one 48x48 dense diagonal window + two hub rows
    rr, cc = np.meshgrid(np.arange(96, 144), np.arange(96, 144), indexing="ij")
    hub_cols = rng.choice(n, size=n // 3, replace=False)
    mixed = COOMatrix.from_entries(
        (n, n),
        np.concatenate([i, i[:-1], rr.ravel(), np.full(len(hub_cols), 7)]),
        np.concatenate([i, i[1:], cc.ravel(), hub_cols]),
        np.concatenate(
            [
                np.full(n, 4.0),
                np.full(n - 1, -1.0),
                rng.integers(1, 5, rr.size).astype(float),
                np.ones(len(hub_cols)),
            ]
        ),
    )
    # off-diagonal window over a uniform background
    k = 3 * n
    br, bc = np.meshgrid(np.arange(16, 64), np.arange(160, 208), indexing="ij")
    offdiag = COOMatrix.from_entries(
        (n, n),
        np.concatenate([rng.integers(0, n, k), br.ravel()]),
        np.concatenate([rng.integers(0, n, k), bc.ravel()]),
        np.concatenate(
            [np.ones(k), rng.integers(1, 5, br.size).astype(float)]
        ),
    )
    return [("band+window+hubs", mixed), ("offdiag-window", offdiag)]


def run_region_selfcheck() -> DiagnosticReport:
    """Sweep pass: partition planted hybrid probes, audit clean, then
    verify every seeded mutation is caught.  An escaped mutant is a
    BER059 error — the auditor itself failed."""
    from repro.compiler.specialize import partition_regions

    report = DiagnosticReport()
    for name, coo in _hybrid_probes():
        partition = partition_regions(coo)
        clean = audit_partition(coo, partition, where=f"probe {name}")
        if not clean.ok:
            report.extend(clean)
            report.add(
                Diagnostic(
                    "BER059",
                    ERROR,
                    "partition of an unmutated probe failed its own audit",
                    pass_name="regions",
                    location=f"probe {name}",
                )
            )
            continue
        for mname, mutate in _MUTANTS.items():
            mutant = mutate(partition, 0)
            caught = audit_partition(coo, mutant, where=f"probe {name}")
            if caught.ok:
                report.add(
                    Diagnostic(
                        "BER059",
                        ERROR,
                        f"seeded mutation {mname!r} escaped the audit "
                        "(the defect detector is blind to it)",
                        pass_name="regions",
                        location=f"probe {name}",
                    )
                )
            else:
                report.add(
                    Diagnostic(
                        "BER059",
                        INFO,
                        f"seeded mutation {mname!r} caught: "
                        + ",".join(sorted(set(caught.codes()) - {"BER050"})),
                        pass_name="regions",
                        location=f"probe {name}",
                    )
                )
    return report


register_pass(
    "regions",
    "region-partition loss-free-cover audit (seeded mutations)",
)(run_region_selfcheck)
