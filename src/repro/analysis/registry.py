"""The verification-pass registry.

Each pass registers a name, a one-line description, and a zero-config
entry point (used by the ``python -m repro.analysis`` CLI to run "all
passes" without hard-coding the list).  Passes with richer signatures
(per-kernel, per-format, per-strategy) expose those directly from their
modules; the registered runner is the whole-repo sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = ["AnalysisPass", "register_pass", "get_pass", "all_passes"]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered verification pass."""

    name: str
    description: str
    #: zero-argument whole-repo runner returning a DiagnosticReport
    run: Callable

    def __repr__(self):
        return f"AnalysisPass({self.name!r}: {self.description})"


_PASSES: dict[str, AnalysisPass] = {}


def register_pass(name: str, description: str):
    """Decorator registering ``fn`` as the named pass's sweep runner."""

    def deco(fn):
        if name in _PASSES:
            raise ReproError(f"analysis pass {name!r} registered twice")
        _PASSES[name] = AnalysisPass(name, description, fn)
        return fn

    return deco


def get_pass(name: str) -> AnalysisPass:
    try:
        return _PASSES[name]
    except KeyError:
        raise ReproError(
            f"unknown analysis pass {name!r}; known: {sorted(_PASSES)}"
        ) from None


def all_passes() -> dict[str, AnalysisPass]:
    """Registered passes in registration order."""
    return dict(_PASSES)
