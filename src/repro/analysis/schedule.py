"""SPMD schedule checker: deadlock-freedom before execution.

A :class:`~repro.runtime.inspector.GatherSchedule` is a *promise* between
ranks: rank p will pack ``send_locals[q]`` values for q, and q expects
them to land in ``recv_slots[p]``, covering its ghost buffer exactly.
The runtime trusts the promise — a length mismatch deadlocks a real
message-passing machine (one side waits forever), an uncovered ghost
slot silently multiplies by stale data.  This pass validates the promise
*before* the executor runs:

* **per-rank structure** — ghost directory strictly sorted (the slot
  lookup binary-searches it), every ghost slot covered exactly once by
  the self/recv slot lists, send offsets within the local range;
* **cross-rank matching** — rank p sends to q exactly when q expects a
  packet from p, with equal lengths;
* **collective lockstep** — a lightweight driver (the routing rules of
  :class:`~repro.runtime.machine.Machine`, diagnostics instead of
  exceptions) runs every rank's SPMD generator and flags mismatched
  collective kinds, mismatched phase labels, and ranks finishing while
  peers still wait;
* **rebuild re-verification** — :func:`verify_rebuilt_schedule` is called
  by the fault-recovery protocol
  (:func:`~repro.runtime.faults.ensure_valid_schedule`) so a re-inspected
  schedule passes the same structural bar as the original.

Codes:

=======  ============================================================
BER040   error — send/recv mismatch between ranks (missing peer or
         unequal packet lengths; a real machine deadlocks here)
BER041   error — collective-sequence violation (mismatched kinds or
         phase labels, premature rank finish, superstep overrun)
BER042   error — ghost slot never filled (stale data would be read)
BER043   error — malformed index structure (unsorted ghost directory,
         duplicate/out-of-range slot, send offset outside local range)
BER044   error — schedule checksum does not match the recorded
         fingerprint
BER045   info — strategy's schedules and collective trace verified
=======  ============================================================
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import ERROR, INFO, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass

__all__ = [
    "check_local_schedule",
    "check_gather_schedules",
    "trace_collectives",
    "verify_rebuilt_schedule",
    "check_spmv_strategies",
]

_PASS = "schedule"

#: lockstep-driver superstep budget — generous: the shipped strategies
#: need tens of supersteps, so hitting this means a livelock
_MAX_SUPERSTEPS = 100_000


def _diag(code, severity, message, location):
    return Diagnostic(code, severity, message, pass_name=_PASS, location=location)


# ----------------------------------------------------------------------
# per-rank structural checks
# ----------------------------------------------------------------------
def check_local_schedule(sched, nlocal=None, where=None) -> DiagnosticReport:
    """Structural invariants of one rank's gather schedule."""
    report = DiagnosticReport()
    loc = where or f"rank {sched.rank} schedule"
    gg = np.asarray(sched.ghost_global)
    if len(gg) > 1 and np.any(np.diff(gg) <= 0):
        report.add(
            _diag(
                "BER043",
                ERROR,
                "ghost directory is not strictly sorted — ghost_slot_of "
                "binary-searches it, so lookups would silently miss",
                loc,
            )
        )
    covered = np.zeros(sched.nghost, dtype=np.int64)
    sources = [("self", sched.self_slots)] + [
        (f"peer {q}", sched.recv_slots[q]) for q in sorted(sched.recv_slots)
    ]
    for src_name, slots in sources:
        slots = np.asarray(slots)
        bad = slots[(slots < 0) | (slots >= sched.nghost)]
        if len(bad):
            report.add(
                _diag(
                    "BER043",
                    ERROR,
                    f"{src_name} fills ghost slot(s) {bad[:3].tolist()} "
                    f"outside 0..{sched.nghost - 1}",
                    loc,
                )
            )
            slots = slots[(slots >= 0) & (slots < sched.nghost)]
        np.add.at(covered, slots, 1)
    dup = np.flatnonzero(covered > 1)
    if len(dup):
        report.add(
            _diag(
                "BER043",
                ERROR,
                f"ghost slot(s) {dup[:3].tolist()} filled more than once — "
                "the last packet wins nondeterministically",
                loc,
            )
        )
    miss = np.flatnonzero(covered == 0)
    if len(miss):
        report.add(
            _diag(
                "BER042",
                ERROR,
                f"ghost slot(s) {miss[:3].tolist()} of {sched.nghost} are "
                "never filled by any peer or self-resolution — the executor "
                "would read stale buffer contents",
                loc,
            )
        )
    if nlocal is not None:
        for q in sorted(sched.send_locals):
            offs = np.asarray(sched.send_locals[q])
            bad = offs[(offs < 0) | (offs >= max(1, nlocal))]
            if len(bad):
                report.add(
                    _diag(
                        "BER043",
                        ERROR,
                        f"send list for peer {q} indexes local offset(s) "
                        f"{bad[:3].tolist()} outside 0..{nlocal - 1}",
                        loc,
                    )
                )
        offs = np.asarray(sched.self_locals)
        bad = offs[(offs < 0) | (offs >= max(1, nlocal))]
        if len(bad):
            report.add(
                _diag(
                    "BER043",
                    ERROR,
                    f"self-resolution indexes local offset(s) "
                    f"{bad[:3].tolist()} outside 0..{nlocal - 1}",
                    loc,
                )
            )
    return report


# ----------------------------------------------------------------------
# cross-rank matching
# ----------------------------------------------------------------------
def _cross_check(sends, recvs, where="schedules") -> DiagnosticReport:
    """``sends[p][q]``/``recvs[p][q]`` are packet lengths; every promise
    must have a matching expectation of equal length."""
    report = DiagnosticReport()
    nprocs = len(sends)
    for p in range(nprocs):
        for q, n in sorted(sends[p].items()):
            if not (0 <= q < nprocs):
                report.add(
                    _diag(
                        "BER040",
                        ERROR,
                        f"rank {p} sends to nonexistent rank {q}",
                        where,
                    )
                )
                continue
            expect = recvs[q].get(p)
            if expect is None:
                report.add(
                    _diag(
                        "BER040",
                        ERROR,
                        f"rank {p} sends {n} value(s) to rank {q}, but rank "
                        f"{q} expects no packet from rank {p} — rank {p} "
                        "would block in send forever",
                        where,
                    )
                )
            elif expect != n:
                report.add(
                    _diag(
                        "BER040",
                        ERROR,
                        f"rank {p} sends {n} value(s) to rank {q}, which "
                        f"expects {expect} — the receive would misfill the "
                        "ghost buffer",
                        where,
                    )
                )
        # expectations with no matching promise
        for q, n in sorted(recvs[p].items()):
            if 0 <= q < nprocs and p not in sends[q]:
                report.add(
                    _diag(
                        "BER040",
                        ERROR,
                        f"rank {p} expects {n} value(s) from rank {q}, but "
                        f"rank {q} never sends to rank {p} — rank {p} would "
                        "block in receive forever",
                        where,
                    )
                )
    return report


def check_gather_schedules(scheds, nlocals=None, where="schedules") -> DiagnosticReport:
    """Validate a full set of per-rank schedules: local structure plus
    cross-rank send/recv matching (``scheds[p]`` is rank p's)."""
    report = DiagnosticReport()
    for p, sched in enumerate(scheds):
        nlocal = nlocals[p] if nlocals is not None else None
        report.extend(
            check_local_schedule(sched, nlocal=nlocal, where=f"{where}, rank {p}")
        )
    sends = [
        {int(q): len(s.send_locals[q]) for q in s.send_locals} for s in scheds
    ]
    recvs = [
        {int(q): len(s.recv_slots[q]) for q in s.recv_slots} for s in scheds
    ]
    report.extend(_cross_check(sends, recvs, where=where))
    return report


# ----------------------------------------------------------------------
# collective lockstep driver
# ----------------------------------------------------------------------
def trace_collectives(make_program, nprocs):
    """Run one SPMD generator per rank in lockstep, routing collectives
    like the simulated machine but *diagnosing* SPMD violations instead
    of raising.

    Returns ``(results, traces, report)``: per-rank return values (None
    for ranks aborted by a violation), per-rank collective traces as
    ``(kind, label_or_None)`` tuples, and the report.  The drive stops at
    the first violation — past a mismatched collective there is no
    meaningful routing.
    """
    from repro.runtime.machine import Fragmented, assemble_fragments

    report = DiagnosticReport()
    gens = [make_program(p) for p in range(nprocs)]
    inbox = [None] * nprocs
    done = [False] * nprocs
    results = [None] * nprocs
    traces: list[list[tuple]] = [[] for _ in range(nprocs)]

    for superstep in range(_MAX_SUPERSTEPS):
        requests = [None] * nprocs
        for p in range(nprocs):
            if done[p]:
                continue
            try:
                requests[p] = gens[p].send(inbox[p])
            except StopIteration as stop:
                results[p] = stop.value
                done[p] = True
            inbox[p] = None
        if all(done):
            return results, traces, report
        alive = [p for p in range(nprocs) if not done[p]]
        finished = [p for p in range(nprocs) if done[p]]
        if finished:
            report.add(
                _diag(
                    "BER041",
                    ERROR,
                    f"rank(s) {finished} finished at superstep {superstep} "
                    f"while rank(s) {alive} still wait in "
                    f"{sorted({requests[p][0] for p in alive})} — the "
                    "waiting ranks deadlock",
                    f"superstep {superstep}",
                )
            )
            return results, traces, report
        kinds = {requests[p][0] for p in alive}
        if len(kinds) != 1:
            by_kind = {
                k: [p for p in alive if requests[p][0] == k]
                for k in sorted(kinds)
            }
            report.add(
                _diag(
                    "BER041",
                    ERROR,
                    f"mismatched collectives at superstep {superstep}: "
                    f"{by_kind} — ranks wait on different operations",
                    f"superstep {superstep}",
                )
            )
            return results, traces, report
        kind = kinds.pop()
        label = requests[alive[0]][1] if kind == "phase" else None
        for p in alive:
            traces[p].append((kind, requests[p][1] if kind == "phase" else None))

        if kind in ("alltoallv", "alltoallv_async"):
            recv: list[dict] = [dict() for _ in range(nprocs)]
            bad_dst = False
            for p in alive:
                send = requests[p][1] or {}
                for q, payload in send.items():
                    if not (0 <= q < nprocs):
                        report.add(
                            _diag(
                                "BER040",
                                ERROR,
                                f"rank {p} sends to nonexistent rank {q} at "
                                f"superstep {superstep}",
                                f"superstep {superstep}",
                            )
                        )
                        bad_dst = True
                        continue
                    recv[q][p] = (
                        assemble_fragments(payload)
                        if isinstance(payload, Fragmented)
                        else payload
                    )
            if bad_dst:
                return results, traces, report
            for p in alive:
                inbox[p] = recv[p]
        elif kind == "allreduce":
            total = requests[alive[0]][1]
            for p in alive[1:]:
                total = total + requests[p][1]
            for p in alive:
                inbox[p] = total
        elif kind == "allgather":
            gathered = [requests[p][1] for p in alive]
            for p in alive:
                inbox[p] = list(gathered)
        elif kind == "phase":
            labels = {requests[p][1] for p in alive}
            if len(labels) != 1:
                report.add(
                    _diag(
                        "BER041",
                        ERROR,
                        f"mismatched phase labels {sorted(labels)} at "
                        f"superstep {superstep}",
                        f"superstep {superstep}",
                    )
                )
                return results, traces, report
            for p in alive:
                inbox[p] = None
        elif kind in ("barrier", "commwait"):
            for p in alive:
                inbox[p] = None
        else:
            report.add(
                _diag(
                    "BER041",
                    ERROR,
                    f"unknown collective {kind!r} at superstep {superstep}",
                    f"superstep {superstep}",
                )
            )
            return results, traces, report

    report.add(
        _diag(
            "BER041",
            ERROR,
            f"superstep budget ({_MAX_SUPERSTEPS}) exhausted — the rank "
            "programs livelock",
            "lockstep driver",
        )
    )
    return results, traces, report


# ----------------------------------------------------------------------
# fault-recovery integration
# ----------------------------------------------------------------------
def verify_rebuilt_schedule(strategy, sched) -> DiagnosticReport:
    """Re-verify a schedule produced by fault-recovery re-inspection.

    Called by :func:`~repro.runtime.faults.ensure_valid_schedule` after a
    rebuild: structural invariants plus the checksum fingerprint recorded
    at ``setup()``.  Purely local — the recovery protocol's collective
    pattern is unchanged.
    """
    report = check_local_schedule(
        sched,
        nlocal=getattr(strategy, "nlocal", None),
        where=f"rank {sched.rank} rebuilt schedule",
    )
    stored = getattr(strategy, "_sched_sum", None)
    if stored is not None:
        from repro.runtime.faults import schedule_checksum

        if schedule_checksum(sched) != stored:
            report.add(
                _diag(
                    "BER044",
                    ERROR,
                    "rebuilt schedule's checksum does not match the "
                    "fingerprint recorded at setup — re-inspection produced "
                    "a different communication pattern",
                    f"rank {sched.rank} rebuilt schedule",
                )
            )
    return report


# ----------------------------------------------------------------------
# sweep: the five executor strategies
# ----------------------------------------------------------------------
def check_spmv_strategies(coo=None, nprocs=3, niter=2) -> DiagnosticReport:
    """End-to-end schedule validation of all five executor strategies.

    For each strategy the checker runs setup + ``niter`` executor steps
    under the lockstep driver, validates the materialized gather
    schedules per rank and across ranks, and cross-checks the per-rank
    collective traces.  A clean strategy contributes one BER045 info.
    """
    from repro.distribution import BlockDistribution, MultiBlockDistribution
    from repro.formats import BlockSolveMatrix
    from repro.matrices import fem_matrix
    from repro.parallel import partition_rows
    from repro.parallel.spmd_blocksolve import (
        BernoulliGlobalBS,
        BernoulliMixedBS,
        BlockSolveSpMV,
    )
    from repro.parallel.spmd_spmv import GlobalSpMV, MixedSpMV

    report = DiagnosticReport()
    if coo is None:
        coo = fem_matrix(points=14, dof=2, rng=5)
    n = coo.shape[0]
    x = np.linspace(-1.0, 1.0, n)

    bs = BlockSolveMatrix.from_coo(coo)
    bdist = MultiBlockDistribution.from_color_classes(bs.clique_ptr, bs.colors, nprocs)
    rdist = BlockDistribution(n, nprocs)
    frags = partition_rows(coo, rdist)
    xprime = x[bs.perm.perm] if hasattr(bs, "perm") else x

    cases = [
        ("blocksolve", BlockSolveSpMV, bdist, lambda p: bs, xprime),
        ("mixed-bs", BernoulliMixedBS, bdist, lambda p: bs, xprime),
        ("global-bs", BernoulliGlobalBS, bdist, lambda p: bs, xprime),
        ("mixed", MixedSpMV, rdist, lambda p: frags[p], x),
        ("global", GlobalSpMV, rdist, lambda p: frags[p], x),
    ]
    for name, cls, dist, data_of, xs in cases:
        strategies = [None] * nprocs

        def prog(p, cls=cls, dist=dist, data_of=data_of, xs=xs, strategies=strategies):
            strat = cls(p, dist, data_of(p))
            strategies[p] = strat
            yield from strat.setup()
            y = None
            for _ in range(niter):
                y = yield from strat.step(xs[dist.owned_by(p)])
            return y

        before = len(report)
        _, traces, drive_report = trace_collectives(prog, nprocs)
        report.extend(drive_report)
        scheds = [s.sched for s in strategies if s is not None and hasattr(s, "sched")]
        if len(scheds) == nprocs:
            report.extend(
                check_gather_schedules(
                    scheds,
                    nlocals=[getattr(s, "nlocal", None) for s in strategies],
                    where=f"strategy {name}",
                )
            )
        elif drive_report.ok:
            report.add(
                _diag(
                    "BER041",
                    ERROR,
                    f"strategy {name}: only {len(scheds)}/{nprocs} ranks "
                    "materialized a schedule",
                    f"strategy {name}",
                )
            )
        if not any(d.severity == ERROR for d in report.diagnostics[before:]):
            steps = len(traces[0])
            report.add(
                _diag(
                    "BER045",
                    INFO,
                    f"schedules deadlock-free on {nprocs} ranks; collective "
                    f"trace consistent across {steps} superstep(s)",
                    f"strategy {name}",
                )
            )
    return report


@register_pass("schedule", "SPMD schedule checker over the five executor strategies")
def _sweep() -> DiagnosticReport:
    return check_spmv_strategies()
