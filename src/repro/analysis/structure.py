"""Sparsity-structure analysis: what *kind* of matrix is this?

Table 1 of the paper shows no single format wins everywhere — the winner
is determined by the matrix's actual structure (bands for ``gr_30_30``,
i-node blocks for ``bcsstm27``, row-length skew for ``memplus``).  This
module turns that observation into a first-class compiler input: one scan
of a :class:`~repro.formats.coo.COOMatrix` produces a serializable
:class:`StructureProfile` capturing

* **diagonals/bands** — distinct occupied diagonals, their run storage
  (what :class:`~repro.formats.diagonal.DiagonalMatrix` would allocate),
  and the bandwidth envelope,
* **dense diagonal blocks** — the finest contiguous partition such that
  every stored entry falls inside a diagonal block (the
  :class:`~repro.formats.blockdiag.BlockDiagonalMatrix` partition), found
  by an interval sweep over per-row/column reach,
* **row-length skew** — mean/max/cv of the row lengths plus the padding
  an ITPACK layout would pay; extreme skew is the memplus signature that
  favors jagged diagonals,
* **symmetry** — pattern and value symmetry fractions,
* **i-node/clique similarity** — identical-row-pattern groups via
  :func:`repro.graphs.inodes.find_inodes` (the ``bcsstm27`` FEM
  signature exploited by :class:`~repro.formats.inode.InodeMatrix`).

The profile carries *classification tags* (``"banded"``, ``"blockdiag"``,
``"skewed"``, ...) and a stable :meth:`~StructureProfile.fingerprint`
that the auto-planner (:mod:`repro.compiler.autoplan`) joins into the
kernel-cache key, so structurally different matrices never share a
cached auto-planned kernel.

:func:`audit_format_choice` is the mismatch detector behind the
``BER05x`` diagnostics: given a profile and a format name it warns when
the format's storage model fights the structure (padded rows under skew,
diagonal storage of scattered entries, ...).  The registered
``structure`` sweep pass self-checks the analyzer against planted
structures.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.analysis.diagnostics import ERROR, INFO, WARN, Diagnostic, DiagnosticReport
from repro.analysis.registry import register_pass
from repro.errors import ReproError
from repro.formats.coo import COOMatrix
from repro.graphs.inodes import find_inodes

__all__ = [
    "StructureProfile",
    "analyze_structure",
    "audit_format_choice",
    "run_structure_selfcheck",
]

#: profile schema version; part of the fingerprint so analyzer upgrades
#: never reuse stale cached kernels keyed on an older feature set
PROFILE_VERSION = 1


@dataclass(frozen=True)
class StructureProfile:
    """The structural fingerprint of one sparse matrix.

    All fields are plain Python scalars/tuples so the profile serializes
    losslessly through :meth:`to_dict`/:meth:`from_dict` (the CI artifact
    and the bench table embed it as JSON).
    """

    nrows: int
    ncols: int
    nnz: int
    density: float
    # --- row-length statistics (ITPACK padding / JD skew signals) -----
    row_mean: float
    row_max: int
    row_cv: float  # coefficient of variation of row lengths
    skew_ratio: float  # row_max / row_mean (1.0 when uniform)
    ell_stored: int  # nrows * row_max: the ITPACK allocation
    ell_fill: float  # nnz / ell_stored (1.0 = no padding)
    # --- diagonal structure -------------------------------------------
    ndiags: int  # distinct occupied diagonals
    diag_stored: int  # DiagonalMatrix run storage (incl. interior fill)
    diag_fill: float  # nnz / diag_stored
    bandwidth_lower: int  # max(i - j) over stored entries
    bandwidth_upper: int  # max(j - i)
    # --- dense diagonal blocks (square matrices only) -----------------
    nblocks: int  # 0 when not square / empty
    block_max: int  # widest block
    block_stored: int  # sum of block widths squared
    block_fill: float  # nnz / block_stored (0.0 when no blocks)
    blockptr: tuple[int, ...] = ()  # the partition itself
    # --- similarity / symmetry ----------------------------------------
    ninodes: int = 0  # identical-pattern row groups (nonempty rows)
    inode_ratio: float = 1.0  # nonempty rows per group (1.0 = no grouping)
    pattern_symmetry: float = 0.0  # |P ∩ Pᵀ| / |P| (square only)
    value_symmetry: bool = False
    # --- classification -----------------------------------------------
    tags: tuple[str, ...] = field(default=())

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def has(self, tag: str) -> bool:
        return tag in self.tags

    def to_dict(self) -> dict:
        d = asdict(self)
        d["version"] = PROFILE_VERSION
        return d

    @classmethod
    def from_dict(cls, doc: dict) -> "StructureProfile":
        doc = dict(doc)
        doc.pop("version", None)
        doc["blockptr"] = tuple(doc.get("blockptr", ()))
        doc["tags"] = tuple(doc.get("tags", ()))
        return cls(**doc)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StructureProfile":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Short stable hash of the profile for plan-cache keys.

        Hashes the full feature set (blockptr included — two matrices
        with different block partitions need different BlockDiag code
        paths), so structurally different matrices of equal shape get
        distinct auto-plan cache entries.  Floats are rounded to 6
        significant digits first: re-analysis of the same matrix is
        bit-stable across platforms.
        """
        doc = self.to_dict()
        for k, v in doc.items():
            if isinstance(v, float):
                doc[k] = float(f"{v:.6g}")
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """One paragraph of human-readable structure commentary."""
        lines = [
            f"structure profile: {self.nrows}x{self.ncols}, nnz={self.nnz} "
            f"(density {self.density:.3g})",
            f"  tags: {', '.join(self.tags) or 'none'}",
            f"  rows: mean {self.row_mean:.2f}, max {self.row_max}, "
            f"cv {self.row_cv:.2f}, skew {self.skew_ratio:.1f}x "
            f"(ITPACK fill {self.ell_fill:.2f})",
            f"  diagonals: {self.ndiags} occupied, run storage "
            f"{self.diag_stored} (fill {self.diag_fill:.2f}), bandwidth "
            f"-{self.bandwidth_lower}/+{self.bandwidth_upper}",
        ]
        if self.nblocks:
            lines.append(
                f"  diagonal blocks: {self.nblocks} (max width "
                f"{self.block_max}, storage {self.block_stored}, fill "
                f"{self.block_fill:.2f})"
            )
        lines.append(
            f"  i-nodes: {self.ninodes} groups ({self.inode_ratio:.2f} "
            f"rows/group); symmetry: pattern {self.pattern_symmetry:.2f}, "
            f"values {'yes' if self.value_symmetry else 'no'}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# feature extraction
# ----------------------------------------------------------------------
def _diagonal_features(coo: COOMatrix) -> tuple[int, int, int, int]:
    """(ndiags, diag_stored, bandwidth_lower, bandwidth_upper)."""
    if coo.nnz == 0:
        return 0, 0, 0, 0
    d = coo.col - coo.row
    offsets, inverse = np.unique(d, return_inverse=True)
    lo = np.full(len(offsets), np.iinfo(np.int64).max, dtype=np.int64)
    hi = np.full(len(offsets), np.iinfo(np.int64).min, dtype=np.int64)
    np.minimum.at(lo, inverse, coo.row)
    np.maximum.at(hi, inverse, coo.row)
    stored = int(np.sum(hi - lo + 1))
    return (
        len(offsets),
        stored,
        int(max(0, -offsets.min())),
        int(max(0, offsets.max())),
    )


def _block_partition(coo: COOMatrix) -> tuple[int, ...]:
    """The finest contiguous diagonal-block partition covering every entry.

    Interval sweep: index ``i`` reaches the furthest row/column any entry
    of row or column ``i`` touches; a block closes at the first index
    whose running reach does not extend past itself.  Every stored entry
    provably lands inside a diagonal block of the returned partition, so
    a BlockDiagonalMatrix built on it loses nothing.
    """
    n = coo.shape[0]
    if n == 0 or coo.shape[0] != coo.shape[1]:
        return ()
    reach = np.arange(n, dtype=np.int64)
    if coo.nnz:
        np.maximum.at(reach, coo.row, coo.col)
        np.maximum.at(reach, coo.col, coo.row)
    ptr = [0]
    end = 0
    for i in range(n):
        end = max(end, int(reach[i]))
        if i == end:
            ptr.append(i + 1)
    return tuple(ptr)


def _inode_features(coo: COOMatrix) -> tuple[int, float]:
    """(ninodes over nonempty rows, rows per group)."""
    if coo.nnz == 0:
        return 0, 1.0
    coo = coo.canonicalized()
    boundaries = np.flatnonzero(np.r_[True, coo.row[1:] != coo.row[:-1]])
    row_ids = coo.row[boundaries]
    col_runs = np.split(coo.col, boundaries[1:])
    patterns = [tuple(run.tolist()) for run in col_runs]
    groups = find_inodes(patterns)
    nonempty = len(row_ids)
    return len(groups), (nonempty / len(groups) if groups else 1.0)


def _symmetry_features(coo: COOMatrix) -> tuple[float, bool]:
    """(pattern-symmetry fraction, exact value symmetry)."""
    n, m = coo.shape
    if n != m or coo.nnz == 0:
        return 0.0, False
    coo = coo.canonicalized()
    keys = coo.row * m + coo.col
    tkeys = np.sort(coo.col * m + coo.row)
    shared = np.intersect1d(keys, tkeys, assume_unique=True)
    pattern = len(shared) / coo.nnz
    value = False
    if pattern == 1.0:
        t = coo.transpose().canonicalized()
        value = bool(
            np.array_equal(coo.row, t.row)
            and np.array_equal(coo.col, t.col)
            and np.allclose(coo.vals, t.vals, rtol=1e-12, atol=0.0)
        )
    return float(pattern), value


def _classify(p: dict) -> tuple[str, ...]:
    """Classification tags from the raw feature dict (ordering stable)."""
    tags: list[str] = []
    n, m, nnz = p["nrows"], p["ncols"], p["nnz"]
    if nnz == 0:
        return ("empty",)
    if p["density"] >= 0.5:
        tags.append("dense")
    span = p["bandwidth_lower"] + p["bandwidth_upper"] + 1
    if p["diag_fill"] >= 0.6 and p["ndiags"] <= max(9, 0.05 * max(n, m)):
        tags.append("diagonal")
    if span <= max(5, 0.25 * max(n, m)) and "dense" not in tags:
        tags.append("banded")
    if (
        p["nblocks"] >= 2
        and p["block_fill"] >= 0.4
        and p["block_max"] <= max(2, 0.5 * n)
    ):
        tags.append("blockdiag")
    if p["inode_ratio"] >= 1.8 and p["ninodes"] >= 1:
        tags.append("inode")
    if p["skew_ratio"] >= 6.0 and p["row_cv"] >= 1.0:
        tags.append("skewed")
    if p["pattern_symmetry"] >= 0.99:
        tags.append("symmetric")
    if not tags:
        tags.append("uniform")
    return tuple(tags)


def analyze_structure(coo: COOMatrix) -> StructureProfile:
    """Scan a matrix once and return its :class:`StructureProfile`.

    Accepts any :class:`~repro.formats.base.Format` by converting through
    the COO exchange format; the scan is O(nnz + n) numpy work plus the
    i-node bucketing.
    """
    from repro.observability import metrics as _metrics
    from repro.observability.trace import span

    if not isinstance(coo, COOMatrix):
        to_coo = getattr(coo, "to_coo", None)
        if to_coo is None:
            raise ReproError(
                f"analyze_structure needs a matrix, got {type(coo).__name__}"
            )
        coo = to_coo()
    if coo.ndim != 2:
        raise ReproError("analyze_structure expects a 2-D matrix")
    coo = coo.canonicalized()
    with span("autoplan.analyze", shape=coo.shape, nnz=coo.nnz):
        n, m = coo.shape
        nnz = coo.nnz
        counts = coo.row_counts() if n else np.zeros(0, dtype=np.int64)
        row_mean = float(counts.mean()) if n else 0.0
        row_max = int(counts.max()) if n else 0
        row_cv = (
            float(counts.std() / row_mean) if row_mean > 0 else 0.0
        )
        skew = row_max / row_mean if row_mean > 0 else 1.0
        ell_stored = n * row_max
        ndiags, diag_stored, bw_lo, bw_up = _diagonal_features(coo)
        blockptr = _block_partition(coo)
        widths = np.diff(blockptr) if len(blockptr) > 1 else np.zeros(0, dtype=np.int64)
        block_stored = int(np.sum(widths * widths))
        ninodes, inode_ratio = _inode_features(coo)
        pattern_sym, value_sym = _symmetry_features(coo)
        raw = dict(
            nrows=int(n),
            ncols=int(m),
            nnz=int(nnz),
            density=(nnz / (n * m)) if n and m else 0.0,
            row_mean=row_mean,
            row_max=row_max,
            row_cv=row_cv,
            skew_ratio=float(skew),
            ell_stored=int(ell_stored),
            ell_fill=(nnz / ell_stored) if ell_stored else 0.0,
            ndiags=ndiags,
            diag_stored=diag_stored,
            diag_fill=(nnz / diag_stored) if diag_stored else 0.0,
            bandwidth_lower=bw_lo,
            bandwidth_upper=bw_up,
            nblocks=max(0, len(blockptr) - 1),
            block_max=int(widths.max()) if len(widths) else 0,
            block_stored=block_stored,
            block_fill=(nnz / block_stored) if block_stored else 0.0,
            blockptr=blockptr,
            ninodes=ninodes,
            inode_ratio=float(inode_ratio),
            pattern_symmetry=pattern_sym,
            value_symmetry=value_sym,
        )
        raw["tags"] = _classify(raw)
        profile = StructureProfile(**raw)
    _metrics.record("runtime.autoplan.analyses")
    return profile


# ----------------------------------------------------------------------
# format-choice auditing (the BER05x mismatch diagnostics)
# ----------------------------------------------------------------------
def audit_format_choice(
    profile: StructureProfile, fmt_name: str, where: str = ""
) -> DiagnosticReport:
    """Warn when ``fmt_name``'s storage model fights the profile.

    Codes: BER051 padded-row formats under skew, BER052 diagonal storage
    of scattered entries, BER053 block-diagonal coverage problems, BER054
    dense storage of a very sparse matrix.  An empty report means the
    choice is structurally defensible (not necessarily optimal).
    """
    report = DiagnosticReport()
    loc = where or f"matrix {profile.nrows}x{profile.ncols}"

    def warn(code: str, msg: str, severity: str = WARN) -> None:
        report.add(
            Diagnostic(code, severity, msg, pass_name="structure", location=loc)
        )

    if profile.nnz == 0:
        return report
    if fmt_name in ("ITPACK", "ELL") and profile.ell_fill < 0.5:
        warn(
            "BER051",
            f"ITPACK pads {profile.ell_stored} slots for {profile.nnz} "
            f"entries (fill {profile.ell_fill:.2f}); row-length skew "
            f"{profile.skew_ratio:.1f}x makes padded storage collapse — "
            "prefer JDiag or CRS",
        )
    if fmt_name == "Diagonal":
        if profile.diag_fill < 0.5:
            warn(
                "BER052",
                f"Diagonal runs store {profile.diag_stored} slots for "
                f"{profile.nnz} entries (fill {profile.diag_fill:.2f}); "
                "the entries do not lie on dense diagonals",
            )
        elif profile.ndiags > max(9, 0.25 * max(profile.nrows, profile.ncols)):
            warn(
                "BER052",
                f"{profile.ndiags} distinct diagonals for a "
                f"{profile.nrows}x{profile.ncols} matrix; per-diagonal "
                "dispatch overhead will dominate",
            )
    if fmt_name == "BlockDiag":
        if profile.nrows != profile.ncols:
            warn(
                "BER053",
                "BlockDiag requires a square matrix; "
                f"got {profile.nrows}x{profile.ncols}",
                severity=ERROR,
            )
        elif profile.nblocks <= 1 and profile.nrows > 1:
            warn(
                "BER053",
                "no nontrivial diagonal-block partition exists (the "
                "coupling graph is one connected span); BlockDiag "
                "degenerates to one dense block",
            )
        elif profile.block_fill < 0.4:
            warn(
                "BER053",
                f"diagonal blocks store {profile.block_stored} slots for "
                f"{profile.nnz} entries (fill {profile.block_fill:.2f})",
            )
    if fmt_name == "Dense" and profile.density < 0.1:
        warn(
            "BER054",
            f"dense storage of a density-{profile.density:.3g} matrix "
            f"touches {profile.nrows * profile.ncols} slots for "
            f"{profile.nnz} entries",
        )
    return report


def profile_diagnostic(
    profile: StructureProfile, where: str = "", recommend: str | None = None
) -> Diagnostic:
    """The BER050 info line summarizing a profile (CLI / sweep output)."""
    msg = (
        f"tags=[{','.join(profile.tags)}] nnz={profile.nnz} "
        f"skew={profile.skew_ratio:.1f}x diag_fill={profile.diag_fill:.2f} "
        f"blocks={profile.nblocks} inode_ratio={profile.inode_ratio:.2f} "
        f"fingerprint={profile.fingerprint()}"
    )
    if recommend:
        msg += f" -> {recommend}"
    return Diagnostic(
        "BER050",
        INFO,
        msg,
        pass_name="structure",
        location=where or f"matrix {profile.nrows}x{profile.ncols}",
    )


# ----------------------------------------------------------------------
# the registered sweep pass: planted-structure self-checks
# ----------------------------------------------------------------------
def _planted_probes() -> list[tuple[str, str, COOMatrix]]:
    """(name, expected tag, matrix) probes with unambiguous structure."""
    rng = np.random.default_rng(1997)
    # large enough that per-element costs dominate the per-call α in the
    # default cost model — on tiny matrices "Dense" legitimately wins and
    # the self-consistency check would be vacuous
    n = 240
    i = np.arange(n)
    tri = COOMatrix.from_entries(
        (n, n),
        np.concatenate([i, i[:-1], i[1:]]),
        np.concatenate([i, i[1:], i[:-1]]),
        np.concatenate([np.full(n, 4.0), np.full(n - 1, -1.0), np.full(n - 1, -1.0)]),
    )
    # block-diagonal: dense 4x4 blocks down the diagonal
    br, bc, bv = [], [], []
    for b in range(0, n, 4):
        rr, cc = np.meshgrid(np.arange(b, b + 4), np.arange(b, b + 4), indexing="ij")
        br.append(rr.ravel())
        bc.append(cc.ravel())
        bv.append(rng.integers(1, 5, 16).astype(float))
    blockdiag = COOMatrix.from_entries(
        (n, n), np.concatenate(br), np.concatenate(bc), np.concatenate(bv)
    )
    # skewed: tridiagonal bulk plus 3 hub rows of ~n/3 entries
    hr, hc = [tri.row], [tri.col]
    for h in (5, 20, 41):
        cols = rng.choice(n, size=n // 3, replace=False)
        hr.append(np.full(len(cols), h))
        hc.append(cols)
    hv = [tri.vals, *[np.ones(len(c)) for c in hc[1:]]]
    skewed = COOMatrix.from_entries(
        (n, n), np.concatenate(hr), np.concatenate(hc), np.concatenate(hv)
    )
    sym = COOMatrix.random(n, n, 0.08, rng=rng, symmetric=True)
    return [
        ("tridiagonal", "banded", tri),
        ("blockdiag-4x4", "blockdiag", blockdiag),
        ("hub-skewed", "skewed", skewed),
        ("random-symmetric", "symmetric", sym),
    ]


def run_structure_selfcheck() -> DiagnosticReport:
    """Sweep pass: the analyzer must detect planted structures, and the
    auto-planner's choice for each must pass the analyzer's own audit
    (self-consistency).  Failures are BER055 errors."""
    from repro.compiler.autoplan import autoplan

    report = DiagnosticReport()
    for name, expected_tag, coo in _planted_probes():
        profile = analyze_structure(coo)
        if not profile.has(expected_tag):
            report.add(
                Diagnostic(
                    "BER055",
                    ERROR,
                    f"planted {expected_tag!r} structure not detected "
                    f"(tags: {list(profile.tags)})",
                    pass_name="structure",
                    location=f"probe {name}",
                )
            )
            continue
        plan = autoplan(coo, profile=profile)
        audit = audit_format_choice(profile, plan.format_name, where=f"probe {name}")
        if not audit.ok or audit.warnings():
            report.extend(audit)
            report.add(
                Diagnostic(
                    "BER055",
                    ERROR,
                    f"auto-chosen format {plan.format_name} is flagged by "
                    "the analyzer's own audit (self-inconsistency)",
                    pass_name="structure",
                    location=f"probe {name}",
                )
            )
        else:
            report.add(
                profile_diagnostic(
                    profile, where=f"probe {name}", recommend=plan.format_name
                )
            )
    return report


register_pass(
    "structure",
    "sparsity-structure analyzer self-check (planted structures)",
)(run_structure_selfcheck)
