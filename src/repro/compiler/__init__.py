"""The Bernoulli compiler core (paper Sections 2 and 3).

Pipeline:

1. :mod:`~repro.compiler.parser` — parse a dense DOANY loop nest written in
   a small textual language (``for i in 0:n { ... }``) into the AST of
   :mod:`~repro.compiler.ast_nodes`.
2. :mod:`~repro.compiler.sparsity` — Bik–Wijshoff zero-propagation derives
   the sparsity predicate of each statement (paper Eq. 3) and splits
   additive statements so every piece has a purely conjunctive predicate.
3. :mod:`~repro.compiler.query_extract` — each statement becomes a
   relational query (paper Eq. 4): iteration relation ⋈ one term per array
   reference, selected by the predicate.
4. :mod:`~repro.compiler.scheduling` — the query optimizer: pick the
   *driver* relation that enumerates its stored entries and the access
   mode (dense lookup / sparse search) for every other term, using the
   access-method properties and a cost model.
5. :mod:`~repro.compiler.codegen` / :mod:`~repro.compiler.backends` —
   emit Python source for the chosen plan through a selectable *executor
   backend* (``"interpreted"``: scalar loops; ``"vectorized"``: numpy
   slice/gather/segmented-reduction lowering with per-statement fallback),
   compile it, and wrap it in a
   :class:`~repro.compiler.kernels.CompiledKernel`.  Compiled kernels are
   cached in a :mod:`~repro.compiler.plan_cache` keyed on the loop nest,
   the format specs and the sparsity predicates.

Everything is format-agnostic: the planner and code generator speak only
the access-method protocol of :mod:`repro.formats.base`, so user-defined
formats compile without compiler changes (``examples/custom_format.py``).
"""

from repro.compiler.ast_nodes import (
    Assign,
    BinOp,
    LoopSpec,
    Num,
    Program,
    Ref,
    Scalar,
)
from repro.compiler.parser import parse
from repro.compiler.sparsity import sparsity_predicate, split_statement
from repro.compiler.query_extract import extract_query
from repro.compiler.scheduling import plan_query, Plan, TermAccess
from repro.compiler.backends import (
    ExecutorBackend,
    LoweringStrategy,
    available_backends,
    get_backend,
    register_backend,
)
from repro.compiler.kernels import (
    CompiledKernel,
    compile_kernel,
    clear_kernel_cache,
    kernel_cache_stats,
)
from repro.compiler.autoplan import (
    AutoPlan,
    CostModel,
    autoplan,
    autoplan_spmv,
)
from repro.compiler.specialize import (
    HybridKernel,
    HybridMatrix,
    HybridPlan,
    Region,
    RegionPartition,
    SpecializeConfig,
    partition_regions,
    plan_hybrid,
)

__all__ = [
    "parse",
    "Program",
    "LoopSpec",
    "Assign",
    "Ref",
    "Scalar",
    "Num",
    "BinOp",
    "sparsity_predicate",
    "split_statement",
    "extract_query",
    "plan_query",
    "Plan",
    "TermAccess",
    "ExecutorBackend",
    "LoweringStrategy",
    "available_backends",
    "get_backend",
    "register_backend",
    "CompiledKernel",
    "compile_kernel",
    "clear_kernel_cache",
    "kernel_cache_stats",
    "AutoPlan",
    "CostModel",
    "autoplan",
    "autoplan_spmv",
    "HybridKernel",
    "HybridMatrix",
    "HybridPlan",
    "Region",
    "RegionPartition",
    "SpecializeConfig",
    "partition_regions",
    "plan_hybrid",
]
