"""AST of the dense-loop mini-language.

The input language is deliberately tiny: perfectly nested DOANY loops over
half-open dense ranges, whose body is one or more assignment/reduction
statements over scalar-indexed array references, e.g.::

    for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }

All nodes are immutable and hashable (they key the kernel cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.sourceloc import SourceSpan

__all__ = [
    "Expr",
    "Num",
    "Scalar",
    "Ref",
    "BinOp",
    "Neg",
    "MinMax",
    "Stmt",
    "Assign",
    "LoopSpec",
    "Program",
    "REDUCTION_OPS",
    "normalize_statement",
    "normalize_program",
]

#: combine operators a reduction statement may use — each one is
#: associative and commutative, so iterations may execute in any order
REDUCTION_OPS = ("+", "*", "min", "max")


class Expr:
    """Base class of expressions."""

    def refs(self) -> tuple["Ref", ...]:
        """All array references, left to right, duplicates preserved."""
        raise NotImplementedError

    def scalars(self) -> frozenset[str]:
        """Names of free scalar variables."""
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal."""

    value: float

    def refs(self):
        return ()

    def scalars(self):
        return frozenset()

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Scalar(Expr):
    """A free scalar variable (bound at kernel-call time)."""

    name: str

    def refs(self):
        return ()

    def scalars(self):
        return frozenset({self.name})

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference ``A[i, j]`` — indices are loop-variable names."""

    array: str
    indices: tuple[str, ...]
    #: source span of the reference (parser-provided; excluded from
    #: equality/hash/repr so cache keys and dedup are span-insensitive)
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))
        if not self.indices:
            raise ParseError(f"reference to {self.array} has no indices", span=self.span)

    def refs(self):
        return (self,)

    def scalars(self):
        return frozenset()

    def __repr__(self):
        return f"{self.array}[{','.join(self.indices)}]"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: op ∈ {'+', '-', '*', '/'}."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ParseError(f"unknown operator {self.op!r}")

    def refs(self):
        return self.left.refs() + self.right.refs()

    def scalars(self):
        return self.left.scalars() | self.right.scalars()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def refs(self):
        return self.operand.refs()

    def scalars(self):
        return self.operand.scalars()

    def __repr__(self):
        return f"(-{self.operand!r})"


@dataclass(frozen=True)
class MinMax(Expr):
    """``min(a, b)`` / ``max(a, b)`` — the lattice combine primitives.

    ``fn`` is ``"min"`` or ``"max"``.  These exist so reduction updates
    like ``M[i] = min(M[i], A[i,j])`` can be written (and recognized by
    :func:`normalize_statement` as ``min``-reductions).
    """

    fn: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.fn not in ("min", "max"):
            raise ParseError(f"unknown combiner {self.fn!r}")

    def refs(self):
        return self.left.refs() + self.right.refs()

    def scalars(self):
        return self.left.scalars() | self.right.scalars()

    def __repr__(self):
        return f"{self.fn}({self.left!r}, {self.right!r})"


class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` (``reduce=False``) or ``target ⊕= expr``.

    ``op`` is the reduction's combine operator (one of
    :data:`REDUCTION_OPS`; meaningful only when ``reduce=True`` — plain
    assignments keep the default ``"+"``).  All four combine operators
    are associative and commutative, so a reduction's iterations commute
    with each other; which ones a given lowering exploits is the
    dependence analyzer's and the backends' business.

    Plain assignment with a sparse right-hand side is compiled as
    "zero-fill then guarded accumulate", which requires that the RHS does
    not read the target array (checked by :func:`normalize_statement`).
    """

    target: Ref
    expr: Expr
    reduce: bool = False
    #: combine operator of a reduction ("+", "*", "min", "max")
    op: str = "+"
    #: source span of the whole statement (see :class:`Ref.span`)
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.op not in REDUCTION_OPS:
            raise ParseError(f"unknown reduction operator {self.op!r}")
        if not self.reduce and self.op != "+":
            raise ParseError(
                f"plain assignment cannot carry reduction operator {self.op!r}"
            )

    def __repr__(self):
        op = f"{self.op}=" if self.reduce else "="
        return f"{self.target!r} {op} {self.expr!r}"


@dataclass(frozen=True)
class LoopSpec(Stmt):
    """``for var in lo:hi`` — bounds are integers or scalar names."""

    var: str
    lo: str = "0"
    hi: str = "n"

    def __repr__(self):
        return f"for {self.var} in {self.lo}:{self.hi}"


@dataclass(frozen=True)
class Program(Stmt):
    """A perfect loop nest over one or more statements."""

    loops: tuple[LoopSpec, ...]
    body: tuple[Assign, ...]

    def __post_init__(self):
        object.__setattr__(self, "loops", tuple(self.loops))
        object.__setattr__(self, "body", tuple(self.body))
        names = [l.var for l in self.loops]
        if len(set(names)) != len(names):
            raise ParseError(f"duplicate loop variables {names}")
        bound = set(names)
        for stmt in self.body:
            for ref in (stmt.target,) + stmt.expr.refs():
                for ix in ref.indices:
                    if ix not in bound:
                        raise ParseError(
                            f"index {ix!r} in {ref!r} is not a loop variable",
                            span=ref.span,
                        )

    def arrays(self) -> frozenset[str]:
        out: set[str] = set()
        for stmt in self.body:
            out.add(stmt.target.array)
            out.update(r.array for r in stmt.expr.refs())
        return frozenset(out)

    def scalar_names(self) -> frozenset[str]:
        out: set[str] = set()
        for stmt in self.body:
            out |= stmt.expr.scalars()
        for l in self.loops:
            for b in (l.lo, l.hi):
                if not b.lstrip("-").isdigit():
                    out.add(b)
        return frozenset(out)

    def __repr__(self):
        loops = " ".join(f"for {l.var} in {l.lo}:{l.hi}" for l in self.loops)
        return f"{loops} {{ {'; '.join(map(repr, self.body))} }}"


def normalize_statement(stmt: Assign) -> Assign:
    """Recognize self-updates as reductions; reject unrecognized self-reads.

    The recognized associative/commutative update forms are rewritten to
    ``Assign(reduce=True, op=⊕)`` with the self-read removed from the RHS:

    * ``x[e] = x[e] + rhs`` (either order) → ``op="+"``,
    * ``x[e] = x[e] - rhs``                → ``op="+"`` of ``-rhs``,
    * ``x[e] = x[e] * rhs`` (either order) → ``op="*"``,
    * ``x[e] = min(x[e], rhs)`` / ``max``  → ``op="min"`` / ``"max"``.

    Raises :class:`ParseError` for a plain assignment whose RHS still reads
    the target after normalization (zero-fill compilation would be wrong),
    e.g. a non-associative self-update like ``x[e] = x[e] / rhs``.
    """
    if not stmt.reduce:
        e = stmt.expr
        if isinstance(e, BinOp) and e.op in ("+", "*"):
            red = "+" if e.op == "+" else "*"
            if e.left == stmt.target:
                stmt = Assign(stmt.target, e.right, reduce=True, op=red, span=stmt.span)
            elif e.right == stmt.target:
                stmt = Assign(stmt.target, e.left, reduce=True, op=red, span=stmt.span)
        elif isinstance(e, BinOp) and e.op == "-" and e.left == stmt.target:
            stmt = Assign(stmt.target, Neg(e.right), reduce=True, span=stmt.span)
        elif isinstance(e, MinMax):
            if e.left == stmt.target:
                stmt = Assign(stmt.target, e.right, reduce=True, op=e.fn, span=stmt.span)
            elif e.right == stmt.target:
                stmt = Assign(stmt.target, e.left, reduce=True, op=e.fn, span=stmt.span)
    if not stmt.reduce:
        offender = next(
            (r for r in stmt.expr.refs() if r.array == stmt.target.array), None
        )
        if offender is not None:
            raise ParseError(
                f"plain assignment to {stmt.target.array} reads the target; "
                "write it as a reduction (+=) instead",
                span=offender.span or stmt.span,
            )
    return stmt


def normalize_program(program: Program) -> Program:
    """Normalize every statement (idempotent; parser output is a no-op)."""
    body = tuple(normalize_statement(s) for s in program.body)
    if body == program.body:
        return program
    return Program(program.loops, body)
