"""AST of the dense-loop mini-language.

The input language is deliberately tiny: perfectly nested DOANY loops over
half-open dense ranges, whose body is one or more assignment/reduction
statements over scalar-indexed array references, e.g.::

    for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }

All nodes are immutable and hashable (they key the kernel cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.sourceloc import SourceSpan

__all__ = [
    "Expr",
    "Num",
    "Scalar",
    "Ref",
    "BinOp",
    "Neg",
    "Stmt",
    "Assign",
    "LoopSpec",
    "Program",
    "normalize_statement",
]


class Expr:
    """Base class of expressions."""

    def refs(self) -> tuple["Ref", ...]:
        """All array references, left to right, duplicates preserved."""
        raise NotImplementedError

    def scalars(self) -> frozenset[str]:
        """Names of free scalar variables."""
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal."""

    value: float

    def refs(self):
        return ()

    def scalars(self):
        return frozenset()

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Scalar(Expr):
    """A free scalar variable (bound at kernel-call time)."""

    name: str

    def refs(self):
        return ()

    def scalars(self):
        return frozenset({self.name})

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference ``A[i, j]`` — indices are loop-variable names."""

    array: str
    indices: tuple[str, ...]
    #: source span of the reference (parser-provided; excluded from
    #: equality/hash/repr so cache keys and dedup are span-insensitive)
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))
        if not self.indices:
            raise ParseError(f"reference to {self.array} has no indices", span=self.span)

    def refs(self):
        return (self,)

    def scalars(self):
        return frozenset()

    def __repr__(self):
        return f"{self.array}[{','.join(self.indices)}]"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: op ∈ {'+', '-', '*', '/'}."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ParseError(f"unknown operator {self.op!r}")

    def refs(self):
        return self.left.refs() + self.right.refs()

    def scalars(self):
        return self.left.scalars() | self.right.scalars()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def refs(self):
        return self.operand.refs()

    def scalars(self):
        return self.operand.scalars()

    def __repr__(self):
        return f"(-{self.operand!r})"


class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` (``reduce=False``) or ``target += expr``.

    Plain assignment with a sparse right-hand side is compiled as
    "zero-fill then guarded accumulate", which requires that the RHS does
    not read the target array (checked by :func:`normalize_statement`).
    """

    target: Ref
    expr: Expr
    reduce: bool = False
    #: source span of the whole statement (see :class:`Ref.span`)
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __repr__(self):
        op = "+=" if self.reduce else "="
        return f"{self.target!r} {op} {self.expr!r}"


@dataclass(frozen=True)
class LoopSpec(Stmt):
    """``for var in lo:hi`` — bounds are integers or scalar names."""

    var: str
    lo: str = "0"
    hi: str = "n"

    def __repr__(self):
        return f"for {self.var} in {self.lo}:{self.hi}"


@dataclass(frozen=True)
class Program(Stmt):
    """A perfect loop nest over one or more statements."""

    loops: tuple[LoopSpec, ...]
    body: tuple[Assign, ...]

    def __post_init__(self):
        object.__setattr__(self, "loops", tuple(self.loops))
        object.__setattr__(self, "body", tuple(self.body))
        names = [l.var for l in self.loops]
        if len(set(names)) != len(names):
            raise ParseError(f"duplicate loop variables {names}")
        bound = set(names)
        for stmt in self.body:
            for ref in (stmt.target,) + stmt.expr.refs():
                for ix in ref.indices:
                    if ix not in bound:
                        raise ParseError(
                            f"index {ix!r} in {ref!r} is not a loop variable",
                            span=ref.span,
                        )

    def arrays(self) -> frozenset[str]:
        out: set[str] = set()
        for stmt in self.body:
            out.add(stmt.target.array)
            out.update(r.array for r in stmt.expr.refs())
        return frozenset(out)

    def scalar_names(self) -> frozenset[str]:
        out: set[str] = set()
        for stmt in self.body:
            out |= stmt.expr.scalars()
        for l in self.loops:
            for b in (l.lo, l.hi):
                if not b.lstrip("-").isdigit():
                    out.add(b)
        return frozenset(out)

    def __repr__(self):
        loops = " ".join(f"for {l.var} in {l.lo}:{l.hi}" for l in self.loops)
        return f"{loops} {{ {'; '.join(map(repr, self.body))} }}"


def normalize_statement(stmt: Assign) -> Assign:
    """Rewrite ``Y[i] = Y[i] + e`` (or ``e + Y[i]``) into ``Y[i] += e``.

    Raises :class:`ParseError` for a plain assignment whose RHS still reads
    the target after normalization (zero-fill compilation would be wrong).
    """
    if not stmt.reduce and isinstance(stmt.expr, BinOp) and stmt.expr.op == "+":
        if stmt.expr.left == stmt.target:
            stmt = Assign(stmt.target, stmt.expr.right, reduce=True, span=stmt.span)
        elif stmt.expr.right == stmt.target:
            stmt = Assign(stmt.target, stmt.expr.left, reduce=True, span=stmt.span)
    if not stmt.reduce:
        offender = next(
            (r for r in stmt.expr.refs() if r.array == stmt.target.array), None
        )
        if offender is not None:
            raise ParseError(
                f"plain assignment to {stmt.target.array} reads the target; "
                "write it as a reduction (+=) instead",
                span=offender.span or stmt.span,
            )
    return stmt
