"""Auto-format selection: from structure profile to compiled kernel.

The planner of :mod:`repro.compiler.scheduling` answers "given these
formats, what is the best join order?".  This module answers the question
one level up — *which formats should you be in?* — the way SpComp turns
Table 1's "no single format wins everywhere" into a compilation strategy:

1. :func:`~repro.analysis.structure.analyze_structure` scans the matrix
   into a :class:`~repro.analysis.structure.StructureProfile`,
2. an α+β cost model (:class:`CostModel`) predicts the per-call SpMV time
   of every registered candidate format — α is the per-call dispatch
   overhead, β the per-stored-slot cost, with python-level segment loops
   (diagonals, blocks, i-nodes, jagged diagonals) charged a fixed
   equivalent-element weight,
3. the cheapest feasible candidate wins; the whole ranking is kept on the
   returned :class:`AutoPlan` so ``explain()`` can narrate the decision
   and the property harness can check the choice against the predicted
   *worst* candidate.

The model's constants are **calibrated from the repo's own benchmark
trajectory**: ``benchmarks/bench_autoplan.py`` measures every fixed
format over the structured generator suite, least-squares fits (α̂, β̂)
per format, and records them as an ``autoplan_calibration`` record in
``BENCH_history.jsonl``; :meth:`CostModel.from_history` picks up the
latest such record, falling back to the built-in defaults measured on
the reference container.

Cache interaction: :meth:`AutoPlan.compile` passes the profile's
:meth:`~repro.analysis.structure.StructureProfile.fingerprint` as an
``extra_key`` component of the kernel-cache key, so re-analyzing the
same matrix is a pure hit while structurally different matrices of equal
shape and format class never share a cached auto-planned kernel.

Decisions leave a ``runtime.autoplan.*`` metrics and trace footprint
(``runtime.autoplan.analyses`` / ``.choices`` counters, predicted-cost
observations, ``autoplan.analyze`` / ``autoplan.select`` spans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.errors import CompileError, FormatError, ReproError
from repro.formats.base import Format
from repro.formats.blockdiag import BlockDiagonalMatrix
from repro.formats.ccs import CCSMatrix
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseMatrix, DenseVector
from repro.formats.diagonal import DiagonalMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.inode import InodeMatrix
from repro.formats.jdiag import JaggedDiagonalMatrix
from repro.observability import metrics as _metrics
from repro.observability.trace import span

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.structure import StructureProfile

__all__ = [
    "CandidateCost",
    "CostModel",
    "AutoPlan",
    "autoplan",
    "autoplan_spmv",
    "CANDIDATE_FORMATS",
]

#: equivalent stored elements charged per python-level segment loop
#: iteration (per diagonal / jagged diagonal / block / i-node) in the
#: vectorized backend — a numpy slice op costs on the order of a µs while
#: streaming an element costs ~1 ns
SEGMENT_WEIGHT = 600.0

#: candidate format name -> builder(coo, profile) -> Format instance
CANDIDATE_FORMATS: dict[str, Callable] = {
    "CRS": lambda coo, p: CRSMatrix.from_coo(coo),
    "CCS": lambda coo, p: CCSMatrix.from_coo(coo),
    "Coordinate": lambda coo, p: coo.canonicalized(),
    "ITPACK": lambda coo, p: ELLMatrix.from_coo(coo),
    "JDiag": lambda coo, p: JaggedDiagonalMatrix.from_coo(coo),
    "Diagonal": lambda coo, p: DiagonalMatrix.from_coo(coo),
    "BlockDiag": lambda coo, p: BlockDiagonalMatrix.from_coo_blocks(
        coo, np.asarray(p.blockptr, dtype=np.int64)
    ),
    "Inode": lambda coo, p: InodeMatrix.from_coo(coo),
    "Dense": lambda coo, p: DenseMatrix.from_coo(coo),
}

#: per-call overhead (seconds) of the vectorized lowering, by format —
#: defaults measured on the reference container, overridden by the
#: latest ``autoplan_calibration`` record when one exists
DEFAULT_ALPHA: dict[str, float] = {
    "CRS": 2.2e-5,
    "CCS": 2.0e-5,
    "Coordinate": 7.0e-6,
    "ITPACK": 2.0e-5,
    "JDiag": 1.9e-5,
    "Diagonal": 2.0e-5,
    "BlockDiag": 2.0e-5,
    "Inode": 1.5e-5,
    "Dense": 1.0e-5,
    # region-only format (repro.compiler.specialize); never a standalone
    # candidate, but hybrid region pricing reads these maps
    "DenseBlocks": 2.0e-5,
}

#: per-work-unit cost (seconds) of the vectorized lowering, by format
DEFAULT_BETA: dict[str, float] = {
    "CRS": 2.3e-9,
    "CCS": 4.0e-9,
    "Coordinate": 4.3e-9,
    "ITPACK": 1.6e-9,
    "JDiag": 2.9e-9,
    "Diagonal": 3.0e-9,
    "BlockDiag": 3.0e-9,
    "Inode": 4.0e-9,
    "Dense": 2.2e-9,
    # dense windows run through the block-GEMV lowering: contiguous BLAS
    # per window, cheaper per stored slot than any gather-based format
    "DenseBlocks": 8.0e-10,
}

#: per stored-slot cost of the interpreted scalar nest (any format)
DEFAULT_BETA_INTERPRETED = 3.7e-7
DEFAULT_ALPHA_INTERPRETED = 2.5e-4


@dataclass(frozen=True)
class CandidateCost:
    """One (format, backend) candidate with its modeled cost."""

    format_name: str
    backend: str
    work_units: float  # stored slots + weighted segment iterations
    predicted_seconds: float
    feasible: bool
    note: str = ""  # why infeasible / structural commentary


class CostModel:
    """α + β·work cost model over the candidate formats.

    ``predict(profile, name)`` returns modeled seconds for one SpMV call
    through the vectorized backend; ``predict_interpreted`` models the
    scalar reference nest (one shared β — scalar loops do not care about
    layout, only about how many stored slots they visit).
    """

    def __init__(
        self,
        alpha: Mapping[str, float] | None = None,
        beta: Mapping[str, float] | None = None,
        alpha_interpreted: float = DEFAULT_ALPHA_INTERPRETED,
        beta_interpreted: float = DEFAULT_BETA_INTERPRETED,
        source: str = "default",
    ):
        self.alpha = dict(DEFAULT_ALPHA)
        self.alpha.update(alpha or {})
        self.beta = dict(DEFAULT_BETA)
        self.beta.update(beta or {})
        self.alpha_interpreted = float(alpha_interpreted)
        self.beta_interpreted = float(beta_interpreted)
        #: provenance: "default" or "history[<fingerprint>@<rev>]"
        self.source = source

    # ------------------------------------------------------------------
    @staticmethod
    def work_units(profile: "StructureProfile", name: str) -> float:
        """Modeled work of one SpMV in stored-slot equivalents."""
        stored = CostModel.stored_slots(profile, name)
        segments = {
            "JDiag": profile.row_max,
            "Diagonal": profile.ndiags,
            "BlockDiag": profile.nblocks,
            "Inode": profile.ninodes,
            "CCS": profile.ncols,  # column-driven scatter loops per column
        }.get(name, 0)
        return stored + SEGMENT_WEIGHT * segments

    @staticmethod
    def stored_slots(profile: "StructureProfile", name: str) -> float:
        """Stored slots the format allocates (padding and fill included)."""
        return float(
            {
                "CRS": profile.nnz,
                "CCS": profile.nnz,
                "Coordinate": profile.nnz,
                "ITPACK": profile.ell_stored,
                "JDiag": profile.nnz,
                "Diagonal": profile.diag_stored,
                "BlockDiag": profile.block_stored,
                "Inode": profile.nnz,
                "Dense": profile.nrows * profile.ncols,
            }[name]
        )

    def predict(self, profile: "StructureProfile", name: str) -> float:
        return self.alpha[name] + self.beta[name] * self.work_units(profile, name)

    def predict_interpreted(self, profile: "StructureProfile", name: str) -> float:
        return (
            self.alpha_interpreted
            + self.beta_interpreted * self.stored_slots(profile, name)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_history(cls, path: str | None = None) -> "CostModel":
        """The model calibrated by the latest ``autoplan_calibration``
        record in the benchmark history, or the defaults when the history
        is absent, unreadable, or has no calibration record.

        Stale records are tolerated, not trusted: a record written before
        a format was added (or after one was removed/renamed) names a
        different format set than the container defaults.  Unknown format
        names are skipped — pricing an unknown name would either KeyError
        at predict time or silently mis-price a *different* format — and
        non-finite values (NaN/inf from a degenerate fit) fall back to the
        per-format default, so a partially-stale record degrades per key
        rather than poisoning the whole model.
        """
        from repro.observability.bench_track import DEFAULT_HISTORY, BenchHistory

        try:
            history = BenchHistory(path or DEFAULT_HISTORY)
        except Exception:
            return cls()
        recs = [r for r in history.records if r.bench == "autoplan_calibration"]
        if not recs:
            return cls()
        rec = max(recs, key=lambda r: r.timestamp)
        alpha, beta = {}, {}
        for key, value in rec.metrics.items():
            try:
                value = float(value)
            except (TypeError, ValueError):
                continue
            if not np.isfinite(value):
                continue
            if key.startswith("alpha."):
                name = key[len("alpha."):]
                if name in DEFAULT_ALPHA and value >= 0:
                    alpha[name] = value
            elif key.startswith("beta."):
                name = key[len("beta."):]
                if name in DEFAULT_BETA and value > 0:
                    beta[name] = value

        def _scalar(key: str, default: float) -> float:
            try:
                v = float(rec.metrics.get(key, default))
            except (TypeError, ValueError):
                return default
            return v if np.isfinite(v) and v > 0 else default

        return cls(
            alpha=alpha,
            beta=beta,
            alpha_interpreted=_scalar(
                "alpha.__interpreted__", DEFAULT_ALPHA_INTERPRETED
            ),
            beta_interpreted=_scalar(
                "beta.__interpreted__", DEFAULT_BETA_INTERPRETED
            ),
            source=f"history[{rec.fingerprint}@{rec.git_rev}]",
        )


@dataclass
class AutoPlan:
    """The auto-planner's decision for one matrix.

    ``candidates`` is the full ranking, cheapest first — infeasible
    candidates are kept (marked) so :meth:`explain` can narrate the
    rejection, and ``predicted_worst`` anchors the property harness's
    never-worse-than-worst invariant.
    """

    profile: "StructureProfile"
    candidates: tuple[CandidateCost, ...]
    format_name: str
    backend: str
    predicted_seconds: float
    model_source: str = "default"
    #: format actually materialized by :meth:`build` (differs from
    #: ``format_name`` only if the builder raised and a fallback ran)
    built_name: str | None = None
    #: the priced region decomposition behind the ``"Hybrid"`` candidate
    #: (:class:`~repro.compiler.specialize.HybridPlan`), or None when
    #: partitioning failed outright
    hybrid: "object | None" = None

    # ------------------------------------------------------------------
    @property
    def predicted_worst(self) -> float:
        """Highest predicted cost among feasible candidates."""
        costs = [c.predicted_seconds for c in self.candidates if c.feasible]
        return max(costs) if costs else self.predicted_seconds

    def candidate(self, name: str, backend: str = "vectorized") -> CandidateCost:
        for c in self.candidates:
            if c.format_name == name and c.backend == backend:
                return c
        raise CompileError(f"no candidate {name!r} with backend {backend!r}")

    # ------------------------------------------------------------------
    def build(self, coo: COOMatrix) -> Format:
        """Materialize the chosen format (falling back down the ranking
        if a builder rejects the matrix with FormatError)."""
        coo = coo if isinstance(coo, COOMatrix) else coo.to_coo()
        last_error: FormatError | None = None
        for cand in self.candidates:
            if not cand.feasible:
                continue
            try:
                if cand.format_name == "Hybrid":
                    if self.hybrid is None:
                        continue
                    fmt = self.hybrid.build()
                else:
                    fmt = CANDIDATE_FORMATS[cand.format_name](coo, self.profile)
            except FormatError as e:
                last_error = e
                continue
            self.built_name = cand.format_name
            if cand.format_name != self.format_name:
                _metrics.record(
                    "runtime.autoplan.build_fallbacks", to=cand.format_name
                )
            return fmt
        raise CompileError(
            f"no candidate format accepts this matrix (last: {last_error})"
        )

    def compile(
        self,
        coo: COOMatrix,
        source: str | None = None,
        name: str = "A",
        extra: Mapping[str, Format] | None = None,
        **kwargs,
    ):
        """Build the chosen format and compile ``source`` against it.

        ``source`` defaults to the SpMV nest; ``extra`` supplies the
        other arrays (defaults: dense ``X``/``Y`` vectors shaped to the
        matrix).  Returns ``(kernel, formats)`` where ``formats`` is the
        full binding map (reusable as the call arguments).  The profile
        fingerprint joins the kernel-cache key.

        When the ``"Hybrid"`` candidate won, compilation delegates to
        :meth:`HybridPlan.compile <repro.compiler.specialize.HybridPlan.compile>`
        — one cached sub-kernel per region, executed in fixed partition
        order by the returned ``HybridKernel``.
        """
        from repro.compiler.kernels import compile_kernel

        if self.format_name == "Hybrid" and self.hybrid is not None:
            self.built_name = "Hybrid"
            kwargs.setdefault(
                "extra_key", ("autoplan", self.profile.fingerprint())
            )
            return self.hybrid.compile(
                source=source, name=name, extra=extra, **kwargs
            )

        if source is None:
            from repro.kernels.spmv import SPMV_SRC

            source = SPMV_SRC
        fmt = self.build(coo)
        formats: dict[str, Format] = {name: fmt}
        if extra is not None:
            formats.update(extra)
        else:
            formats["X"] = DenseVector(np.zeros(fmt.shape[1]))
            formats["Y"] = DenseVector.zeros(fmt.shape[0])
        kwargs.setdefault("backend", self.backend)
        kwargs.setdefault(
            "extra_key", ("autoplan", self.profile.fingerprint())
        )
        with span(
            "autoplan.compile",
            format=type(fmt).__name__,
            backend=kwargs["backend"],
            fingerprint=self.profile.fingerprint(),
        ):
            kernel = compile_kernel(source, formats, **kwargs)
        return kernel, formats

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """The decision, the model, and the full candidate ranking."""
        lines = [self.profile.describe()]
        lines.append(
            f"auto-plan: {self.format_name} via {self.backend} backend, "
            f"predicted {self.predicted_seconds * 1e6:.1f} µs/call "
            f"(cost model: {self.model_source})"
        )
        lines.append("  candidates (cheapest first):")
        for c in self.candidates:
            status = "" if c.feasible else "  [infeasible]"
            chosen = " <- chosen" if (
                c.format_name == self.format_name and c.backend == self.backend
            ) else ""
            note = f" — {c.note}" if c.note else ""
            lines.append(
                f"    {c.format_name:<10s} {c.backend:<11s} "
                f"work={c.work_units:>10.0f}  "
                f"predicted={c.predicted_seconds * 1e6:>8.1f} µs"
                f"{status}{chosen}{note}"
            )
        if self.format_name == "Hybrid" and self.hybrid is not None:
            lines.append(self.hybrid.describe())
        return "\n".join(lines)

    def explain(self) -> str:
        """Alias for :meth:`describe` (mirrors ``explain(kernel)``)."""
        return self.describe()

    def to_dict(self) -> dict:
        return {
            "profile": self.profile.to_dict(),
            "format": self.format_name,
            "backend": self.backend,
            "predicted_seconds": self.predicted_seconds,
            "model_source": self.model_source,
            "hybrid": self.hybrid.to_dict() if self.hybrid is not None else None,
            "candidates": [
                {
                    "format": c.format_name,
                    "backend": c.backend,
                    "work_units": c.work_units,
                    "predicted_seconds": c.predicted_seconds,
                    "feasible": c.feasible,
                    "note": c.note,
                }
                for c in self.candidates
            ],
        }


# ----------------------------------------------------------------------
def _feasibility(profile: "StructureProfile", name: str) -> tuple[bool, str]:
    if name == "BlockDiag":
        if profile.nrows != profile.ncols:
            return False, "requires a square matrix"
        if not profile.blockptr:
            return False, "no diagonal-block partition"
        if profile.nblocks < 2:
            # one block spanning the whole matrix is Dense with extra
            # steps — pricing it with a beta fitted on real multi-block
            # matrices badly under-predicts (the `blockdiag` tag itself
            # requires >= 2 blocks)
            return False, "degenerate single-block partition"
    if name == "Dense" and profile.nrows * profile.ncols > 32_000_000:
        return False, "dense storage would exceed the memory budget"
    return True, ""


def autoplan(
    coo,
    model: CostModel | None = None,
    backends: tuple[str, ...] = ("vectorized", "interpreted"),
    profile: "StructureProfile | None" = None,
    history: str | None = None,
) -> AutoPlan:
    """Analyze ``coo`` and rank every candidate format by modeled cost.

    Parameters
    ----------
    coo:
        The matrix (any Format; converted through COO).
    model:
        Cost model; defaults to :meth:`CostModel.from_history` (the
        latest calibration record in ``history``, else built-ins).
    backends:
        Backend candidates to weigh, strongest first.
    profile:
        Re-use an existing :class:`StructureProfile` (skips the scan).
    history:
        Bench-history path for the default model lookup.
    """
    from repro.analysis.structure import analyze_structure

    if profile is None:
        profile = analyze_structure(coo)
    if model is None:
        model = CostModel.from_history(history)
    candidates: list[CandidateCost] = []
    for name in CANDIDATE_FORMATS:
        feasible, note = _feasibility(profile, name)
        for backend in backends:
            if backend == "interpreted":
                pred = model.predict_interpreted(profile, name)
                units = model.stored_slots(profile, name)
            else:
                pred = model.predict(profile, name)
                units = model.work_units(profile, name)
            candidates.append(
                CandidateCost(name, backend, units, pred, feasible, note)
            )

    # the composed region-specialized plan competes in the same ranking:
    # per-region α charges mean it only wins when the regions are big
    # enough to amortize the extra dispatches
    from repro.compiler.specialize import plan_hybrid

    hybrid = None
    try:
        hybrid = plan_hybrid(coo, profile=profile, model=model)
        candidates.append(
            CandidateCost(
                "Hybrid",
                "vectorized",
                hybrid.work_units,
                hybrid.predicted_seconds,
                hybrid.feasible,
                hybrid.note,
            )
        )
    except ReproError as e:  # partitioning failed: rank without hybrid
        candidates.append(
            CandidateCost(
                "Hybrid",
                "vectorized",
                0.0,
                float("inf"),
                False,
                f"partitioning failed: {e}",
            )
        )

    candidates.sort(key=lambda c: (c.predicted_seconds, c.format_name, c.backend))
    best = next(c for c in candidates if c.feasible)
    with span(
        "autoplan.select",
        format=best.format_name,
        backend=best.backend,
        predicted_seconds=best.predicted_seconds,
        tags=list(profile.tags),
        model=model.source,
    ):
        plan = AutoPlan(
            profile=profile,
            candidates=tuple(candidates),
            format_name=best.format_name,
            backend=best.backend,
            predicted_seconds=best.predicted_seconds,
            model_source=model.source,
            hybrid=hybrid,
        )
    _metrics.record(
        "runtime.autoplan.choices", format=best.format_name, backend=best.backend
    )
    _metrics.observe(
        "runtime.autoplan.predicted_seconds", best.predicted_seconds
    )
    return plan


def autoplan_spmv(coo, x=None, model: CostModel | None = None, **kwargs):
    """One-stop auto-planned SpMV: returns ``(y, plan)``.

    Analyzes, picks the format/backend, compiles (cache-keyed on the
    structure fingerprint), runs ``y = A·x``, and hands back the plan so
    callers can print ``plan.explain()``.
    """
    plan = autoplan(coo, model=model, **kwargs)
    kernel, formats = plan.compile(coo)
    xv = np.ones(formats["A"].shape[1]) if x is None else np.asarray(x, float)
    formats["X"] = DenseVector(xv.copy())
    formats["Y"] = DenseVector.zeros(formats["A"].shape[0])
    kernel(**formats)
    return formats["Y"].vals, plan
