"""Executor backends: named, registered lowering policies for plans.

A backend decides *how* each planned statement (a
:class:`~repro.compiler.codegen.KernelUnit`) becomes executable code:

* ``"interpreted"`` — the scalar backend: nested Python loops that follow
  the plan's steps literally.  This is the semantic reference path and the
  universal fallback; it can lower every legal plan.
* ``"vectorized"`` — the numpy backend: per plan it picks the strongest
  applicable lowering strategy, judged purely from the access-method
  properties the formats expose (``segmented_view``, ``inner_block_view``,
  ``inner_vector_view``).  Plans none of its strategies can lower fall
  back to the interpreted nest **inside the same kernel** — the fallback
  is per statement, is recorded in a traced ``codegen.fallback`` span and
  a ``compiler.fallbacks`` counter, and never raises.

Backends are registered by name so callers select them with a string
(``compile_kernel(..., backend="vectorized")``) and extensions can add
their own via :func:`register_backend` without compiler changes — the
same open-world contract the formats enjoy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.compiler import codegen
from repro.errors import CompileError
from repro.observability import metrics as _metrics
from repro.observability.trace import span

__all__ = [
    "LoweringStrategy",
    "ExecutorBackend",
    "INTERPRETED",
    "VECTORIZED",
    "register_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
]


@dataclass(frozen=True)
class LoweringStrategy:
    """One way of turning a planned statement into code.

    ``applies(unit, formats)`` inspects the plan shape and the formats'
    access-method properties; ``emit(g, program, unit, formats)`` writes
    the code.  ``applies`` must be side-effect free: the backend probes
    strategies in declaration order and uses the first match.
    """

    name: str
    applies: Callable[[codegen.KernelUnit, Mapping], bool]
    emit: Callable[[object, object, codegen.KernelUnit, Mapping], None]


@dataclass(frozen=True)
class ExecutorBackend:
    """A named, ordered collection of lowering strategies.

    ``universal`` marks backends whose strategy list covers every legal
    plan (the interpreted backend).  Non-universal backends fall back to
    the interpreted scalar nest for plans they cannot lower.
    """

    name: str
    strategies: tuple[LoweringStrategy, ...]
    universal: bool = False
    description: str = ""

    def select(self, unit: codegen.KernelUnit, formats: Mapping) -> LoweringStrategy | None:
        """First strategy whose ``applies`` accepts this unit, or None."""
        for strat in self.strategies:
            if strat.applies(unit, formats):
                return strat
        return None

    def lower_unit(self, g, program, unit: codegen.KernelUnit, formats: Mapping) -> str:
        """Emit code for one unit; returns the lowering label used.

        Plans no strategy covers are lowered through the interpreted
        scalar nest under a traced ``codegen.fallback`` span — graceful
        degradation, never an error.
        """
        strat = self.select(unit, formats)
        if strat is not None:
            strat.emit(g, program, unit, formats)
            return strat.name
        with span(
            "codegen.fallback",
            backend=self.name,
            driver=unit.plan.driver,
            steps=[repr(s) for s in unit.plan.steps],
            reason="no strategy of this backend lowers the plan",
        ):
            codegen._emit_scalar_nest(g, program, unit, formats)
        _metrics.record("compiler.fallbacks", backend=self.name)
        return "fallback:scalar"


#: The interpreted reference path: scalar loops for everything.
INTERPRETED = ExecutorBackend(
    name="interpreted",
    strategies=(
        LoweringStrategy("scalar", lambda unit, formats: True, codegen._emit_scalar_nest),
    ),
    universal=True,
    description="nested Python loops following the plan exactly",
)

#: The numpy backend: strongest applicable strategy per plan, probed in
#: order of how much of the nest each one collapses.
VECTORIZED = ExecutorBackend(
    name="vectorized",
    strategies=(
        LoweringStrategy(
            "segmented", codegen._segmented_vectorizable, codegen._emit_segmented_nest
        ),
        LoweringStrategy(
            "block-gemv", codegen._block_vectorizable, codegen._emit_block_nest
        ),
        LoweringStrategy(
            "vectorized", codegen._vectorizable, codegen._emit_vector_nest
        ),
        LoweringStrategy(
            "reduce-scatter",
            codegen._reduction_scatter_applies,
            codegen._emit_vector_nest,
        ),
    ),
    description="numpy slice/gather/segmented-reduction lowering with "
    "per-statement fallback to the interpreted nest",
)


_BACKENDS: dict[str, ExecutorBackend] = {}


def register_backend(backend: ExecutorBackend, aliases: tuple[str, ...] = ()) -> ExecutorBackend:
    """Register a backend under its name (plus ``aliases``)."""
    for key in (backend.name, *aliases):
        _BACKENDS[key] = backend
    return backend


register_backend(INTERPRETED)
register_backend(VECTORIZED, aliases=("auto",))


def available_backends() -> tuple[str, ...]:
    """Registered backend names (aliases included), sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(backend: str | ExecutorBackend) -> ExecutorBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecutorBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise CompileError(
            f"unknown executor backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def resolve_backend(
    backend: str | ExecutorBackend | None = None, vectorize: bool | None = None
) -> ExecutorBackend:
    """Resolve the (backend, legacy-vectorize-flag) pair to one backend.

    ``backend`` wins when given; ``vectorize`` is the pre-backend boolean
    kept for compatibility (False → interpreted, True/None → vectorized).
    Contradictory combinations raise :class:`CompileError`.
    """
    if backend is not None:
        be = get_backend(backend)
        if vectorize is False and be.name != INTERPRETED.name:
            raise CompileError(
                f"vectorize=False contradicts backend={be.name!r}; "
                "drop one of the two"
            )
        if vectorize is True and be.name == INTERPRETED.name:
            raise CompileError(
                "vectorize=True contradicts backend='interpreted'; "
                "drop one of the two"
            )
        return be
    return INTERPRETED if vectorize is False else VECTORIZED
