"""Python code generation from access plans.

The lowering *strategies* live here; the *policy* of which strategy runs
for which plan is an :class:`~repro.compiler.backends.ExecutorBackend`:

* **scalar** — nested Python loops following the plan's steps exactly;
  the semantic reference (the ``"interpreted"`` backend) and the fallback
  for plans whose innermost step is a search (no contiguous view to
  vectorize over).
* **vectorized / block-gemv / segmented** — the ``"vectorized"``
  backend's strategies: when the access-method properties expose a
  contiguous :meth:`inner_vector_view`, a dense :meth:`inner_block_view`,
  or a whole-matrix :meth:`segmented_view`, loops are replaced by numpy
  slice/gather/scatter operations (``np.dot`` for reductions, slice
  ``+=`` for affine scatters, ``np.add.at`` for gather scatters,
  ``np.add.reduceat`` for segmented reductions).  This plays the role of
  the paper's generated C code: it exploits exactly the contiguity the
  formats were designed to expose.
* **reduce-scatter** — the op-aware variant for non-additive reductions
  the dependence analyzer certifies (``REDUCTION(op)``, op ∈ ``*``,
  ``min``, ``max``): the same vector shapes lowered through privatized
  accumulation (``np.prod``/``.min()``/``.max()`` on contiguous views,
  ``np.multiply.at``/``np.minimum.at``/``np.maximum.at`` for gather
  scatters).  The additive strategies above stay ``+``-only.

Generated functions take the formats' flat storage arrays (``A_rowptr``,
``X_vals``, ...) plus free scalars as keyword parameters and mutate the
output storage in place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ast_nodes import Assign, BinOp, Expr, Neg, Num, Program, Ref, Scalar
from repro.compiler.scheduling import Plan, Step
from repro.errors import CompileError
from repro.formats.base import Emitter, Format
from repro.observability.trace import span

__all__ = ["generate_source", "KernelUnit"]


@dataclass(frozen=True)
class KernelUnit:
    """One statement with its plan (the compiler emits one nest per unit)."""

    stmt: Assign
    plan: Plan


def _bound_expr(sym: str) -> str:
    """A loop-bound symbol as a code expression (numeral or scalar param)."""
    return sym


class _NestState:
    """Mutable walk state while emitting one loop nest."""

    def __init__(self):
        self.parent_pos: dict[str, str | None] = {}
        self.final_pos: dict[str, str] = {}
        self.depth_opened = 0


def _emit_steps(
    g: Emitter,
    program: Program,
    plan: Plan,
    formats: dict[str, Format],
    steps: tuple[Step, ...],
) -> _NestState:
    """Emit the nested access structure for ``steps``; returns walk state."""
    st = _NestState()
    loopspec = {l.var: l for l in program.loops}
    base_depth = g.depth
    # merge steps reset their cursor just before their anchor loop opens
    merge_by_anchor: dict[int, list[int]] = {}
    for k, step in enumerate(steps):
        if step.kind == "merge":
            merge_by_anchor.setdefault(step.anchor, []).append(k)
    cursors: dict[int, str] = {}
    for k, step in enumerate(steps):
        for mk in merge_by_anchor.get(k, ()):
            cur = g.fresh(f"cur_{steps[mk].term}")
            cursors[mk] = cur
            g.emit(f"{cur} = 0")
        if step.kind == "dense":
            spec = loopspec[step.var]
            g.open(
                f"for {step.var} in range({_bound_expr(spec.lo)}, {_bound_expr(spec.hi)}):"
            )
        elif step.kind == "merge":
            fmt = formats[step.term]
            level = fmt.levels()[step.level_index]
            pos = level.emit_merge(
                g, step.term, st.parent_pos.get(step.term), step.key, cursors[k]
            )
            st.parent_pos[step.term] = pos
            st.final_pos[step.term] = pos
        else:
            fmt = formats[step.term]
            level = fmt.levels()[step.level_index]
            term = plan.query.term_for(step.term)
            avm = {a: v for a, v in enumerate(term.indices)}
            parent = st.parent_pos.get(step.term)
            if step.kind == "enumerate":
                axis_vars: dict[int, str] = {}
                guard_pairs: list[tuple[str, str]] = []
                for a in level.binds:
                    if a not in avm:
                        continue
                    v = avm[a]
                    if v in step.guards:
                        tmp = g.fresh(f"g_{v}")
                        axis_vars[a] = tmp
                        guard_pairs.append((tmp, v))
                    else:
                        axis_vars[a] = v
                pos = level.emit_enumerate(g, step.term, parent, axis_vars)
                for tmp, v in guard_pairs:
                    g.open(f"if {tmp} != {v}:")
                    g.emit("continue")
                    g.close()
            else:  # search
                axis_exprs = {a: avm[a] for a in level.binds if a in avm}
                pos = level.emit_search(g, step.term, parent, axis_exprs)
            st.parent_pos[step.term] = pos
            st.final_pos[step.term] = pos
    st.depth_opened = g.depth - base_depth
    return st


# ----------------------------------------------------------------------
# scalar expression emission
# ----------------------------------------------------------------------
def _emit_expr_scalar(
    g: Emitter,
    expr: Expr,
    formats: dict[str, Format],
    plan: Plan,
    st: _NestState,
) -> str:
    if isinstance(expr, Num):
        return repr(expr.value)
    if isinstance(expr, Scalar):
        return expr.name
    if isinstance(expr, Neg):
        return f"(-{_emit_expr_scalar(g, expr.operand, formats, plan, st)})"
    if isinstance(expr, BinOp):
        l = _emit_expr_scalar(g, expr.left, formats, plan, st)
        r = _emit_expr_scalar(g, expr.right, formats, plan, st)
        return f"({l} {expr.op} {r})"
    if isinstance(expr, Ref):
        fmt = formats[expr.array]
        avm = {a: v for a, v in enumerate(expr.indices)}
        pos = st.final_pos.get(expr.array)
        return fmt.emit_load(g, expr.array, avm, pos)
    raise CompileError(f"cannot emit expression {expr!r}")


def _emit_scalar_nest(
    g: Emitter, program: Program, unit: KernelUnit, formats: dict[str, Format]
) -> None:
    plan, stmt = unit.plan, unit.stmt
    st = _emit_steps(g, program, plan, formats, plan.steps)
    value = _emit_expr_scalar(g, stmt.expr, formats, plan, st)
    out_fmt = formats[stmt.target.array]
    avm = {a: v for a, v in enumerate(stmt.target.indices)}
    out_fmt.emit_accumulate(
        g, stmt.target.array, avm, None, value,
        op=stmt.op if stmt.reduce else "+",
    )
    g.close(st.depth_opened)


# ----------------------------------------------------------------------
# vectorized backend
# ----------------------------------------------------------------------
def _multiplicative_factors(expr: Expr):
    """Flatten a product/quotient chain into (sign, [(op, factor), ...]);
    op is '*' or '/'.  Returns None if the expression is not such a chain."""
    sign = 1.0
    factors: list[tuple[str, Expr]] = []

    def walk(e: Expr, op: str) -> bool:
        nonlocal sign
        if isinstance(e, Neg):
            sign = -sign
            return walk(e.operand, op)
        if isinstance(e, BinOp) and e.op in ("*", "/"):
            if op == "/":
                # (a / (b*c)) — keep whole right side as one denominator
                factors.append((op, e))
                return True
            return walk(e.left, op) and walk(e.right, e.op)
        if isinstance(e, (Num, Scalar, Ref)):
            factors.append((op, e))
            return True
        return False

    ok = walk(expr, "*")
    return (sign, factors) if ok else None


def _vector_shape_ok(unit: KernelUnit, formats: dict[str, Format]) -> bool:
    """Plan/expression shape the single-axis vectorizer can lower
    (operator-agnostic — the strategies split on the statement's op)."""
    plan, stmt = unit.plan, unit.stmt
    if plan.noop or not plan.steps:
        return False
    last = plan.steps[-1]
    if last.guards:
        return False
    if last.kind not in ("enumerate", "dense"):
        return False
    if last.kind == "enumerate":
        fmt = formats[last.term]
        if last.level_index != len(fmt.levels()) - 1:
            return False
        if fmt.inner_vector_view(last.term, "0") is None:
            return False
    mf = _multiplicative_factors(stmt.expr)
    if mf is None:
        return False
    if any(isinstance(f, BinOp) for _, f in mf[1]):
        return False  # composite denominator: leave scalar
    # every ref must only use outer vars or vars bound by the last step
    inner = set(last.binds)
    outer: set[str] = set()
    for s in plan.steps[:-1]:
        outer.update(s.binds)
    for ref in (stmt.target,) + stmt.expr.refs():
        for v in ref.indices:
            if v not in inner and v not in outer:
                return False
        # a ref reading the array being driven must BE the driver ref
        if ref.array == last.term and last.kind == "enumerate":
            term = plan.query.term_for(last.term)
            if ref.indices != term.indices:
                return False
    return True


def _vectorizable(unit: KernelUnit, formats: dict[str, Format]) -> bool:
    """The additive vectorizer: slice/gather lowering for '+' updates."""
    stmt = unit.stmt
    if stmt.reduce and stmt.op != "+":
        return False
    return _vector_shape_ok(unit, formats)


def _reduction_scatter_applies(unit: KernelUnit, formats: dict[str, Format]) -> bool:
    """Privatized-accumulation scatter for non-additive reductions
    ('*', 'min', 'max') — the ufunc.at family handles duplicate targets."""
    stmt = unit.stmt
    if not (stmt.reduce and stmt.op != "+"):
        return False
    if not _vector_shape_ok(unit, formats):
        return False
    inner = set(unit.plan.steps[-1].binds)
    if not any(v in inner for r in stmt.expr.refs() for v in r.indices):
        # nothing varies over the vector axis: the per-entry contribution
        # would be a broadcast scalar, which a combine like np.prod would
        # count once instead of once per iteration — leave it scalar
        return False
    return True


def _emit_vector_nest(
    g: Emitter, program: Program, unit: KernelUnit, formats: dict[str, Format]
) -> None:
    plan, stmt = unit.plan, unit.stmt
    last = plan.steps[-1]
    st = _emit_steps(g, program, plan, formats, plan.steps[:-1])

    s_var, e_var = g.fresh("s"), g.fresh("e")
    # var -> (kind, payload, unique): kind "affine"|"gather"; unique means
    # the index values never repeat within the slice (safe for fancy `+=`)
    vec_map: dict[str, tuple[str, str, bool]] = {}
    driver_vals: str | None = None
    if last.kind == "dense":
        spec = {l.var: l for l in program.loops}[last.var]
        g.emit(f"{s_var} = {_bound_expr(spec.lo)}")
        g.emit(f"{e_var} = {_bound_expr(spec.hi)}")
        vec_map[last.var] = ("affine", s_var, True)
    else:
        fmt = formats[last.term]
        term = plan.query.term_for(last.term)
        parent = st.parent_pos.get(last.term)
        view = fmt.inner_vector_view(last.term, parent)
        if view is None:
            raise CompileError("vectorizer: view vanished at emit time")
        lo, hi = view["slice"]
        g.emit(f"{s_var} = {lo}")
        g.emit(f"{e_var} = {hi}")
        avm = {a: v for a, v in enumerate(term.indices)}
        unique_axes = view.get("unique_axes", frozenset())
        for a, desc in view["index"].items():
            if a in avm:
                kind, tpl = desc
                vec_map[avm[a]] = (
                    kind,
                    tpl.format(s=s_var, e=e_var) if kind == "gather" else tpl,
                    kind == "affine" or a in unique_axes,
                )
        driver_vals = view["vals"].format(s=s_var, e=e_var)

    def ref_expr(ref: Ref) -> tuple[str, bool]:
        """(code, is_vector) for a reference under the vector map."""
        if last.kind == "enumerate" and ref.array == last.term:
            return driver_vals, True
        fmt = formats[ref.array]
        idx_exprs: dict[int, str] = {}
        vec = False
        for a, v in enumerate(ref.indices):
            if v in vec_map:
                kind, payload, _unique = vec_map[v]
                idx_exprs[a] = (kind, payload)
                vec = True
            else:
                idx_exprs[a] = ("scalar", v)
        if not vec:
            tmp = Emitter()
            return fmt.emit_load(tmp, ref.array, {a: v for a, v in enumerate(ref.indices)}, st.final_pos.get(ref.array)), False
        # build a numpy indexing expression through the format's own hook
        parts = []
        for a in range(len(ref.indices)):
            kind, payload = idx_exprs[a]
            if kind == "scalar":
                parts.append(payload)
            elif kind == "affine":
                parts.append(f"{payload}:{payload} + ({e_var} - {s_var})")
            else:
                parts.append(payload)
        return fmt.emit_load_vec(ref.array, parts), True

    sign, factors = _multiplicative_factors(stmt.expr)
    scalar_parts: list[tuple[str, str]] = []
    vector_parts: list[tuple[str, str]] = []
    for op, f in factors:
        if isinstance(f, Num):
            scalar_parts.append((op, repr(f.value)))
        elif isinstance(f, Scalar):
            scalar_parts.append((op, f.name))
        else:
            assert isinstance(f, (Ref, BinOp))
            if isinstance(f, BinOp):
                raise CompileError("vectorizer: nested denominator unsupported")
            code, is_vec = ref_expr(f)
            (vector_parts if is_vec else scalar_parts).append((op, code))
    if sign < 0:
        scalar_parts.insert(0, ("*", "-1.0"))

    def chain(parts: list[tuple[str, str]], seed: str | None = None) -> str:
        out = seed
        for op, code in parts:
            if out is None:
                out = code if op == "*" else f"(1.0 {op} {code})"
            else:
                out = f"({out} {op} {code})"
        return out or "1.0"

    target = stmt.target
    tgt_vec_axes = [v for v in target.indices if v in vec_map]
    out_name = f"{target.array}_vals"
    red_op = stmt.op if stmt.reduce else "+"

    if not tgt_vec_axes and red_op == "+":
        # full reduction over the vector axis into a scalar target slot
        mults = [c for op, c in vector_parts if op == "*"]
        divs = [c for op, c in vector_parts if op == "/"]
        if len(mults) == 2 and not divs:
            contrib = f"np.dot({mults[0]}, {mults[1]})"
        elif len(mults) == 1 and not divs:
            contrib = f"np.sum({mults[0]})"
        else:
            contrib = f"np.sum({chain(vector_parts)})"
        scal = chain(scalar_parts) if scalar_parts else None
        value = contrib if scal is None else f"({scal}) * {contrib}"
        tgt_idx = ", ".join(target.indices)
        g.emit(f"{out_name}[{tgt_idx}] += {value}")
    elif not tgt_vec_axes:
        # non-additive full reduction into a scalar slot: combine the
        # per-entry contribution vector, guarding the empty slice (min/max
        # of an empty slice is the identity — no entries, no combine)
        contrib = chain(vector_parts)
        if scalar_parts:
            # scalars fold into every entry BEFORE the combine (they do
            # not factor out of a product or a min the way they scale a sum)
            contrib = f"({chain(scalar_parts)}) * {contrib}"
        tgt_idx = ", ".join(target.indices)
        if red_op == "*":
            g.emit(f"{out_name}[{tgt_idx}] *= np.prod({contrib})")
        else:
            red_var = g.fresh("red")
            g.emit(f"{red_var} = np.asarray({contrib})")
            g.open(f"if {red_var}.size:")
            fn = "np.minimum" if red_op == "min" else "np.maximum"
            sel = f"{out_name}[{tgt_idx}]"
            g.emit(f"{sel} = {fn}({sel}, {red_var}.{red_op}())")
            g.close()
    else:
        contrib = chain(vector_parts, seed=None)
        if scalar_parts:
            contrib = f"({chain(scalar_parts)}) * {contrib}"
        idx_parts: list[str] = []
        gather = False
        # fancy `+=` loses updates on duplicate targets; it is safe iff at
        # least one vectorized target axis is duplicate-free in the slice
        # (affine axes always are), since then the index tuples are distinct
        safe_inplace = False
        for v in target.indices:
            if v in vec_map:
                kind, payload, unique = vec_map[v]
                if kind == "affine":
                    idx_parts.append(f"{payload}:{payload} + ({e_var} - {s_var})")
                    safe_inplace = True
                else:
                    idx_parts.append(payload)
                    gather = True
                    safe_inplace = safe_inplace or unique
            else:
                idx_parts.append(v)
        ufunc = {
            "+": "np.add.at",
            "*": "np.multiply.at",
            "min": "np.minimum.at",
            "max": "np.maximum.at",
        }[red_op]
        if gather and not safe_inplace:
            # unbuffered ufunc scatter: duplicate target indices each get
            # their own combine (privatized accumulation)
            idx = idx_parts[0] if len(idx_parts) == 1 else f"({', '.join(idx_parts)})"
            g.emit(f"{ufunc}({out_name}, {idx}, {contrib})")
        else:
            sel = f"{out_name}[{', '.join(idx_parts)}]"
            if red_op == "+":
                g.emit(f"{sel} += {contrib}")
            elif red_op == "*":
                g.emit(f"{sel} *= {contrib}")
            else:
                fn = "np.minimum" if red_op == "min" else "np.maximum"
                g.emit(f"{sel} = {fn}({sel}, {contrib})")
    g.close(st.depth_opened)


# ----------------------------------------------------------------------
# block-GEMV backend: collapse the driver's final (row, col) levels into
# one dense matrix-vector product per block (i-nodes / clique blocks)
# ----------------------------------------------------------------------
def _block_plan_shape(unit: KernelUnit, formats: dict[str, Format]):
    """If the last two steps enumerate the driver's final two levels (one
    row var, one col var) and the format exposes a block view, return
    (row_var, col_var); else None."""
    plan = unit.plan
    if plan.noop or len(plan.steps) < 2:
        return None
    s_row, s_col = plan.steps[-2], plan.steps[-1]
    if not (
        s_row.kind == "enumerate"
        and s_col.kind == "enumerate"
        and s_row.term == s_col.term == plan.driver
        and not s_row.guards
        and not s_col.guards
        and len(s_row.binds) == 1
        and len(s_col.binds) == 1
    ):
        return None
    fmt = formats[plan.driver]
    nlev = len(fmt.levels())
    if s_row.level_index != nlev - 2 or s_col.level_index != nlev - 1:
        return None
    if fmt.inner_block_view(plan.driver, "0") is None:
        return None
    return s_row.binds[0], s_col.binds[0]


def _block_vectorizable(unit: KernelUnit, formats: dict[str, Format]) -> bool:
    if unit.stmt.reduce and unit.stmt.op != "+":
        return False  # the GEMV collapse sums; other combines don't fit
    shape = _block_plan_shape(unit, formats)
    if shape is None:
        return False
    row_var, col_var = shape
    stmt = unit.stmt
    target = stmt.target
    tfmt = formats[target.array]
    if target.indices != (row_var,) or not tfmt.writable or tfmt.ndim != 1:
        return False
    mf = _multiplicative_factors(stmt.expr)
    if mf is None:
        return False
    driver = unit.plan.driver
    term = unit.plan.query.term_for(driver)
    outer_vars = set()
    for s in unit.plan.steps[:-2]:
        outer_vars.update(s.binds)
    for op, f in mf[1]:
        if isinstance(f, BinOp):
            return False
        if isinstance(f, Ref):
            if f.array == driver:
                if f.indices != term.indices:
                    return False
                continue
            rf = formats[f.array]
            if not rf.structurally_dense or rf.ndim != 1:
                return False
            idx = set(f.indices)
            if not (idx == {row_var} or idx == {col_var} or idx <= outer_vars):
                return False
    return True


def _emit_block_nest(
    g: Emitter, program: Program, unit: KernelUnit, formats: dict[str, Format]
) -> None:
    plan, stmt = unit.plan, unit.stmt
    row_var, col_var = _block_plan_shape(unit, formats)
    st = _emit_steps(g, program, plan, formats, plan.steps[:-2])
    fmt = formats[plan.driver]
    view = fmt.inner_block_view(plan.driver, st.parent_pos.get(plan.driver))

    nr, nc = g.fresh("nr"), g.fresh("nc")
    g.emit(f"{nr} = {view['nrows']}")
    g.emit(f"{nc} = {view['ncols']}")
    blk = g.fresh("B")
    g.emit(f"{blk} = {view['vals']}.reshape({nr}, {nc})")

    def idx_expr(desc, extent):
        kind = desc[0]
        if kind == "affine":
            return f"{desc[1]} : {desc[1]} + {extent}"
        return desc[1]

    rows_idx = idx_expr(view["rows"], nr)
    cols_idx = idx_expr(view["cols"], nc)

    sign, factors = _multiplicative_factors(stmt.expr)
    col_parts: list[tuple[str, str]] = []
    row_parts: list[tuple[str, str]] = []
    scalar_parts: list[tuple[str, str]] = []
    for op, f in factors:
        if isinstance(f, Num):
            scalar_parts.append((op, repr(f.value)))
        elif isinstance(f, Scalar):
            scalar_parts.append((op, f.name))
        elif f.array == plan.driver:
            continue  # the block itself
        elif set(f.indices) == {col_var}:
            col_parts.append(
                (op, formats[f.array].emit_load_vec(f.array, [cols_idx]))
            )
        elif set(f.indices) == {row_var}:
            row_parts.append(
                (op, formats[f.array].emit_load_vec(f.array, [rows_idx]))
            )
        else:  # outer-bound scalar load
            tmp = Emitter()
            code = formats[f.array].emit_load(
                tmp, f.array, {a: v for a, v in enumerate(f.indices)}, None
            )
            scalar_parts.append((op, code))
    if sign < 0:
        scalar_parts.insert(0, ("*", "-1.0"))

    def chain(parts, seed=None):
        out = seed
        for op, code in parts:
            if out is None:
                out = code if op == "*" else f"(1.0 {op} {code})"
            else:
                out = f"({out} {op} {code})"
        return out

    xg = chain(col_parts)
    res = f"{blk} @ ({xg})" if xg else f"{blk}.sum(axis=1)"
    pre = chain(row_parts)
    if pre:
        res = f"({pre}) * ({res})"
    if scalar_parts:
        res = f"({chain(scalar_parts)}) * ({res})"
    out_name = f"{stmt.target.array}_vals"
    if view["rows"][0] == "gather" and not view.get("unique_rows", False):
        g.emit(f"np.add.at({out_name}, {rows_idx}, {res})")
    else:
        g.emit(f"{out_name}[{rows_idx}] += {res}")
    g.close(st.depth_opened)


# ----------------------------------------------------------------------
# segmented-reduction backend: collapse a full two-level enumeration into
# one flat product + one segmented reduction (np.add.reduceat / 2-D sum)
# ----------------------------------------------------------------------
def _segmented_plan_shape(unit: KernelUnit, formats: dict[str, Format]):
    """If the plan is exactly 'driver outer level then driver inner level'
    over a format with a segmented view, return (view, outer_var,
    inner_vars); else None."""
    plan, stmt = unit.plan, unit.stmt
    if plan.noop or len(plan.steps) != 2:
        return None
    s0, s1 = plan.steps
    if not (
        s0.kind == "enumerate"
        and s1.kind == "enumerate"
        and s0.term == s1.term == plan.driver
        and s0.level_index == 0
        and s1.level_index == 1
        and not s0.guards
        and not s1.guards
        and len(s0.binds) == 1
    ):
        return None
    fmt = formats[s0.term]
    view = fmt.segmented_view(s0.term)
    if view is None:
        return None
    return view, s0.binds[0], set(s1.binds)


def _segmented_vectorizable(unit: KernelUnit, formats: dict[str, Format]) -> bool:
    if unit.stmt.reduce and unit.stmt.op != "+":
        return False  # np.add.reduceat / .sum are additive by nature
    shape = _segmented_plan_shape(unit, formats)
    if shape is None:
        return False
    view, outer_var, inner_vars = shape
    stmt = unit.stmt
    # reduction into a dense vector indexed by the outer variable
    target = stmt.target
    tfmt = formats[target.array]
    if target.indices != (outer_var,) or not tfmt.writable or tfmt.ndim != 1:
        return False
    mf = _multiplicative_factors(stmt.expr)
    if mf is None:
        return False
    driver = unit.plan.driver
    term = unit.plan.query.term_for(driver)
    for op, f in mf[1]:
        if isinstance(f, BinOp):
            return False
        if isinstance(f, Ref):
            if f.array == driver:
                if f.indices != term.indices:
                    return False
                continue
            rf = formats[f.array]
            if not rf.structurally_dense or rf.ndim != 1:
                return False
            idx = set(f.indices)
            # either per-segment constant (outer var) or gathered (inner)
            if not (idx == {outer_var} or idx <= inner_vars):
                return False
    return True


def _emit_segmented_nest(
    g: Emitter, program: Program, unit: KernelUnit, formats: dict[str, Format]
) -> None:
    view, outer_var, _inner = _segmented_plan_shape(unit, formats)
    stmt = unit.stmt
    driver = unit.plan.driver
    term = unit.plan.query.term_for(driver)
    avm = {a: v for a, v in enumerate(term.indices)}
    # index gather expressions keyed by inner loop var
    gather_of = {
        avm[a]: expr for a, expr in view["index"].items() if a in avm
    }
    sign, factors = _multiplicative_factors(stmt.expr)
    flat_parts: list[tuple[str, str]] = []  # per-entry factors
    outer_parts: list[tuple[str, str]] = []  # per-segment factors
    scalar_parts: list[tuple[str, str]] = []
    for op, f in factors:
        if isinstance(f, Num):
            scalar_parts.append((op, repr(f.value)))
        elif isinstance(f, Scalar):
            scalar_parts.append((op, f.name))
        elif f.array == driver:
            flat_parts.append((op, view["vals"]))
        elif set(f.indices) == {outer_var}:
            outer_parts.append((op, f.array))
        else:
            flat_parts.append(
                (op, formats[f.array].emit_load_vec(f.array, [gather_of[f.indices[0]]]))
            )
    if sign < 0:
        scalar_parts.insert(0, ("*", "-1.0"))

    def chain(parts, seed=None):
        out = seed
        for op, code in parts:
            if out is None:
                out = code if op == "*" else f"(1.0 {op} {code})"
            else:
                out = f"({out} {op} {code})"
        return out

    prod = chain(flat_parts)
    out_name = f"{stmt.target.array}_vals"
    if view["kind"] == "segments":
        seg = view["segments"]
        p_var, ne_var = g.fresh("prod"), g.fresh("ne")
        g.emit(f"{p_var} = {prod}")
        g.emit(f"{ne_var} = np.flatnonzero(np.diff({seg}))")
        red = f"np.add.reduceat({p_var}, {seg}[{ne_var}])"
        pieces = outer_parts and chain(
            [
                (op, formats[name].emit_load_vec(name, [ne_var]))
                for op, name in outer_parts
            ]
        )
        if pieces:
            red = f"({pieces}) * {red}"
        if scalar_parts:
            red = f"({chain(scalar_parts)}) * {red}"
        g.emit(f"{out_name}[{ne_var}] += {red}")
    else:  # dense2d
        red = f"({prod}).sum(axis=1)"
        if outer_parts:
            full = chain(
                [
                    (op, formats[name].emit_load_vec(name, [":"]))
                    for op, name in outer_parts
                ]
            )
            red = f"({full}) * {red}"
        if scalar_parts:
            red = f"({chain(scalar_parts)}) * {red}"
        g.emit(f"{out_name}[:] += {red}")


def _zero_fill(g: Emitter, target: Ref, formats: dict[str, Format]) -> None:
    fmt = formats[target.array]
    colons = ", ".join(":" for _ in range(fmt.ndim))
    g.emit(f"{target.array}_vals[{colons}] = 0.0")


def generate_source(
    program: Program,
    units: list[KernelUnit],
    formats: dict[str, Format],
    param_names: list[str],
    backend,
    func_name: str = "kernel",
) -> tuple[str, tuple[str, ...]]:
    """Emit the full kernel function for the program's plan units.

    ``backend`` is an :class:`~repro.compiler.backends.ExecutorBackend`;
    every unit is lowered through ``backend.lower_unit``.  Returns the
    source plus the per-unit lowering labels (``"noop"``, a strategy
    name, or ``"fallback:scalar"``).
    """
    with span("compiler.codegen", units=len(units), backend=backend.name) as sp:
        g = Emitter()
        # parameter names must never be reused as generated temporaries (a
        # storage array named like a fresh temp would be clobbered)
        g.reserve(param_names)
        g.emit(f"def {func_name}({', '.join(param_names)}):")
        g.depth += 1
        body_start = len(g.lines)
        labels: list[str] = []
        for unit in units:
            if not unit.stmt.reduce:
                # plain assignment: zero-fill then guarded accumulate
                _zero_fill(g, unit.stmt.target, formats)
            if unit.plan.noop:
                labels.append("noop")
                continue
            labels.append(backend.lower_unit(g, program, unit, formats))
        if len(g.lines) == body_start:
            g.emit("pass")
        g.depth -= 1
        src = g.source()
        sp.set(backends=labels, lines=len(g.lines), chars=len(src))
    return src, tuple(labels)
