"""Kernel compilation entry point and the CompiledKernel wrapper.

``compile_kernel(src, formats)`` runs the whole pipeline — parse,
normalize/split, sparsity analysis, query extraction, planning, code
generation — and returns a :class:`CompiledKernel` that can be invoked
repeatedly with *any* data stored in the same formats:

    >>> k = compile_kernel("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",
    ...                    formats={"A": a_crs, "X": x_dense, "Y": y_dense},
    ...                    backend="vectorized")
    >>> k(A=a_crs, X=x_dense, Y=y_dense)     # y += A @ x, in place

``backend`` selects the executor backend (``"vectorized"`` — the default
— or ``"interpreted"``; see :mod:`repro.compiler.backends`).  Compilation
is cached in a :class:`~repro.compiler.plan_cache.PlanCache` keyed on
(loop nest, format specs, sparsity predicates, backend, planner options):
rebinding new data of the same structure costs only a dict merge, and the
cache's hit/miss counters land in ``repro.observability.metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.compiler import codegen
from repro.compiler.ast_nodes import Assign, BinOp, Expr, Neg, Program, normalize_program
from repro.compiler.backends import ExecutorBackend, resolve_backend
from repro.compiler.codegen import KernelUnit
from repro.compiler.parser import parse
from repro.compiler.plan_cache import PlanCache, kernel_cache_key
from repro.compiler.query_extract import extract_query
from repro.compiler.scheduling import plan_query
from repro.compiler.sparsity import split_statement
from repro.errors import CompileError, VerificationError
from repro.formats.base import Format
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace

__all__ = [
    "CompiledKernel",
    "KernelCounters",
    "KERNEL_CACHE",
    "compile_kernel",
    "clear_kernel_cache",
    "kernel_cache_stats",
]


@dataclass(frozen=True)
class KernelCounters:
    """Work counters for one kernel invocation (Table-1 methodology).

    ``flops`` counts one floating-point operation per arithmetic operator
    per driven entry plus one for the accumulate — for CRS SpMV that is
    the classic ``2·nnz``.  ``nnz_touched`` sums the stored entries of
    every sparse operand; ``rows_visited`` sums the output rows written.
    """

    flops: float = 0.0
    nnz_touched: int = 0
    rows_visited: int = 0

    def mflops(self, seconds: float) -> float:
        """MFlop/s at these counters over ``seconds`` of wall time."""
        return self.flops / seconds / 1e6 if seconds > 0 else float("nan")

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        return KernelCounters(
            self.flops + other.flops,
            self.nnz_touched + other.nnz_touched,
            self.rows_visited + other.rows_visited,
        )


def _count_flop_ops(expr: Expr) -> int:
    """Arithmetic operators in an expression tree (negation included)."""
    if isinstance(expr, BinOp):
        return 1 + _count_flop_ops(expr.left) + _count_flop_ops(expr.right)
    if isinstance(expr, Neg):
        return 1 + _count_flop_ops(expr.operand)
    return 0

#: process-global plan/kernel cache (see :mod:`repro.compiler.plan_cache`)
KERNEL_CACHE = PlanCache("compiler")


@dataclass
class _BoundVar:
    """Resolution rule for one loop variable's upper bound."""

    var: str
    hi_symbol: str  # numeral or scalar name
    anchors: list[tuple[str, int]]  # (array, axis) whose extent must equal hi


class CompiledKernel:
    """A compiled sparse kernel, bound per call to concrete storage."""

    def __init__(
        self,
        program: Program,
        units: list[KernelUnit],
        formats: Mapping[str, Format],
        backend: ExecutorBackend,
    ):
        self.program = program
        self.units = units
        #: :class:`~repro.analysis.depend.ParallelismCertificate` attached
        #: by :func:`compile_kernel` when verification ran (None under
        #: ``verify="off"``); re-validated on every plan-cache hit
        self.certificate = None
        self.format_classes = {name: type(f) for name, f in formats.items()}
        self.format_specs = {name: f.spec() for name, f in formats.items()}
        #: name of the executor backend this kernel was lowered with
        self.backend = backend.name
        self.scalar_names = sorted(program.scalar_names())
        self._bound_vars = self._bound_var_rules(formats)
        # per-unit flops per driven entry: operators in the expression plus
        # one for the accumulate into the target
        self._ops_per_entry = [
            _count_flop_ops(u.stmt.expr) + 1 for u in units
        ]
        #: counters of the most recent ``__call__`` (None until metrics or
        #: tracing is enabled — counting is skipped on the bare fast path)
        self.last_counters: KernelCounters | None = None
        storage_keys: list[str] = []
        for name, fmt in sorted(formats.items()):
            keys = sorted(fmt.storage(name).keys())
            for k in keys:
                if k in storage_keys:
                    raise CompileError(f"storage key collision on {k!r}")
            storage_keys.extend(keys)
        self.param_names = storage_keys + [
            s for s in self.scalar_names if s not in storage_keys
        ]
        #: per-unit lowering labels (strategy name, "noop", or
        #: "fallback:scalar" when the backend could not lower the plan)
        self.unit_backends: tuple[str, ...]
        self.source, self.unit_backends = codegen.generate_source(
            program, units, dict(formats), self.param_names, backend=backend
        )
        ns: dict = {"np": np}
        exec(compile(self.source, "<bernoulli-kernel>", "exec"), ns)
        self._fn = ns["kernel"]

    # ------------------------------------------------------------------
    def _bound_var_rules(self, formats: Mapping[str, Format]) -> list[_BoundVar]:
        rules = []
        for spec in self.program.loops:
            if spec.lo != "0":
                raise CompileError(
                    f"loop over {spec.var!r} must start at 0 (got {spec.lo!r}); "
                    "sparse enumeration covers the full index range"
                )
            anchors = []
            for unit in self.units:
                for term in unit.plan.query.terms:
                    for axis, v in enumerate(term.indices):
                        if v == spec.var:
                            anchors.append((term.array, axis))
            rules.append(_BoundVar(spec.var, spec.hi, anchors))
        return rules

    def describe_plans(self) -> str:
        """Plan summaries for every compiled statement."""
        out = []
        for k, unit in enumerate(self.units):
            out.append(f"[{k}] {unit.stmt!r}\n{unit.plan.describe()}")
        return "\n\n".join(out)

    # ------------------------------------------------------------------
    def counters(self, **bindings) -> KernelCounters:
        """Estimated work counters for one invocation on these bindings.

        Accepts the same array bindings as :meth:`__call__` (scalars are
        ignored).  The estimate drives MFlop/s reporting: driven entries
        are the driver's stored nonzeros (or the dense iteration product),
        each costing the statement's operator count plus the accumulate.
        """
        arrays = {
            n: v for n, v in bindings.items() if isinstance(v, Format)
        }
        return self._counters_for(arrays)

    def _counters_for(self, arrays: Mapping[str, Format]) -> KernelCounters:
        extents: dict[str, int] = {}
        for rule in self._bound_vars:
            if rule.hi_symbol.isdigit():
                extents[rule.var] = int(rule.hi_symbol)
            elif rule.anchors and rule.anchors[0][0] in arrays:
                arr, axis = rule.anchors[0]
                extents[rule.var] = int(arrays[arr].shape[axis])
        total = KernelCounters()
        for unit, ops in zip(self.units, self._ops_per_entry):
            plan = unit.plan
            if plan.noop:
                continue
            if plan.driver is not None and plan.driver in arrays:
                entries = int(arrays[plan.driver].nnz)
            else:
                entries = 1
                for iv in plan.query.index_vars:
                    entries *= extents.get(iv.name, 1)
            # dense loops below a sparse driver multiply the entry count
            if plan.driver is not None:
                for step in plan.steps:
                    if step.kind == "dense":
                        entries *= extents.get(step.var, 1)
            nnz = sum(
                int(arrays[t.array].nnz)
                for t in plan.query.terms
                if t.array in arrays
                and not arrays[t.array].structurally_dense
            )
            target = unit.stmt.target.array
            rows = (
                int(arrays[target].shape[0]) if target in arrays else 0
            )
            total = total + KernelCounters(float(ops * entries), nnz, rows)
        return total

    # ------------------------------------------------------------------
    def bind(self, **bindings):
        """Pre-bind storage and scalars; returns a zero-argument callable.

        All validation, storage-dict construction and bound resolution
        happen once — the returned closure only invokes the generated
        function.  Use this in executor loops that run the same kernel on
        the same containers every iteration (the containers' *arrays* may
        be mutated freely between calls; rebind if they are replaced)."""
        ns = self._build_namespace(bindings)
        args = tuple(ns[k] for k in self.param_names)
        fn = self._fn
        counters = self._counters_for(
            {n: v for n, v in bindings.items() if isinstance(v, Format)}
        )

        def bound() -> None:
            fn(*args)
            if _metrics.metrics_enabled():
                _metrics.record("kernel.calls")
                _metrics.record("kernel.flops", counters.flops)
                _metrics.record("kernel.nnz_touched", counters.nnz_touched)
                _metrics.record("kernel.rows_visited", counters.rows_visited)

        return bound

    def __call__(self, **bindings) -> None:
        """Run the kernel.  Pass each array as a Format instance of the
        compiled class, plus any free scalars.  Outputs mutate in place."""
        ns = self._build_namespace(bindings)
        if _metrics.metrics_enabled() or _trace.tracing_enabled():
            self._instrumented_call(ns, bindings)
        else:
            self._fn(**{k: ns[k] for k in self.param_names})

    def _instrumented_call(self, ns: dict, bindings: Mapping) -> None:
        """Slow path: run under a span, count flops/nnz/rows, record."""
        arrays = {n: v for n, v in bindings.items() if isinstance(v, Format)}
        c = self._counters_for(arrays)
        self.last_counters = c
        with _trace.span(
            "kernel.call",
            flops=c.flops,
            nnz_touched=c.nnz_touched,
            rows_visited=c.rows_visited,
            arrays={n: type(v).__name__ for n, v in arrays.items()},
        ):
            self._fn(**{k: ns[k] for k in self.param_names})
        _metrics.record("kernel.calls")
        _metrics.record("kernel.flops", c.flops)
        _metrics.record("kernel.nnz_touched", c.nnz_touched)
        _metrics.record("kernel.rows_visited", c.rows_visited)

    def _build_namespace(self, bindings) -> dict:
        ns: dict[str, object] = {}
        scalars: dict[str, float] = {}
        arrays: dict[str, Format] = {}
        for name, value in bindings.items():
            if isinstance(value, Format):
                arrays[name] = value
            else:
                scalars[name] = value
        missing = set(self.format_classes) - set(arrays)
        if missing:
            raise CompileError(f"missing array bindings: {sorted(missing)}")
        for name, fmt in arrays.items():
            want = self.format_classes.get(name)
            if want is None:
                raise CompileError(f"unexpected array binding {name!r}")
            if type(fmt) is not want:
                raise CompileError(
                    f"array {name!r} was compiled for {want.__name__}, "
                    f"got {type(fmt).__name__}"
                )
            spec = fmt.spec()
            if spec != self.format_specs[name]:
                raise CompileError(
                    f"array {name!r} was compiled for format spec "
                    f"{self.format_specs[name]!r}, got {spec!r} (composite "
                    "formats must match structurally, not just by class)"
                )
            ns.update(fmt.storage(name))
        # resolve loop bounds
        for rule in self._bound_vars:
            if rule.hi_symbol.isdigit():
                hi = int(rule.hi_symbol)
            elif rule.hi_symbol in scalars:
                hi = int(scalars[rule.hi_symbol])
            elif rule.anchors:
                hi = int(arrays[rule.anchors[0][0]].shape[rule.anchors[0][1]])
                scalars[rule.hi_symbol] = hi
            else:
                raise CompileError(
                    f"cannot resolve loop bound {rule.hi_symbol!r}; pass it "
                    "as a keyword"
                )
            for arr, axis in rule.anchors:
                got = int(arrays[arr].shape[axis])
                if got != hi:
                    raise CompileError(
                        f"extent mismatch on loop var {rule.var!r}: bound is "
                        f"{hi} but {arr} axis {axis} has extent {got}"
                    )
        for s in self.scalar_names:
            if s not in scalars:
                raise CompileError(f"missing scalar binding {s!r}")
            ns[s] = scalars[s]
        return ns


def compile_kernel(
    source: str | Program,
    formats: Mapping[str, Format],
    vectorize: bool | None = None,
    force_driver: str | None = None,
    allow_merge: bool = True,
    cache: bool = True,
    backend: str | ExecutorBackend | None = None,
    verify: str = "error",
    extra_key: tuple = (),
) -> CompiledKernel:
    """Compile a dense DOANY loop nest against concrete storage formats.

    Parameters
    ----------
    source:
        Mini-language text or an already-parsed :class:`Program`.
    formats:
        Example instance per array name; the kernel accepts any instances
        of the same format spec at call time.
    backend:
        Executor backend name or instance — ``"vectorized"`` (default) or
        ``"interpreted"`` (see :mod:`repro.compiler.backends`).
    vectorize:
        Legacy boolean: ``False`` selects the interpreted backend,
        ``True``/``None`` the vectorized one.  ``backend`` wins when both
        are given (contradictions raise).
    force_driver:
        Pin the planner's primary driver (ablation hook).
    verify:
        Dependence analysis (:mod:`repro.analysis.depend`), run on every
        compile (cache hits included — the check is pure tuple algebra).
        Every loop is classified into the parallelism lattice
        DOALL ⊏ DOANY ⊏ REDUCTION(op) ⊏ SEQUENTIAL: DOALL/DOANY/REDUCTION
        verdicts compile (REDUCTION through privatized-accumulation
        lowerings), and a SEQUENTIAL verdict means the nest carries a real
        dependence — ``"error"`` (default) raises
        :class:`~repro.errors.VerificationError` with the witness access
        pair, ``"warn"`` downgrades findings to a Python warning,
        ``"off"`` skips the check.  The verdict is attached to the kernel
        as a :class:`~repro.analysis.depend.ParallelismCertificate` and
        independently re-validated (BER064) on every cache hit.
    extra_key:
        Extra cache-key components (hashable tuple).  Used by the
        auto-planner to join the structure-profile fingerprint to the
        key so equal-shape matrices with different structure never share
        an auto-planned kernel.
    """
    be = resolve_backend(backend, vectorize)
    if verify not in ("off", "warn", "error"):
        raise CompileError(
            f"verify must be 'off', 'warn' or 'error', got {verify!r}"
        )
    with _trace.span(
        "compiler.compile_kernel",
        backend=be.name,
        force_driver=force_driver,
        formats={n: type(f).__name__ for n, f in formats.items()},
    ) as sp:
        src_text = source if isinstance(source, str) else None
        if isinstance(source, str):
            program = parse(source)  # parser output is already normalized
        else:
            program = normalize_program(source)
        for name in program.arrays():
            if name not in formats:
                raise CompileError(f"no format given for array {name!r}")
        certificate = None
        if verify != "off":
            from repro.analysis.depend import classify_program

            cls = classify_program(program, source=src_text, gate=True)
            certificate = cls.certificate
            sp.set(verdict=cls.verdict.label())
            if not cls.report.ok:
                msg = (
                    f"loop nest is {cls.verdict.label()} — not DOANY-safe:\n"
                    + cls.report.render("error")
                )
                if verify == "error":
                    raise VerificationError(
                        msg, diagnostics=tuple(cls.report.errors())
                    )
                import warnings

                warnings.warn(msg, stacklevel=2)
        def build() -> CompiledKernel:
            _metrics.record("compiler.compilations")
            sparse = {
                name
                for name in program.arrays()
                if not formats[name].structurally_dense
            }
            units: list[KernelUnit] = []
            loop_vars = {l.var for l in program.loops}
            for stmt in program.body:
                for piece in split_statement(stmt):
                    if not piece.reduce:
                        free = loop_vars - set(piece.target.indices)
                        if free:
                            raise CompileError(
                                f"plain assignment {piece!r} has free loop vars "
                                f"{sorted(free)}; write the reduction with '+='"
                            )
                    query = extract_query(program, piece, sparse)
                    plan = plan_query(
                        query, dict(formats), force_driver=force_driver, allow_merge=allow_merge
                    )
                    units.append(KernelUnit(piece, plan))
            kern = CompiledKernel(program, units, formats, be)
            kern.certificate = certificate
            sp.set(
                units=len(units),
                drivers=[u.plan.driver for u in units],
                lowerings=list(kern.unit_backends),
                source_chars=len(kern.source),
            )
            return kern

        if cache:
            # atomic lookup-or-build: concurrent requests with the same
            # structural key compile exactly once (single-flight)
            key = kernel_cache_key(
                program, formats, be.name, force_driver, allow_merge, extra_key
            )
            kern, outcome = KERNEL_CACHE.get_or_compile(
                key, build, backend=be.name
            )
            sp.set(cache_hit=outcome != "compiled", cache_outcome=outcome)
            if outcome != "compiled" and verify != "off":
                # never trust a cached plan's parallelism claim: re-validate
                # the stored certificate against this request's program
                if kern.certificate is None:
                    kern.certificate = certificate
                else:
                    from repro.analysis.depend import check_certificate

                    chk = check_certificate(program, kern.certificate)
                    if not chk.ok:
                        raise VerificationError(
                            "cached plan's parallelism certificate failed "
                            "validation:\n" + chk.render("error"),
                            diagnostics=tuple(chk.errors()),
                        )
        else:
            sp.set(cache_hit=False)
            kern = build()
    return kern


def clear_kernel_cache() -> None:
    """Drop all cached kernels and cache statistics (test isolation hook)."""
    KERNEL_CACHE.clear()


def kernel_cache_stats() -> dict[str, int]:
    """Hit/miss/size statistics of the process-global kernel cache."""
    return KERNEL_CACHE.stats()
