"""Kernel compilation entry point and the CompiledKernel wrapper.

``compile_kernel(src, formats)`` runs the whole pipeline — parse,
normalize/split, sparsity analysis, query extraction, planning, code
generation — and returns a :class:`CompiledKernel` that can be invoked
repeatedly with *any* data stored in the same formats:

    >>> k = compile_kernel("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",
    ...                    formats={"A": a_crs, "X": x_dense, "Y": y_dense})
    >>> k(A=a_crs, X=x_dense, Y=y_dense)     # y += A @ x, in place

Compilation is cached on (source, format classes, options): rebinding new
data of the same formats costs only a dict merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.compiler import codegen
from repro.compiler.ast_nodes import Assign, Program
from repro.compiler.codegen import KernelUnit
from repro.compiler.parser import parse
from repro.compiler.query_extract import extract_query
from repro.compiler.scheduling import plan_query
from repro.compiler.sparsity import split_statement
from repro.errors import CompileError
from repro.formats.base import Format

__all__ = ["CompiledKernel", "compile_kernel", "clear_kernel_cache"]

_CACHE: dict[tuple, "CompiledKernel"] = {}


@dataclass
class _BoundVar:
    """Resolution rule for one loop variable's upper bound."""

    var: str
    hi_symbol: str  # numeral or scalar name
    anchors: list[tuple[str, int]]  # (array, axis) whose extent must equal hi


class CompiledKernel:
    """A compiled sparse kernel, bound per call to concrete storage."""

    def __init__(
        self,
        program: Program,
        units: list[KernelUnit],
        formats: Mapping[str, Format],
        vectorize: bool,
    ):
        self.program = program
        self.units = units
        self.format_classes = {name: type(f) for name, f in formats.items()}
        self.vectorize = vectorize
        self.scalar_names = sorted(program.scalar_names())
        self._bound_vars = self._bound_var_rules(formats)
        storage_keys: list[str] = []
        for name, fmt in sorted(formats.items()):
            keys = sorted(fmt.storage(name).keys())
            for k in keys:
                if k in storage_keys:
                    raise CompileError(f"storage key collision on {k!r}")
            storage_keys.extend(keys)
        self.param_names = storage_keys + [
            s for s in self.scalar_names if s not in storage_keys
        ]
        self.source = codegen.generate_source(
            program, units, dict(formats), self.param_names, vectorize=vectorize
        )
        ns: dict = {"np": np}
        exec(compile(self.source, "<bernoulli-kernel>", "exec"), ns)
        self._fn = ns["kernel"]

    # ------------------------------------------------------------------
    def _bound_var_rules(self, formats: Mapping[str, Format]) -> list[_BoundVar]:
        rules = []
        for spec in self.program.loops:
            if spec.lo != "0":
                raise CompileError(
                    f"loop over {spec.var!r} must start at 0 (got {spec.lo!r}); "
                    "sparse enumeration covers the full index range"
                )
            anchors = []
            for unit in self.units:
                for term in unit.plan.query.terms:
                    for axis, v in enumerate(term.indices):
                        if v == spec.var:
                            anchors.append((term.array, axis))
            rules.append(_BoundVar(spec.var, spec.hi, anchors))
        return rules

    def describe_plans(self) -> str:
        """Plan summaries for every compiled statement."""
        out = []
        for k, unit in enumerate(self.units):
            out.append(f"[{k}] {unit.stmt!r}\n{unit.plan.describe()}")
        return "\n\n".join(out)

    # ------------------------------------------------------------------
    def bind(self, **bindings):
        """Pre-bind storage and scalars; returns a zero-argument callable.

        All validation, storage-dict construction and bound resolution
        happen once — the returned closure only invokes the generated
        function.  Use this in executor loops that run the same kernel on
        the same containers every iteration (the containers' *arrays* may
        be mutated freely between calls; rebind if they are replaced)."""
        ns = self._build_namespace(bindings)
        args = tuple(ns[k] for k in self.param_names)
        fn = self._fn

        def bound() -> None:
            fn(*args)

        return bound

    def __call__(self, **bindings) -> None:
        """Run the kernel.  Pass each array as a Format instance of the
        compiled class, plus any free scalars.  Outputs mutate in place."""
        ns = self._build_namespace(bindings)
        self._fn(**{k: ns[k] for k in self.param_names})

    def _build_namespace(self, bindings) -> dict:
        ns: dict[str, object] = {}
        scalars: dict[str, float] = {}
        arrays: dict[str, Format] = {}
        for name, value in bindings.items():
            if isinstance(value, Format):
                arrays[name] = value
            else:
                scalars[name] = value
        missing = set(self.format_classes) - set(arrays)
        if missing:
            raise CompileError(f"missing array bindings: {sorted(missing)}")
        for name, fmt in arrays.items():
            want = self.format_classes.get(name)
            if want is None:
                raise CompileError(f"unexpected array binding {name!r}")
            if type(fmt) is not want:
                raise CompileError(
                    f"array {name!r} was compiled for {want.__name__}, "
                    f"got {type(fmt).__name__}"
                )
            ns.update(fmt.storage(name))
        # resolve loop bounds
        for rule in self._bound_vars:
            if rule.hi_symbol.isdigit():
                hi = int(rule.hi_symbol)
            elif rule.hi_symbol in scalars:
                hi = int(scalars[rule.hi_symbol])
            elif rule.anchors:
                hi = int(arrays[rule.anchors[0][0]].shape[rule.anchors[0][1]])
                scalars[rule.hi_symbol] = hi
            else:
                raise CompileError(
                    f"cannot resolve loop bound {rule.hi_symbol!r}; pass it "
                    "as a keyword"
                )
            for arr, axis in rule.anchors:
                got = int(arrays[arr].shape[axis])
                if got != hi:
                    raise CompileError(
                        f"extent mismatch on loop var {rule.var!r}: bound is "
                        f"{hi} but {arr} axis {axis} has extent {got}"
                    )
        for s in self.scalar_names:
            if s not in scalars:
                raise CompileError(f"missing scalar binding {s!r}")
            ns[s] = scalars[s]
        return ns


def compile_kernel(
    source: str | Program,
    formats: Mapping[str, Format],
    vectorize: bool = True,
    force_driver: str | None = None,
    allow_merge: bool = True,
    cache: bool = True,
) -> CompiledKernel:
    """Compile a dense DOANY loop nest against concrete storage formats.

    Parameters
    ----------
    source:
        Mini-language text or an already-parsed :class:`Program`.
    formats:
        Example instance per array name; the kernel accepts any instances
        of the same classes at call time.
    vectorize:
        Enable the numpy vectorizing backend (ablation hook).
    force_driver:
        Pin the planner's primary driver (ablation hook).
    """
    program = parse(source) if isinstance(source, str) else source
    for name in program.arrays():
        if name not in formats:
            raise CompileError(f"no format given for array {name!r}")
    key = None
    if cache:
        key = (
            repr(program),
            tuple(sorted((n, type(f).__qualname__) for n, f in formats.items())),
            vectorize,
            force_driver,
            allow_merge,
        )
        hit = _CACHE.get(key)
        if hit is not None:
            return hit

    sparse = {
        name
        for name in program.arrays()
        if not formats[name].structurally_dense
    }
    units: list[KernelUnit] = []
    loop_vars = {l.var for l in program.loops}
    for stmt in program.body:
        for piece in split_statement(stmt):
            if not piece.reduce:
                free = loop_vars - set(piece.target.indices)
                if free:
                    raise CompileError(
                        f"plain assignment {piece!r} has free loop vars "
                        f"{sorted(free)}; write the reduction with '+='"
                    )
            query = extract_query(program, piece, sparse)
            plan = plan_query(
                query, dict(formats), force_driver=force_driver, allow_merge=allow_merge
            )
            units.append(KernelUnit(piece, plan))
    kern = CompiledKernel(program, units, formats, vectorize)
    if cache and key is not None:
        _CACHE[key] = kern
    return kern


def clear_kernel_cache() -> None:
    """Drop all cached kernels (test isolation hook)."""
    _CACHE.clear()
