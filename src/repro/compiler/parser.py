"""Recursive-descent parser for the dense-loop mini-language.

Grammar (whitespace-insensitive; ``#`` starts a line comment)::

    program := loop
    loop    := 'for' ID 'in' bound ':' bound '{' (loop | stmts) '}'
    stmts   := stmt (';'? stmt)*
    stmt    := ref ('=' | '+=' | '*=') expr
    expr    := term (('+' | '-') term)*
    term    := factor (('*' | '/') factor)*
    factor  := NUM | ref | ID | '(' expr ')' | '-' factor
             | ('min' | 'max') '(' expr ',' expr ')'
    ref     := ID '[' ID (',' ID)* ']'
    bound   := NUM | ID

A bare ID in an expression is a free scalar; a bracketed ID is an array
reference.  The classic SpMV of the paper::

    for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }

Every :class:`~repro.errors.ParseError` raised here carries a
:class:`~repro.sourceloc.SourceSpan` and the source text, so the error
renders a caret snippet pointing at the offending tokens; the parser also
stamps spans onto :class:`Ref` and :class:`Assign` nodes for the analysis
passes (spans are excluded from node equality/hash, so cache keys are
unaffected).
"""

from __future__ import annotations

import re

from repro.compiler.ast_nodes import (
    Assign,
    BinOp,
    LoopSpec,
    MinMax,
    Neg,
    Num,
    Program,
    Ref,
    Scalar,
    normalize_statement,
)
from repro.errors import ParseError
from repro.observability.trace import span
from repro.sourceloc import SourceSpan

__all__ = ["parse", "tokenize", "tokenize_spans"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<op>\+=|\*=|[{}\[\](),:;=+\-*/])
    """,
    re.VERBOSE,
)


def tokenize_spans(src: str) -> list[tuple[str, SourceSpan]]:
    """Split source text into ``(token, span)`` pairs; raises on unknown
    characters (with a span pointing at the offender)."""
    out: list[tuple[str, SourceSpan]] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {src[pos]!r}",
                span=SourceSpan(pos, pos + 1),
                source=src,
            )
        start, pos = pos, m.end()
        if m.lastgroup != "ws" and m.group(m.lastgroup):
            out.append((m.group(m.lastgroup), SourceSpan(start, pos)))
    return out


def tokenize(src: str) -> list[str]:
    """Split source text into tokens; raises on unknown characters."""
    return [tok for tok, _ in tokenize_spans(src)]


class _Parser:
    def __init__(self, tokens: list[tuple[str, SourceSpan]], src: str = ""):
        self.toks = tokens
        self.src = src
        self.k = 0

    def peek(self) -> str | None:
        return self.toks[self.k][0] if self.k < len(self.toks) else None

    def span_here(self) -> SourceSpan:
        """Span of the upcoming token (or the end of input)."""
        if self.k < len(self.toks):
            return self.toks[self.k][1]
        end = len(self.src)
        return SourceSpan(end, end)

    def prev_span(self) -> SourceSpan:
        """Span of the most recently consumed token."""
        if 0 < self.k <= len(self.toks):
            return self.toks[self.k - 1][1]
        return SourceSpan(0, 0)

    def error(self, message: str, span: SourceSpan | None = None) -> ParseError:
        return ParseError(message, span=span or self.span_here(), source=self.src)

    def next(self) -> str:
        if self.k >= len(self.toks):
            raise self.error("unexpected end of input")
        t = self.toks[self.k][0]
        self.k += 1
        return t

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise self.error(f"expected {tok!r}, got {got!r}", self.prev_span())

    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        if self.peek() != "for":
            raise self.error("program must start with a 'for' loop")
        loops, body = self.parse_loop()
        if self.peek() is not None:
            raise self.error(f"trailing tokens starting at {self.peek()!r}")
        return Program(tuple(loops), tuple(body))

    def parse_loop(self) -> tuple[list[LoopSpec], list[Assign]]:
        self.expect("for")
        var = self.ident()
        self.expect("in")
        lo = self.bound()
        self.expect(":")
        hi = self.bound()
        self.expect("{")
        if self.peek() == "for":
            loops, body = self.parse_loop()
            loops = [LoopSpec(var, lo, hi)] + loops
        else:
            loops = [LoopSpec(var, lo, hi)]
            body = self.parse_stmts()
        self.expect("}")
        return loops, body

    def parse_stmts(self) -> list[Assign]:
        stmts = [self.parse_stmt()]
        while self.peek() not in ("}", None):
            if self.peek() == ";":
                self.next()
                if self.peek() == "}":
                    break
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> Assign:
        start = self.span_here()
        target = self.parse_ref()
        op = self.next()
        if op not in ("=", "+=", "*="):
            raise self.error(
                f"expected '=', '+=' or '*=', got {op!r}", self.prev_span()
            )
        expr = self.parse_expr()
        stmt_span = start.merge(self.prev_span())
        return normalize_statement(
            Assign(
                target,
                expr,
                reduce=(op != "="),
                op=op[0] if op != "=" else "+",
                span=stmt_span,
            )
        )

    def parse_expr(self):
        node = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.next()
            node = BinOp(op, node, self.parse_term())
        return node

    def parse_term(self):
        node = self.parse_factor()
        while self.peek() in ("*", "/"):
            op = self.next()
            node = BinOp(op, node, self.parse_factor())
        return node

    def parse_factor(self):
        t = self.peek()
        if t is None:
            raise self.error("unexpected end of expression")
        if t == "(":
            self.next()
            node = self.parse_expr()
            self.expect(")")
            return node
        if t == "-":
            self.next()
            return Neg(self.parse_factor())
        if re.fullmatch(r"\d+(\.\d+)?([eE][+-]?\d+)?", t):
            self.next()
            return Num(float(t))
        name = self.ident()
        if name in ("min", "max") and self.peek() == "(":
            self.next()
            left = self.parse_expr()
            self.expect(",")
            right = self.parse_expr()
            self.expect(")")
            return MinMax(name, left, right)
        if self.peek() == "[":
            return self.finish_ref(name, self.prev_span())
        return Scalar(name)

    def parse_ref(self) -> Ref:
        start = self.span_here()
        return self.finish_ref(self.ident(), start)

    def finish_ref(self, name: str, start: SourceSpan) -> Ref:
        self.expect("[")
        idxs = [self.ident()]
        while self.peek() == ",":
            self.next()
            idxs.append(self.ident())
        self.expect("]")
        return Ref(name, tuple(idxs), span=start.merge(self.prev_span()))

    def ident(self) -> str:
        t = self.next()
        if not re.fullmatch(r"[A-Za-z_]\w*", t) or t in ("for", "in"):
            raise self.error(f"expected identifier, got {t!r}", self.prev_span())
        return t

    def bound(self) -> str:
        t = self.next()
        if re.fullmatch(r"\d+", t) or re.fullmatch(r"[A-Za-z_]\w*", t):
            return t
        raise self.error(f"expected loop bound, got {t!r}", self.prev_span())


def parse(src: str) -> Program:
    """Parse mini-language source into a :class:`Program`."""
    with span("compiler.parse", chars=len(src)) as sp:
        try:
            tokens = tokenize_spans(src)
            program = _Parser(tokens, src).parse_program()
        except ParseError as e:
            # errors raised below the parser (node validation,
            # normalize_statement) carry spans but not the source text
            if e.source is None:
                e.source = src
            raise
        sp.set(
            tokens=len(tokens),
            loops=[l.var for l in program.loops],
            statements=len(program.body),
            arrays=sorted(program.arrays()),
        )
    return program
