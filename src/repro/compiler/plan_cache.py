"""Keyed plan/kernel cache fronting the compilation pipeline.

Planning, lowering and ``exec``-ing a kernel dominates the cost of
:func:`~repro.compiler.kernels.compile_kernel`; solvers re-issue the same
``compile()`` every iteration.  The cache key captures everything the
generated code depends on — nothing more, so rebinding fresh data of the
same structure is a pure hit:

* the **loop nest**: the canonical ``repr`` of the parsed
  :class:`~repro.compiler.ast_nodes.Program` (source text that parses to
  the same program shares kernels),
* the **format specs**: each array's :meth:`~repro.formats.base.Format.spec`
  — class identity plus any structure that changes codegen (wrapped
  formats, translated axes), never data,
* the **sparsity predicates** of the split statements (Bik–Wijshoff
  output; distinguishes the query structure the planner sees),
* the **backend** name and the planner options (forced driver, merge
  joins).

Hits and misses are counted on the cache object and mirrored into
``repro.observability.metrics`` (``compiler.cache_hits`` /
``compiler.cache_misses``, labeled by backend) so solver loops can verify
they stopped re-planning.

The cache is shared process-wide (the service layer hammers it from many
worker threads at once), so it is bounded and race-free by construction:

* **LRU eviction** at ``max_entries`` — a lookup hit moves the entry to
  the back of the order, an insert past the bound evicts the front
  (least recently used).  The default bound is far above anything the
  test and differential suites allocate, so single-process users never
  observe an eviction.
* **Single-flight compilation** — :meth:`PlanCache.get_or_compile` makes
  the lookup-then-insert sequence atomic: the first thread to miss a key
  becomes the *leader* and runs the build; every concurrent requester of
  the same key waits for the leader instead of compiling again, and is
  counted in ``compiler.cache_coalesced``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.compiler.ast_nodes import Program
from repro.compiler.sparsity import sparsity_predicate, split_statement
from repro.observability import metrics as _metrics

__all__ = ["PlanCache", "kernel_cache_key", "DEFAULT_MAX_ENTRIES"]

#: default PlanCache bound — high enough that eviction never triggers in
#: any single-process workload (the whole test suite compiles a few
#: hundred distinct kernels), low enough to bound a long-lived service
DEFAULT_MAX_ENTRIES = 4096


def kernel_cache_key(
    program: Program,
    formats,
    backend: str,
    force_driver: str | None = None,
    allow_merge: bool = True,
    extra_key: tuple = (),
) -> tuple:
    """The cache key for one compilation request (see module docstring).

    ``extra_key`` lets callers who compile on behalf of a *decision* —
    notably :mod:`repro.compiler.autoplan`, which keys on the structure
    profile's fingerprint — keep otherwise-identical requests apart (or,
    symmetrically, share them only when the decision inputs matched).
    """
    sparse = {
        name for name in program.arrays() if not formats[name].structurally_dense
    }
    predicates = tuple(
        repr(sparsity_predicate(piece.expr, sparse))
        for stmt in program.body
        for piece in split_statement(stmt)
    )
    specs = tuple(sorted((name, fmt.spec()) for name, fmt in formats.items()))
    return (
        repr(program),
        specs,
        predicates,
        backend,
        force_driver,
        allow_merge,
        tuple(extra_key),
    )


class _Inflight:
    """One in-progress compilation: followers park on ``event``."""

    __slots__ = ("event", "kernel", "error")

    def __init__(self):
        self.event = threading.Event()
        self.kernel = None
        self.error: BaseException | None = None


class PlanCache:
    """Thread-safe bounded-LRU kernel store with single-flight compiles.

    ``lookup`` records a hit or miss (and mirrors it into the metrics
    registry when enabled); ``insert`` stores a compiled kernel, evicting
    the least recently used entry past ``max_entries``.
    :meth:`get_or_compile` is the concurrency-safe front door: lookup and
    insert are one atomic step and concurrent misses on the same key run
    the build exactly once.  ``clear`` drops entries *and* statistics —
    the test-isolation hook.
    """

    def __init__(self, name: str = "compiler", max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.name = name
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._store: OrderedDict[tuple, object] = OrderedDict()
        self._inflight: dict[tuple, _Inflight] = {}
        self._generation = 0  # bumped by clear(); fences stale in-flight inserts
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    def lookup(self, key: tuple, backend: str = ""):
        """The cached kernel for ``key``, or None (recording hit/miss)."""
        with self._lock:
            kernel = self._store.get(key)
            if kernel is not None:
                self._store.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        labels = {"backend": backend} if backend else {}
        if kernel is not None:
            _metrics.record(f"{self.name}.cache_hits", **labels)
        else:
            _metrics.record(f"{self.name}.cache_misses", **labels)
        return kernel

    def insert(self, key: tuple, kernel) -> None:
        with self._lock:
            self._insert_locked(key, kernel)

    def _insert_locked(self, key: tuple, kernel) -> None:
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = kernel
            return
        while len(self._store) >= self.max_entries:
            self._store.popitem(last=False)  # least recently used
            self.evictions += 1
            _metrics.record(f"{self.name}.cache_evictions")
        self._store[key] = kernel

    def get_or_compile(self, key: tuple, build, backend: str = ""):
        """Atomic lookup-or-build with single-flight deduplication.

        ``build`` is a zero-argument callable producing the kernel; it
        runs outside the cache lock (compilation is the slow part), but at
        most once per key at a time: concurrent requesters of the same key
        wait for the leader's result instead of compiling a duplicate.

        Returns ``(kernel, outcome)`` with outcome one of

        * ``"hit"`` — served from the store,
        * ``"compiled"`` — this caller was the leader and ran ``build``,
        * ``"coalesced"`` — another thread was already compiling this key;
          we waited and shared its kernel (``compiler.cache_coalesced``).

        A ``build`` that raises propagates the same exception to the
        leader *and* every coalesced waiter; nothing is cached.
        """
        labels = {"backend": backend} if backend else {}
        with self._lock:
            kernel = self._store.get(key)
            if kernel is not None:
                self._store.move_to_end(key)
                self.hits += 1
                leader = False
                flight = None
            else:
                flight = self._inflight.get(key)
                leader = flight is None
                if leader:
                    flight = self._inflight[key] = _Inflight()
                    self.misses += 1
                    generation = self._generation
        if kernel is not None:
            _metrics.record(f"{self.name}.cache_hits", **labels)
            return kernel, "hit"
        if not leader:
            flight.event.wait()
            with self._lock:
                self.coalesced += 1
            _metrics.record(f"{self.name}.cache_coalesced", **labels)
            if flight.error is not None:
                raise flight.error
            return flight.kernel, "coalesced"
        _metrics.record(f"{self.name}.cache_misses", **labels)
        try:
            kernel = build()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.kernel = kernel
        with self._lock:
            if self._generation == generation:  # no clear() raced the build
                self._insert_locked(key, kernel)
            self._inflight.pop(key, None)
        flight.event.set()
        return kernel, "compiled"

    def clear(self) -> None:
        """Drop all entries and reset the statistics (in-flight builds
        complete and deliver to their waiters, but are not re-cached as
        winners over whatever repopulates the fresh cache)."""
        with self._lock:
            self._store.clear()
            self._generation += 1
            self.hits = 0
            self.misses = 0
            self.coalesced = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """``{"hits", "misses", "coalesced", "evictions", "size"}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "size": len(self._store),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)
