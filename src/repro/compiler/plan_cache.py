"""Keyed plan/kernel cache fronting the compilation pipeline.

Planning, lowering and ``exec``-ing a kernel dominates the cost of
:func:`~repro.compiler.kernels.compile_kernel`; solvers re-issue the same
``compile()`` every iteration.  The cache key captures everything the
generated code depends on — nothing more, so rebinding fresh data of the
same structure is a pure hit:

* the **loop nest**: the canonical ``repr`` of the parsed
  :class:`~repro.compiler.ast_nodes.Program` (source text that parses to
  the same program shares kernels),
* the **format specs**: each array's :meth:`~repro.formats.base.Format.spec`
  — class identity plus any structure that changes codegen (wrapped
  formats, translated axes), never data,
* the **sparsity predicates** of the split statements (Bik–Wijshoff
  output; distinguishes the query structure the planner sees),
* the **backend** name and the planner options (forced driver, merge
  joins).

Hits and misses are counted on the cache object and mirrored into
``repro.observability.metrics`` (``compiler.cache_hits`` /
``compiler.cache_misses``, labeled by backend) so solver loops can verify
they stopped re-planning.
"""

from __future__ import annotations

import threading

from repro.compiler.ast_nodes import Program
from repro.compiler.sparsity import sparsity_predicate, split_statement
from repro.observability import metrics as _metrics

__all__ = ["PlanCache", "kernel_cache_key"]


def kernel_cache_key(
    program: Program,
    formats,
    backend: str,
    force_driver: str | None = None,
    allow_merge: bool = True,
    extra_key: tuple = (),
) -> tuple:
    """The cache key for one compilation request (see module docstring).

    ``extra_key`` lets callers who compile on behalf of a *decision* —
    notably :mod:`repro.compiler.autoplan`, which keys on the structure
    profile's fingerprint — keep otherwise-identical requests apart (or,
    symmetrically, share them only when the decision inputs matched).
    """
    sparse = {
        name for name in program.arrays() if not formats[name].structurally_dense
    }
    predicates = tuple(
        repr(sparsity_predicate(piece.expr, sparse))
        for stmt in program.body
        for piece in split_statement(stmt)
    )
    specs = tuple(sorted((name, fmt.spec()) for name, fmt in formats.items()))
    return (
        repr(program),
        specs,
        predicates,
        backend,
        force_driver,
        allow_merge,
        tuple(extra_key),
    )


class PlanCache:
    """Thread-safe kernel store with hit/miss accounting.

    ``lookup`` records a hit or miss (and mirrors it into the metrics
    registry when enabled); ``insert`` stores a compiled kernel.  ``clear``
    drops entries *and* statistics — the test-isolation hook.
    """

    def __init__(self, name: str = "compiler"):
        self.name = name
        self._lock = threading.Lock()
        self._store: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple, backend: str = ""):
        """The cached kernel for ``key``, or None (recording hit/miss)."""
        with self._lock:
            kernel = self._store.get(key)
            if kernel is not None:
                self.hits += 1
            else:
                self.misses += 1
        labels = {"backend": backend} if backend else {}
        if kernel is not None:
            _metrics.record(f"{self.name}.cache_hits", **labels)
        else:
            _metrics.record(f"{self.name}.cache_misses", **labels)
        return kernel

    def insert(self, key: tuple, kernel) -> None:
        with self._lock:
            self._store[key] = kernel

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss statistics."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """``{"hits", "misses", "size"}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._store),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)
