"""Loop nest → relational query (paper Eq. 4).

Each (split, normalized) statement becomes one :class:`Query`:

    Q_sparse = σ_P ( I(i, j, ...) ⋈ A(i,j,a) ⋈ X(j,x) ⋈ Y(i,y) )

* the iteration relation I carries the loop bounds,
* every *distinct* array reference contributes one term (two references to
  the same array with the same index tuple share a term; the same array
  with a different index tuple — e.g. A[i,j] and A[j,i] — is two terms and
  is rejected for now, matching the DOANY kernels the paper targets),
* the sparsity predicate σ_P comes from :mod:`repro.compiler.sparsity`.
"""

from __future__ import annotations

from repro.compiler.ast_nodes import Assign, Program
from repro.compiler.sparsity import sparsity_predicate
from repro.errors import CompileError
from repro.observability.trace import span
from repro.relational.query import IndexVar, Query, RelTerm

__all__ = ["extract_query"]


def extract_query(program: Program, stmt: Assign, sparse: frozenset[str] | set[str]) -> Query:
    """Build the query for one statement of the program.

    ``sparse`` — names of arrays with sparse storage (everything else is
    structurally dense).
    """
    with span("compiler.extract_query", statement=repr(stmt)) as sp:
        index_vars = tuple(IndexVar(l.var, l.lo, l.hi) for l in program.loops)

        seen: dict[str, tuple[str, ...]] = {}
        order: list[str] = []
        for ref in (stmt.target,) + stmt.expr.refs():
            if ref.array in seen:
                if seen[ref.array] != ref.indices:
                    raise CompileError(
                        f"array {ref.array!r} referenced with two different index "
                        f"tuples ({seen[ref.array]} and {ref.indices}); "
                        "unsupported in this DOANY subset"
                    )
            else:
                seen[ref.array] = ref.indices
                order.append(ref.array)

        terms = tuple(RelTerm(a, seen[a], value=f"v_{a}") for a in order)
        predicate = sparsity_predicate(stmt.expr, sparse)
        query = Query(index_vars, terms, predicate, output=stmt.target.array)
        sp.set(
            terms=[repr(t) for t in terms],
            predicate=repr(predicate),
            sparse=sorted(sparse),
        )
    return query
