"""Interpreted reference executor: the semantic oracle for compiled kernels.

Runs a :class:`Program` naively over *dense* numpy views of the data —
every iteration of every loop, no sparsity exploitation.  Compiled kernels
must produce bit-identical structure (and numerically-close values, since
summation order may differ) to this executor.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.compiler.ast_nodes import Assign, BinOp, Expr, Neg, Num, Program, Ref, Scalar
from repro.errors import CompileError

__all__ = ["run_reference"]


def _eval(expr: Expr, env: dict[str, int], arrays: dict[str, np.ndarray], scalars: dict[str, float]) -> float:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Scalar):
        return float(scalars[expr.name])
    if isinstance(expr, Ref):
        idx = tuple(env[v] for v in expr.indices)
        return float(arrays[expr.array][idx])
    if isinstance(expr, Neg):
        return -_eval(expr.operand, env, arrays, scalars)
    if isinstance(expr, BinOp):
        l = _eval(expr.left, env, arrays, scalars)
        r = _eval(expr.right, env, arrays, scalars)
        if expr.op == "+":
            return l + r
        if expr.op == "-":
            return l - r
        if expr.op == "*":
            return l * r
        return l / r
    raise CompileError(f"cannot evaluate {expr!r}")


def run_reference(
    program: Program,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, float] | None = None,
) -> dict[str, np.ndarray]:
    """Execute the program densely; returns the (mutated) arrays dict.

    ``arrays`` maps array names to dense numpy arrays (copies are made, so
    inputs are untouched); ``scalars`` supplies free scalar values and any
    symbolic loop bounds not inferable from array extents.
    """
    scalars = dict(scalars or {})
    arrays = {k: np.array(v, dtype=np.float64) for k, v in arrays.items()}

    # resolve loop bounds from scalars or array extents
    extents: dict[str, int] = {}
    for spec in program.loops:
        if spec.hi.isdigit():
            extents[spec.var] = int(spec.hi)
        elif spec.hi in scalars:
            extents[spec.var] = int(scalars[spec.hi])
        else:
            found = None
            for stmt in program.body:
                for ref in (stmt.target,) + stmt.expr.refs():
                    for axis, v in enumerate(ref.indices):
                        if v == spec.var:
                            found = arrays[ref.array].shape[axis]
            if found is None:
                raise CompileError(f"cannot resolve bound {spec.hi!r}")
            extents[spec.var] = int(found)
        if spec.lo != "0":
            raise CompileError("reference executor requires 0-based loops")

    ranges = [range(extents[l.var]) for l in program.loops]
    names = [l.var for l in program.loops]
    for stmt in program.body:
        if not stmt.reduce:
            arrays[stmt.target.array][...] = 0.0
        for point in itertools.product(*ranges):
            env = dict(zip(names, point))
            idx = tuple(env[v] for v in stmt.target.indices)
            val = _eval(stmt.expr, env, arrays, scalars)
            if stmt.reduce:
                arrays[stmt.target.array][idx] += val
            else:
                arrays[stmt.target.array][idx] += val  # zero-filled above
    return arrays
