"""Interpreted reference executor: the semantic oracle for compiled kernels.

Runs a :class:`Program` naively over *dense* numpy views of the data —
every iteration of every loop, no sparsity exploitation.  Compiled kernels
must produce bit-identical structure (and numerically-close values, since
summation order may differ) to this executor.

Reduction semantics
-------------------
``+``-reductions accumulate over every iteration; skipping an iteration
whose contribution is zero changes nothing, so dense and guarded-sparse
execution agree.  The non-additive combine operators (``*``, ``min``,
``max``) have no such absorbing identity: multiplying by a stored zero or
taking ``min`` against an *implicit* zero is observable.  Compiled
kernels follow the paper's guarded-execution model — they combine over
the **stored entries** of the sparse operands only (the GraphBLAS monoid
convention).  To make the reference match, pass ``sparse={"A", ...}``:
iterations where any listed array reads exactly ``0.0`` are then skipped
for non-``+`` reductions.  With the default ``sparse=()`` the reference
runs fully dense (every iteration combines), which is the right oracle
for structurally dense data.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.compiler.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    MinMax,
    Neg,
    Num,
    Program,
    Ref,
    Scalar,
)
from repro.errors import CompileError

__all__ = ["run_reference"]


def _eval(expr: Expr, env: dict[str, int], arrays: dict[str, np.ndarray], scalars: dict[str, float]) -> float:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Scalar):
        return float(scalars[expr.name])
    if isinstance(expr, Ref):
        idx = tuple(env[v] for v in expr.indices)
        return float(arrays[expr.array][idx])
    if isinstance(expr, Neg):
        return -_eval(expr.operand, env, arrays, scalars)
    if isinstance(expr, MinMax):
        l = _eval(expr.left, env, arrays, scalars)
        r = _eval(expr.right, env, arrays, scalars)
        return min(l, r) if expr.fn == "min" else max(l, r)
    if isinstance(expr, BinOp):
        l = _eval(expr.left, env, arrays, scalars)
        r = _eval(expr.right, env, arrays, scalars)
        if expr.op == "+":
            return l + r
        if expr.op == "-":
            return l - r
        if expr.op == "*":
            return l * r
        return l / r
    raise CompileError(f"cannot evaluate {expr!r}")


def _combine(op: str, old: float, val: float) -> float:
    if op == "+":
        return old + val
    if op == "*":
        return old * val
    if op == "min":
        return min(old, val)
    return max(old, val)


def run_reference(
    program: Program,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, float] | None = None,
    sparse: frozenset[str] | set[str] | tuple = (),
) -> dict[str, np.ndarray]:
    """Execute the program densely; returns the (mutated) arrays dict.

    ``arrays`` maps array names to dense numpy arrays (copies are made, so
    inputs are untouched); ``scalars`` supplies free scalar values and any
    symbolic loop bounds not inferable from array extents.  ``sparse``
    names arrays treated as guarded sparse operands: for non-``+``
    reductions, iterations where a listed array reads ``0.0`` are skipped
    (see the module docstring).
    """
    scalars = dict(scalars or {})
    sparse = frozenset(sparse)
    arrays = {k: np.array(v, dtype=np.float64) for k, v in arrays.items()}

    # resolve loop bounds from scalars or array extents
    extents: dict[str, int] = {}
    for spec in program.loops:
        if spec.hi.isdigit():
            extents[spec.var] = int(spec.hi)
        elif spec.hi in scalars:
            extents[spec.var] = int(scalars[spec.hi])
        else:
            found = None
            for stmt in program.body:
                for ref in (stmt.target,) + stmt.expr.refs():
                    for axis, v in enumerate(ref.indices):
                        if v == spec.var:
                            found = arrays[ref.array].shape[axis]
            if found is None:
                raise CompileError(f"cannot resolve bound {spec.hi!r}")
            extents[spec.var] = int(found)
        if spec.lo != "0":
            raise CompileError("reference executor requires 0-based loops")

    ranges = [range(extents[l.var]) for l in program.loops]
    names = [l.var for l in program.loops]
    for stmt in program.body:
        if not stmt.reduce:
            arrays[stmt.target.array][...] = 0.0
        guarded = (
            [r for r in stmt.expr.refs() if r.array in sparse]
            if stmt.reduce and stmt.op != "+"
            else []
        )
        for point in itertools.product(*ranges):
            env = dict(zip(names, point))
            if any(
                arrays[r.array][tuple(env[v] for v in r.indices)] == 0.0
                for r in guarded
            ):
                continue
            idx = tuple(env[v] for v in stmt.target.indices)
            val = _eval(stmt.expr, env, arrays, scalars)
            if stmt.reduce:
                arrays[stmt.target.array][idx] = _combine(
                    stmt.op, float(arrays[stmt.target.array][idx]), val
                )
            else:
                arrays[stmt.target.array][idx] += val  # zero-filled above
    return arrays
