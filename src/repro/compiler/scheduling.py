"""The query optimizer: join ordering and join-implementation selection.

Given one conjunctive query (paper Eq. 4) plus the access-method
descriptions of the storage formats, the planner decides

* which sparse relation *drives* — enumerates its stored entries through
  its level hierarchy, fixing the loop structure (join order),
* how every other relation is accessed once its indices are bound:
  a *search* per level (the join implementation: O(1) dense lookup,
  binary search on a sorted level, ...), or a *secondary enumeration*
  when a level's axis is still unbound (chained drivers, e.g. the
  sparse-×-sparse product Z[i,k] += A[i,j]·B[j,k] where A drives (i,j)
  and B's compressed column level then enumerates k),
* where the leftover dense loops go (innermost).

Cost model: product of the enumerated levels' average fanouts times the
extents of the dense loops, plus the per-iteration search costs declared
by the access methods.  The cheapest candidate driver wins; callers can
force a driver (the join-order ablation bench does).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import PlanningError
from repro.formats.base import Format
from repro.observability.trace import span
from repro.relational.predicates import NZ, to_dnf
from repro.relational.query import Query, RelTerm

__all__ = ["Step", "TermAccess", "Plan", "plan_query"]


@dataclass(frozen=True)
class Step:
    """One step of the nested access structure.

    kind:
      * ``"enumerate"`` — open a loop over ``term``'s level ``level_index``
        (binding ``binds``),
      * ``"search"``    — locate a position in ``term``'s level
        ``level_index`` from already-bound indices (may skip),
      * ``"dense"``     — a plain dense loop over loop variable ``var``.
    """

    kind: str
    term: str | None = None
    level_index: int = 0
    binds: tuple[str, ...] = ()
    var: str | None = None
    #: loop vars this level also binds that are *already* bound outside:
    #: the enumeration must be filtered (emit `if new != old: continue`)
    guards: tuple[str, ...] = ()
    #: for kind=="merge": index of the sorted loop step this merge rides
    #: on (the cursor resets just before that loop opens)
    anchor: int = -1
    #: for kind=="merge": the key loop variable
    key: str | None = None

    def __repr__(self):
        if self.kind == "dense":
            return f"dense({self.var})"
        if self.kind == "merge":
            return f"merge({self.term}.L{self.level_index} on {self.key}@{self.anchor})"
        return f"{self.kind}({self.term}.L{self.level_index}->{','.join(self.binds) or '∅'})"


@dataclass(frozen=True)
class TermAccess:
    """How one relation participates: ``driver``, ``chained`` (some levels
    enumerate), ``searched``, or ``dense`` (O(1) loads, no steps)."""

    term: RelTerm
    mode: str


@dataclass(frozen=True)
class Plan:
    """An executable access plan for one conjunctive query."""

    query: Query
    driver: str | None
    steps: tuple[Step, ...]
    accesses: tuple[TermAccess, ...]
    cost: float
    noop: bool = False  # predicate is FALSE: nothing to execute
    #: every candidate driver the planner weighed, as
    #: ``(driver_name_or_None, cost_or_None, verdict)`` — verdict is
    #: ``"chosen"``, ``"rejected: ..."`` or ``"illegal: ..."``.  Feeds
    #: ``repro.observability.explain``.
    considered: tuple[tuple[str | None, float | None, str], ...] = ()

    def describe(self) -> str:
        """Human-readable plan summary (used in docs and tests)."""
        if self.noop:
            return "noop (predicate is FALSE)"
        parts = [f"driver={self.driver or 'dense-iteration'}"]
        parts.append("steps: " + " ; ".join(map(repr, self.steps)))
        parts.append(
            "access: "
            + ", ".join(f"{a.term.array}:{a.mode}" for a in self.accesses)
        )
        return "\n".join(parts)


def _axis_var_map(term: RelTerm) -> dict[int, str]:
    """Matrix/vector axis -> loop variable name for a term."""
    return {k: v for k, v in enumerate(term.indices)}


def _extent_hint(query: Query, formats: dict[str, Format], var: str) -> float:
    """Best-effort extent of a loop var (cost model only)."""
    for t in query.terms:
        if var in t.indices:
            fmt = formats[t.array]
            return float(fmt.shape[t.indices.index(var)])
    for iv in query.index_vars:
        if iv.name == var and iv.hi.lstrip("-").isdigit():
            return float(iv.hi)
    return 1000.0


def _merge_anchor(
    steps: list[Step], formats: dict[str, Format], key_var: str
) -> int | None:
    """Index of the step a merge on ``key_var`` can ride on, or None.

    Requirements: the key is bound by the *innermost* loop opened so far,
    and that loop enumerates its indices in sorted order (dense loops
    always do; format levels declare ``sorted_enum``)."""
    loop_steps = [
        k for k, s in enumerate(steps) if s.kind in ("enumerate", "dense")
    ]
    if not loop_steps:
        return None
    last = loop_steps[-1]
    s = steps[last]
    if key_var not in s.binds:
        return None
    if s.kind == "enumerate":
        level = formats[s.term].levels()[s.level_index]
        if not level.sorted_enum:
            return None
    return last


def _try_schedule(
    query: Query,
    formats: dict[str, Format],
    conjunct: tuple[NZ, ...],
    driver: RelTerm | None,
    allow_merge: bool = True,
) -> Plan | None:
    """Build a plan with the given primary driver, or None if illegal."""
    sparse_terms = [
        t for t in query.terms if not formats[t.array].structurally_dense
    ]
    conj_arrays = {lit.array for lit in conjunct}
    output = query.output

    # sparse term ordering: driver first, then remaining conjunct terms in
    # query order, then any other sparse terms (there should be none for
    # well-formed split statements)
    ordered: list[RelTerm] = []
    if driver is not None:
        ordered.append(driver)
    for t in sparse_terms:
        if t is not (driver) and t.array != output:
            ordered.append(t)
    # the output, if sparse, cannot be scheduled (outputs must be dense)
    if output is not None and not formats[output].structurally_dense:
        return None

    steps: list[Step] = []
    bound: set[str] = set()
    accesses: list[TermAccess] = []
    cost = 1.0
    iters = 1.0

    for pos, t in enumerate(ordered):
        fmt = formats[t.array]
        avm = _axis_var_map(t)
        enumerated = False
        searched = False
        for li, level in enumerate(fmt.levels()):
            level_vars = tuple(avm[a] for a in level.binds if a in avm)
            new_vars = tuple(v for v in level_vars if v not in bound)
            if not level.binds or new_vars:
                # must enumerate: binds an internal index or new loop vars;
                # vars already bound become filter guards
                if not level.enumerable:
                    return None
                guard_vars = tuple(v for v in level_vars if v in bound)
                steps.append(
                    Step(
                        "enumerate",
                        term=t.array,
                        level_index=li,
                        binds=new_vars,
                        guards=guard_vars,
                    )
                )
                bound.update(new_vars)
                iters *= max(1.0, level.avg_fanout())
                enumerated = True
            else:
                # all of this level's axes are bound: search, or ride the
                # innermost sorted loop with a two-pointer merge
                anchor = None
                if (
                    allow_merge
                    and level.mergeable
                    and len(fmt.levels()) == 1
                    and len(level_vars) == 1
                ):
                    anchor = _merge_anchor(steps, formats, level_vars[0])
                if anchor is not None:
                    steps.append(
                        Step(
                            "merge",
                            term=t.array,
                            level_index=li,
                            anchor=anchor,
                            key=level_vars[0],
                        )
                    )
                    cost += iters * 1.5
                    searched = True
                elif level.searchable:
                    steps.append(Step("search", term=t.array, level_index=li))
                    cost += iters * level.search_cost
                    searched = True
                else:
                    return None
        if pos == 0 and driver is not None:
            mode = "driver"
        elif enumerated:
            mode = "chained"
        else:
            mode = "searched"
        # a sparse term that is merely searched, but whose NZ literal is
        # not part of the predicate, would change semantics (its miss must
        # yield 0, not skip); split statements never produce this
        if mode == "searched" and t.array not in conj_arrays:
            raise PlanningError(
                f"sparse term {t.array!r} searched without an NZ guard; "
                "statement was not properly split"
            )
        accesses.append(TermAccess(t, mode))

    # leftover loop variables run as dense loops, innermost, program order
    for iv in query.index_vars:
        if iv.name not in bound:
            steps.append(Step("dense", var=iv.name, binds=(iv.name,)))
            bound.add(iv.name)
            iters *= _extent_hint(query, formats, iv.name)

    # dense terms are accessed in place
    for t in query.terms:
        if formats[t.array].structurally_dense:
            mode = "output" if t.array == output else "dense"
            accesses.append(TermAccess(t, mode))

    cost += iters
    return Plan(
        query=query,
        driver=driver.array if driver is not None else None,
        steps=tuple(steps),
        accesses=tuple(accesses),
        cost=cost,
    )


def plan_query(
    query: Query,
    formats: dict[str, Format],
    force_driver: str | None = None,
    allow_merge: bool = True,
) -> Plan:
    """Choose the cheapest legal plan for a conjunctive query.

    ``force_driver`` pins the primary driver; ``allow_merge`` toggles the
    merge-join implementation (ablation / testing hooks).  Raises
    :class:`PlanningError` when the predicate is disjunctive (the compiler
    splits statements first) or no legal plan exists.
    """
    for t in query.terms:
        if t.array not in formats:
            raise PlanningError(f"no format given for array {t.array!r}")
    dnf = to_dnf(query.predicate)
    if len(dnf) == 0:
        return Plan(query, None, (), (), cost=0.0, noop=True)
    if len(dnf) > 1:
        raise PlanningError(
            "disjunctive predicate reached the planner; statements must be "
            "split additively first (see repro.compiler.sparsity)"
        )
    conjunct = dnf[0]
    conj_arrays = {lit.array for lit in conjunct}

    candidates: list[RelTerm | None] = []
    if force_driver is not None:
        forced = [t for t in query.terms if t.array == force_driver]
        if not forced:
            raise PlanningError(f"forced driver {force_driver!r} is not a term")
        candidates = [forced[0]]
    elif conj_arrays:
        candidates = [
            t
            for t in query.terms
            if t.array in conj_arrays
            and not formats[t.array].structurally_dense
        ]
        if not candidates:
            # all guarded arrays are dense (e.g. TRUE predicate): pure
            # dense iteration
            candidates = [None]
    else:
        candidates = [None]

    best: Plan | None = None
    errors: list[str] = []
    considered: list[tuple[str | None, float | None, str]] = []
    with span(
        "compiler.plan_query",
        query=repr(query),
        candidates=[c.array if c is not None else None for c in candidates],
    ) as sp:
        for cand in candidates:
            name = cand.array if cand is not None else None
            try:
                plan = _try_schedule(query, formats, conjunct, cand, allow_merge)
            except PlanningError as e:
                errors.append(str(e))
                considered.append((name, None, f"illegal: {e}"))
                continue
            if plan is None:
                considered.append(
                    (
                        name,
                        None,
                        "illegal: no legal schedule (unsearchable level, "
                        "unenumerable level, or sparse output)",
                    )
                )
                continue
            considered.append((name, plan.cost, ""))
            if best is None or plan.cost < best.cost:
                best = plan
        if best is None:
            detail = ("; ".join(errors)) or "no candidate driver admits a legal schedule"
            raise PlanningError(f"cannot plan query {query!r}: {detail}")
        considered = [
            (
                name,
                cost,
                verdict
                or (
                    "chosen"
                    if name == best.driver and cost == best.cost
                    else f"rejected: cost {cost:g} vs best {best.cost:g}"
                ),
            )
            for name, cost, verdict in considered
        ]
        best = replace(best, considered=tuple(considered))
        sp.set(
            driver=best.driver,
            cost=best.cost,
            steps=[repr(s) for s in best.steps],
            access={a.term.array: a.mode for a in best.accesses},
        )
    return best
