"""Sparsity-predicate derivation — the Bik–Wijshoff algorithm (paper Eq. 3).

``sparsity_predicate(expr, sparse)`` computes the predicate under which the
expression can be nonzero, by bottom-up zero-propagation:

* a literal 0 is never nonzero; any other literal or free scalar may be,
* a reference to a sparse array is nonzero only where NZ(A(idx)) holds;
  dense arrays contribute TRUE,
* products/quotients are nonzero only when the left factor is *and*
  (for products) the right factor is — conjunction,
* sums/differences may be nonzero when either side is — disjunction.

``split_statement`` decomposes an additive reduction (``Y += e1 + e2``)
into one statement per additive term so each carries a purely conjunctive
predicate — the union query of the ∨-predicate becomes a sequence of
independent conjunctive queries.
"""

from __future__ import annotations

from repro.compiler.ast_nodes import Assign, BinOp, Expr, MinMax, Neg, Num, Ref, Scalar
from repro.errors import SparsityError
from repro.observability.trace import span
from repro.relational.predicates import NZ, Predicate, TruePred, FalsePred, conj, disj

__all__ = ["sparsity_predicate", "split_statement", "distribute"]


def sparsity_predicate(expr: Expr, sparse: frozenset[str] | set[str]) -> Predicate:
    """Predicate under which ``expr`` may be nonzero.

    ``sparse`` is the set of array names declared (or known, by storage
    format) to be sparse.  Raises :class:`SparsityError` for a sparse
    array in a denominator — dividing by an implicit zero has no
    consistent guarded semantics.
    """
    if isinstance(expr, Num):
        return FalsePred() if expr.value == 0 else TruePred()
    if isinstance(expr, Scalar):
        return TruePred()
    if isinstance(expr, Ref):
        if expr.array in sparse:
            return NZ(expr.array, expr.indices)
        return TruePred()
    if isinstance(expr, Neg):
        return sparsity_predicate(expr.operand, sparse)
    if isinstance(expr, MinMax):
        # min/max may be nonzero whenever either operand may be
        return disj(
            sparsity_predicate(expr.left, sparse),
            sparsity_predicate(expr.right, sparse),
        )
    if isinstance(expr, BinOp):
        if expr.op == "*":
            return conj(
                sparsity_predicate(expr.left, sparse),
                sparsity_predicate(expr.right, sparse),
            )
        if expr.op == "/":
            for r in expr.right.refs():
                if r.array in sparse:
                    raise SparsityError(
                        f"sparse array {r.array!r} used as a denominator; "
                        "division by an implicit zero is undefined"
                    )
            return sparsity_predicate(expr.left, sparse)
        # + and -
        return disj(
            sparsity_predicate(expr.left, sparse),
            sparsity_predicate(expr.right, sparse),
        )
    raise SparsityError(f"cannot analyze expression {expr!r}")


def distribute(expr: Expr) -> Expr:
    """Distribute products (and quotients) over sums: sum-of-products form.

    ``(A + B) * X`` becomes ``A*X + B*X`` so that, after additive
    splitting, every statement carries a purely *conjunctive* sparsity
    predicate (each disjunct of the ∨-predicate becomes its own
    statement).
    """
    if isinstance(expr, Neg):
        return Neg(distribute(expr.operand))
    if not isinstance(expr, BinOp):
        return expr
    left = distribute(expr.left)
    right = distribute(expr.right)
    if expr.op in ("+", "-"):
        return BinOp(expr.op, left, right)
    if expr.op == "*":
        lterms = _additive_terms(left, False)
        rterms = _additive_terms(right, False)
        if len(lterms) == 1 and len(rterms) == 1:
            return BinOp("*", left, right)
        prods = [BinOp("*", lt, rt) for lt in lterms for rt in rterms]
        return _sum_of(prods)
    # division: distribute the numerator only
    lterms = _additive_terms(left, False)
    if len(lterms) == 1:
        return BinOp("/", left, right)
    return _sum_of([BinOp("/", lt, right) for lt in lterms])


def _sum_of(terms: list[Expr]) -> Expr:
    out = terms[0]
    for t in terms[1:]:
        out = BinOp("+", out, t)
    return out


def _additive_terms(expr: Expr, negate: bool) -> list[Expr]:
    """Flatten top-level +/- into a list of (possibly negated) terms."""
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = _additive_terms(expr.left, negate)
        right = _additive_terms(expr.right, negate ^ (expr.op == "-"))
        return left + right
    if isinstance(expr, Neg):
        return _additive_terms(expr.operand, not negate)
    return [Neg(expr) if negate else expr]


def split_statement(stmt: Assign) -> list[Assign]:
    """Split an additive statement into one reduction per additive term.

    ``Y[i] += A[i,j]*X[j] + B[i,j]*Z[j]`` becomes two ``+=`` statements.
    A plain assignment splits into a zero-filling first statement (still
    ``reduce=False``, compiled as "zero output, then accumulate") followed
    by ``+=`` statements for the remaining terms.  Statements that are not
    top-level sums are returned unchanged.
    """
    with span("compiler.split_statement", statement=repr(stmt)) as sp:
        if stmt.reduce and stmt.op != "+":
            # a non-additive reduction combines whole RHS values; splitting
            # `Y *= a + b` into two statements would change its meaning
            sp.set(pieces=1)
            return [stmt]
        terms = _additive_terms(distribute(stmt.expr), negate=False)
        if len(terms) == 1:
            sp.set(pieces=1)
            return [stmt]
        out = [Assign(stmt.target, terms[0], reduce=stmt.reduce)]
        out.extend(Assign(stmt.target, t, reduce=True) for t in terms[1:])
        sp.set(pieces=len(out), split=[repr(s) for s in out])
    return out
