"""Region-specialized hybrid compilation (the SpComp specialization half).

:mod:`repro.compiler.autoplan` picks the best *single* format for a whole
matrix.  Hybrid matrices — a planted dense block over a banded bulk with a
few hub rows, say — have no single winner: every fixed format pays for the
structure it was not built for.  This module splits such a matrix into
*regions*, materializes each region in the format its structure wants, and
compiles one sub-kernel per region through the ordinary
:mod:`repro.compiler.backends` lowering:

1. :func:`partition_regions` peels, in a fixed pipeline order,

   * **dense windows** — rectangles of dense 8x8 tiles (seeded from the
     profile's diagonal-block partition, then a greedy maximal-rectangle
     sweep over the tile grid) → :class:`~repro.formats.denseblocks.DenseBlocksMatrix`,
   * **skew rows** — rows far above the remaining mean length (the
     memplus hubs) → CRS/JD/Coordinate, whichever the model prices lowest,
   * **band diagonals** — remaining diagonals that are dense runs →
     :class:`~repro.formats.diagonal.DiagonalMatrix`,
   * a **remainder** holding everything else.

   Every stored entry lands in *exactly one* region (the partition is a
   loss-free cover; ``reassemble()`` returns the input bit for bit).

2. :func:`plan_hybrid` prices the partition with the same calibrated
   α+β :class:`~repro.compiler.autoplan.CostModel` the single-format
   planner uses — each region pays its own per-call α, so the split only
   wins when regions are big enough to amortize the extra dispatches.

3. :meth:`HybridPlan.compile` compiles one sub-kernel per region and
   returns a :class:`HybridKernel` that runs them **sequentially in
   partition order**, accumulating into the shared output.  Floating-point
   addition is not associative, so the fixed order is the bitwise
   -reproducibility contract: same partition, same summation tree, same
   bits, run to run.  Each sub-kernel is cached under a region-aware
   ``extra_key`` (partition fingerprint + region index + format), so two
   structurally identical matrices share compiled sub-kernels while any
   partition change misses.

The decomposition requires every statement of the kernel source to be a
``+=`` reduction mentioning the hybrid array exactly once — then the full
sum is exactly the sum of per-region sums (each stored entry contributes
one term through exactly one region).  Anything else is rejected at
compile time rather than silently double-executed per region.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.compiler.autoplan import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    SEGMENT_WEIGHT,
    CostModel,
)
from repro.errors import CompileError, FormatError
from repro.formats.base import Format
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseVector
from repro.formats.denseblocks import DenseBlocksMatrix
from repro.formats.diagonal import DiagonalMatrix
from repro.formats.jdiag import JaggedDiagonalMatrix
from repro.observability import metrics as _metrics
from repro.observability.trace import span

__all__ = [
    "SpecializeConfig",
    "Region",
    "RegionPartition",
    "partition_regions",
    "HybridPlan",
    "HybridMatrix",
    "HybridKernel",
    "plan_hybrid",
]

#: formats a region may be materialized in, by region builder
_REGION_BUILDERS = {
    "DenseBlocks": lambda region: DenseBlocksMatrix.from_coo_windows(
        region.coo, region.windows
    ),
    "Diagonal": lambda region: DiagonalMatrix.from_coo(region.coo),
    "CRS": lambda region: CRSMatrix.from_coo(region.coo),
    "JDiag": lambda region: JaggedDiagonalMatrix.from_coo(region.coo),
    "Coordinate": lambda region: region.coo.canonicalized(),
}

#: candidate formats for residual regions (skew rows / remainder)
_RESIDUAL_FORMATS = ("CRS", "Coordinate", "JDiag")


@dataclass(frozen=True)
class SpecializeConfig:
    """Thresholds of the region-peeling pipeline (all tunable, defaults
    chosen so single-structure matrices do NOT split)."""

    #: tile edge of the dense-window detection grid
    tile: int = 8
    #: a tile is "dense" when it holds at least this fraction of its area
    tile_fill: float = 0.55
    #: a window must span at least this many tiles in each direction
    min_window_tiles: int = 2
    #: and hold at least this fraction of its area overall
    window_fill: float = 0.5
    #: a row is a "skew" hub at >= skew_factor * mean remaining row length
    skew_factor: float = 4.0
    #: ... and at least this many entries (tiny rows never qualify)
    skew_min: int = 8
    #: give up on the skew peel when more than this fraction of the
    #: nonempty rows qualify (then "skew" is just the matrix's shape)
    max_skew_row_frac: float = 0.25
    #: a diagonal is a "band run" at >= diag_fill occupancy of its run
    diag_fill: float = 0.6
    #: ... and at least this many entries
    diag_min: int = 8


@dataclass
class Region:
    """One region of a partition: a sub-matrix at full shape (global
    coordinates) plus the format chosen to materialize it."""

    kind: str  # "dense" | "skew" | "band" | "remainder"
    format_name: str
    coo: COOMatrix  # full-shape, global coordinates, canonical order
    detail: str = ""
    #: stored slots the materialization allocates (padding/fill included)
    stored: float = 0.0
    #: python-level segment-loop iterations per SpMV (windows, diagonals)
    segments: float = 0.0
    #: dense windows (r0, c0, h, w) — only for kind == "dense"
    windows: tuple = ()

    @property
    def nnz(self) -> int:
        return self.coo.nnz

    def build(self) -> Format:
        try:
            builder = _REGION_BUILDERS[self.format_name]
        except KeyError:
            raise FormatError(
                f"no region builder for format {self.format_name!r}"
            ) from None
        return builder(self)

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "format": self.format_name,
            "nnz": int(self.coo.nnz),
            "stored": float(self.stored),
            "segments": float(self.segments),
            "windows": [[int(v) for v in w] for w in self.windows],
        }


@dataclass
class RegionPartition:
    """An ordered, disjoint, loss-free cover of one matrix's entries.

    Region order is the pipeline order (dense, skew, band, remainder) and
    is the **summation order contract**: a hybrid SpMV accumulates region
    partials sequentially in exactly this order, so results are bitwise
    stable run to run.
    """

    shape: tuple[int, int]
    nnz: int
    regions: tuple[Region, ...]
    profile: "StructureProfile"  # noqa: F821 - forward ref, typing only

    def fingerprint(self) -> str:
        """Stable short hash for region-aware kernel-cache keys: the
        profile fingerprint plus every region's structural summary."""
        doc = {
            "shape": list(self.shape),
            "nnz": int(self.nnz),
            "profile": self.profile.fingerprint(),
            "regions": [r.summary() for r in self.regions],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def reassemble(self) -> COOMatrix:
        """The union of the regions as one COO matrix (must equal the
        partitioned input exactly — the loss-free-cover invariant)."""
        parts = [r.coo for r in self.regions if r.coo.nnz]
        if not parts:
            return COOMatrix(self.shape, [], [], [])
        return COOMatrix.from_entries(
            self.shape,
            np.concatenate([p.row for p in parts]),
            np.concatenate([p.col for p in parts]),
            np.concatenate([p.vals for p in parts]),
        )


# ----------------------------------------------------------------------
# the peeling pipeline
# ----------------------------------------------------------------------
def _subset(coo: COOMatrix, mask: np.ndarray) -> COOMatrix:
    """Entries of a canonical COO selected by mask (order preserved, so
    the subset is still canonical)."""
    return COOMatrix(coo.shape, coo.row[mask], coo.col[mask], coo.vals[mask])


def _find_dense_windows(coo, profile, cfg: SpecializeConfig):
    """Disjoint dense rectangles, as (r0, c0, h, w) in global coords."""
    n, m = coo.shape
    t = cfg.tile
    min_edge = cfg.min_window_tiles * t
    if n < min_edge or m < min_edge or coo.nnz == 0:
        return []
    th, tw = -(-n // t), -(-m // t)
    counts = np.zeros((th, tw), dtype=np.int64)
    np.add.at(counts, (coo.row // t, coo.col // t), 1)
    hsz = np.minimum(t, n - np.arange(th) * t)
    wsz = np.minimum(t, m - np.arange(tw) * t)
    area = hsz[:, None] * wsz[None, :]
    densetile = counts >= cfg.tile_fill * area
    used = np.zeros((th, tw), dtype=bool)
    accepted: list[tuple[int, int, int, int]] = []

    def overlaps(r0, c0, h, w) -> bool:
        for ar0, ac0, ah, aw in accepted:
            if r0 < ar0 + ah and ar0 < r0 + h and c0 < ac0 + aw and ac0 < c0 + w:
                return True
        return False

    def accept(r0, c0, h, w) -> bool:
        if h < min_edge or w < min_edge or overlaps(r0, c0, h, w):
            return False
        inside = int(
            np.count_nonzero(
                (coo.row >= r0)
                & (coo.row < r0 + h)
                & (coo.col >= c0)
                & (coo.col < c0 + w)
            )
        )
        if inside < cfg.window_fill * h * w:
            return False
        accepted.append((r0, c0, h, w))
        used[r0 // t : -(-(r0 + h) // t), c0 // t : -(-(c0 + w) // t)] = True
        return True

    # 1) seed with the profile's diagonal-block partition: a wide diagonal
    #    block that is actually dense is a window even if its interior
    #    tiles straddle the grid
    for b in range(max(0, len(profile.blockptr) - 1)):
        lo, hi = int(profile.blockptr[b]), int(profile.blockptr[b + 1])
        if hi - lo >= min_edge:
            accept(lo, lo, hi - lo, hi - lo)

    # 2) greedy maximal rectangles over the dense-tile grid.  Requiring
    #    >= 2x2 tiles keeps a narrow band out: its diagonal tiles may be
    #    individually dense but their off-diagonal neighbors never are.
    for ti in range(th):
        for tj in range(tw):
            if not densetile[ti, tj] or used[ti, tj]:
                continue
            j2 = tj
            while (
                j2 + 1 < tw and densetile[ti, j2 + 1] and not used[ti, j2 + 1]
            ):
                j2 += 1
            i2 = ti
            while i2 + 1 < th and bool(
                np.all(densetile[i2 + 1, tj : j2 + 1])
                and not np.any(used[i2 + 1, tj : j2 + 1])
            ):
                i2 += 1
            r0, c0 = ti * t, tj * t
            h = min(n, (i2 + 1) * t) - r0
            w = min(m, (j2 + 1) * t) - c0
            accept(r0, c0, h, w)
    return accepted


def _residual_region(
    kind: str, coo: COOMatrix, model: CostModel, detail: str
) -> Region:
    """A skew/remainder region in whichever residual format the model
    prices lowest (deterministic tie-break on the format name)."""
    counts = coo.row_counts()
    row_max = int(counts.max()) if len(counts) and coo.nnz else 0
    best = None
    for name in sorted(_RESIDUAL_FORMATS):
        segments = float(row_max) if name == "JDiag" else 0.0
        stored = float(coo.nnz)
        pred = model.alpha[name] + model.beta[name] * (
            stored + SEGMENT_WEIGHT * segments
        )
        if best is None or pred < best[0]:
            best = (pred, name, stored, segments)
    _, name, stored, segments = best
    return Region(
        kind=kind,
        format_name=name,
        coo=coo,
        detail=detail,
        stored=stored,
        segments=segments,
    )


def partition_regions(
    coo,
    profile=None,
    config: SpecializeConfig | None = None,
    model: CostModel | None = None,
) -> RegionPartition:
    """Split a matrix into an ordered loss-free cover of regions.

    The pipeline peels dense windows first (so a planted block is never
    shredded into diagonals), then skew rows, then band diagonals; the
    remainder takes whatever is left.  ``model`` only affects which
    *format* residual regions are labeled with, never which entries land
    where.
    """
    from repro.analysis.structure import analyze_structure

    if not isinstance(coo, COOMatrix):
        coo = coo.to_coo()
    coo = coo.canonicalized()
    if profile is None:
        profile = analyze_structure(coo)
    cfg = config or SpecializeConfig()
    model = model or CostModel()
    n, m = coo.shape
    nnz = coo.nnz
    regions: list[Region] = []
    with span("specialize.partition", shape=(n, m), nnz=nnz):
        if nnz == 0:
            regions.append(
                Region(
                    kind="remainder",
                    format_name="Coordinate",
                    coo=coo,
                    detail="empty matrix",
                )
            )
            return RegionPartition((n, m), nnz, tuple(regions), profile)

        claimed = np.zeros(nnz, dtype=bool)

        # --- dense windows -------------------------------------------
        windows = _find_dense_windows(coo, profile, cfg)
        if windows:
            mask = np.zeros(nnz, dtype=bool)
            for r0, c0, h, w in windows:
                mask |= (
                    (coo.row >= r0)
                    & (coo.row < r0 + h)
                    & (coo.col >= c0)
                    & (coo.col < c0 + w)
                )
            stored = float(sum(h * w for _, _, h, w in windows))
            regions.append(
                Region(
                    kind="dense",
                    format_name="DenseBlocks",
                    coo=_subset(coo, mask),
                    detail=(
                        f"{len(windows)} dense windows: "
                        + ", ".join(
                            f"{h}x{w}@({r0},{c0})" for r0, c0, h, w in windows
                        )
                    ),
                    stored=stored,
                    segments=float(len(windows)),
                    windows=tuple(windows),
                )
            )
            claimed |= mask

        # --- skew rows -----------------------------------------------
        rem = ~claimed
        if rem.any():
            rcounts = np.bincount(coo.row[rem], minlength=n)
            nonempty = rcounts[rcounts > 0]
            mean = float(nonempty.mean()) if len(nonempty) else 0.0
            thresh = max(cfg.skew_min, cfg.skew_factor * mean)
            hubs = np.flatnonzero(rcounts >= thresh)
            if len(hubs) and len(hubs) <= cfg.max_skew_row_frac * max(
                1, len(nonempty)
            ):
                mask = rem & np.isin(coo.row, hubs)
                regions.append(
                    _residual_region(
                        "skew",
                        _subset(coo, mask),
                        model,
                        detail=(
                            f"{len(hubs)} hub rows >= {thresh:.0f} entries "
                            f"(remaining mean {mean:.1f})"
                        ),
                    )
                )
                claimed |= mask

        # --- band diagonal runs --------------------------------------
        rem = ~claimed
        if rem.any():
            rrow, rcol = coo.row[rem], coo.col[rem]
            offsets, inverse = np.unique(rcol - rrow, return_inverse=True)
            counts = np.bincount(inverse)
            lo = np.full(len(offsets), np.iinfo(np.int64).max, dtype=np.int64)
            hi = np.full(len(offsets), np.iinfo(np.int64).min, dtype=np.int64)
            np.minimum.at(lo, inverse, rrow)
            np.maximum.at(hi, inverse, rrow)
            runlen = hi - lo + 1
            dense_run = (counts >= cfg.diag_min) & (
                counts >= cfg.diag_fill * runlen
            )
            if dense_run.any():
                mask = np.zeros(nnz, dtype=bool)
                mask[np.flatnonzero(rem)[dense_run[inverse]]] = True
                regions.append(
                    Region(
                        kind="band",
                        format_name="Diagonal",
                        coo=_subset(coo, mask),
                        detail=(
                            f"{int(dense_run.sum())} dense diagonal runs, "
                            f"offsets {offsets[dense_run].min()}..."
                            f"{offsets[dense_run].max()}"
                        ),
                        stored=float(runlen[dense_run].sum()),
                        segments=float(dense_run.sum()),
                    )
                )
                claimed |= mask

        # --- remainder ------------------------------------------------
        rem = ~claimed
        if rem.any() or not regions:
            regions.append(
                _residual_region(
                    "remainder",
                    _subset(coo, rem),
                    model,
                    detail=f"{int(rem.sum())} residual entries",
                )
            )
    return RegionPartition((n, m), nnz, tuple(regions), profile)


# ----------------------------------------------------------------------
# the composed plan / kernel
# ----------------------------------------------------------------------
class HybridMatrix(Format):
    """Container binding a partition to its materialized region formats.

    It is not itself enumerable — a :class:`HybridKernel` drives it
    region by region — but it carries shape/nnz/conversions and a
    :meth:`spec` so plan caches and namespace validation treat it like
    any other format.
    """

    format_name = "Hybrid"

    def __init__(self, partition: RegionPartition, region_formats):
        self.partition = partition
        self.region_formats = tuple(region_formats)
        if len(self.region_formats) != len(partition.regions):
            raise FormatError(
                "one materialized format per region required: "
                f"{len(self.region_formats)} formats for "
                f"{len(partition.regions)} regions"
            )

    @property
    def shape(self):
        return self.partition.shape

    @property
    def nnz(self) -> int:
        return int(self.partition.nnz)

    def to_coo(self) -> COOMatrix:
        return self.partition.reassemble()

    def levels(self):
        raise FormatError(
            "HybridMatrix has no single access hierarchy; compile through "
            "HybridPlan.compile, which drives each region's own format"
        )

    def storage(self, prefix: str):
        raise FormatError(
            "HybridMatrix storage is per-region; it is never bound into a "
            "single generated kernel"
        )

    def spec(self) -> tuple:
        return (
            type(self).__qualname__,
            self.partition.fingerprint(),
            tuple(f.spec() for f in self.region_formats),
        )


class HybridKernel:
    """Composed kernel: one compiled sub-kernel per region, run
    sequentially in partition order against a shared output.

    Call convention matches :class:`~repro.compiler.kernels.CompiledKernel`:
    ``kernel(**formats)`` where ``formats[name]`` is the
    :class:`HybridMatrix` and the other entries are shared across
    sub-kernels.  The fixed execution order *is* the determinism
    contract: float accumulation happens in the same tree every call.
    """

    def __init__(self, source, name, partition, kernels):
        self.source = source
        self.name = name
        self.partition = partition
        self.kernels = tuple(kernels)

    @property
    def region_backends(self) -> tuple:
        """Per-region lowering labels (mirrors ``unit_backends``)."""
        return tuple(k.unit_backends for k in self.kernels)

    def __call__(self, **formats):
        hybrid = formats.get(self.name)
        if not isinstance(hybrid, HybridMatrix):
            raise CompileError(
                f"HybridKernel expects {self.name}= a HybridMatrix, got "
                f"{type(hybrid).__name__}"
            )
        if hybrid.partition.fingerprint() != self.partition.fingerprint():
            raise CompileError(
                "HybridMatrix partition does not match the partition this "
                "kernel was compiled for"
            )
        for fmt, kernel in zip(hybrid.region_formats, self.kernels):
            call = dict(formats)
            call[self.name] = fmt
            kernel(**call)

    def bind(self, **formats):
        """Pre-bind every sub-kernel; returns a zero-argument callable.

        Mirrors :meth:`CompiledKernel.bind`: validation, storage-dict
        construction and bound resolution happen once per region, so a
        timing loop (or an iterative solver re-running the same SpMV)
        pays only the generated functions per call — the composed plan's
        per-call dispatch overhead drops to one closure call per region.
        The summation order is still the fixed partition order.
        """
        hybrid = formats.get(self.name)
        if not isinstance(hybrid, HybridMatrix):
            raise CompileError(
                f"HybridKernel expects {self.name}= a HybridMatrix, got "
                f"{type(hybrid).__name__}"
            )
        if hybrid.partition.fingerprint() != self.partition.fingerprint():
            raise CompileError(
                "HybridMatrix partition does not match the partition this "
                "kernel was compiled for"
            )
        calls = []
        for fmt, kernel in zip(hybrid.region_formats, self.kernels):
            call = dict(formats)
            call[self.name] = fmt
            calls.append(kernel.bind(**call))
        calls = tuple(calls)

        def bound() -> None:
            for c in calls:
                c()

        return bound

    def describe(self) -> str:
        lines = [
            f"hybrid kernel over {len(self.kernels)} regions "
            f"(partition {self.partition.fingerprint()}):"
        ]
        for region, kernel in zip(self.partition.regions, self.kernels):
            lines.append(
                f"  {region.kind:<9s} {region.format_name:<11s} "
                f"nnz={region.coo.nnz:<8d} via {'+'.join(kernel.unit_backends)}"
            )
        return "\n".join(lines)


def _validate_decomposable(source: str, name: str) -> None:
    """Reject sources whose execution would not decompose region-wise.

    Safe statements are ``+=`` reductions referencing the hybrid array
    exactly once: then the full sum over stored entries equals the sum of
    per-region sums, because the regions partition the entries.  A plain
    assignment would be overwritten per region and a statement not
    mentioning the array would run once *per region*.
    """
    from repro.compiler.parser import parse

    program = parse(source)
    for stmt in program.body:
        uses = sum(1 for r in stmt.expr.refs() if r.array == name)
        if not stmt.reduce or uses != 1 or stmt.target.array == name:
            raise CompileError(
                "hybrid decomposition requires every statement to be a "
                f"'+=' reduction reading {name!r} exactly once; statement "
                f"{stmt.target.array}[...] {'+=' if stmt.reduce else '='} ... "
                f"references it {uses} time(s)"
            )


@dataclass
class HybridPlan:
    """A priced region decomposition, ready to compile.

    ``feasible`` is a *structural* statement (at least two non-empty
    regions — otherwise the "hybrid" is just a single-format plan with
    extra steps); whether the split actually *wins* is the auto-planner's
    call, made by comparing ``predicted_seconds`` against the
    single-format candidates.
    """

    partition: RegionPartition
    predicted_seconds: float
    region_predictions: tuple[float, ...]
    model_source: str = "default"

    @property
    def profile(self):
        return self.partition.profile

    @property
    def feasible(self) -> bool:
        return sum(1 for r in self.partition.regions if r.coo.nnz > 0) >= 2

    @property
    def note(self) -> str:
        if self.feasible:
            kinds = "+".join(r.kind for r in self.partition.regions)
            return f"regions: {kinds}"
        return "structure is not separable (fewer than 2 non-empty regions)"

    @property
    def work_units(self) -> float:
        return float(
            sum(
                r.stored + SEGMENT_WEIGHT * r.segments
                for r in self.partition.regions
            )
        )

    # ------------------------------------------------------------------
    def build(self) -> HybridMatrix:
        """Materialize every region in its chosen format."""
        return HybridMatrix(
            self.partition, [r.build() for r in self.partition.regions]
        )

    def compile(
        self,
        source: str | None = None,
        name: str = "A",
        extra: Mapping[str, Format] | None = None,
        **kwargs,
    ):
        """Compile one sub-kernel per region; returns ``(kernel, formats)``.

        Mirrors :meth:`AutoPlan.compile`: ``source`` defaults to the SpMV
        nest, ``extra`` supplies the non-matrix arrays (defaulting to
        dense ``X``/``Y`` shaped to the matrix), and the returned
        ``formats`` map is directly usable as the call arguments.  Each
        sub-kernel joins the kernel cache under
        ``(extra_key..., "region", fingerprint, index, format)``.
        """
        from repro.compiler.kernels import compile_kernel

        if source is None:
            from repro.kernels.spmv import SPMV_SRC

            source = SPMV_SRC
        _validate_decomposable(source, name)
        hybrid = self.build()
        nrows, ncols = hybrid.shape
        formats: dict[str, Format] = {name: hybrid}
        if extra is not None:
            formats.update(extra)
        else:
            formats["X"] = DenseVector(np.zeros(ncols))
            formats["Y"] = DenseVector.zeros(nrows)
        base_key = kwargs.pop("extra_key", ("autoplan-hybrid",))
        backend = kwargs.pop("backend", "vectorized")
        fingerprint = self.partition.fingerprint()
        kernels = []
        with span(
            "autoplan.compile_hybrid",
            regions=len(self.partition.regions),
            fingerprint=fingerprint,
        ):
            for i, (region, fmt) in enumerate(
                zip(self.partition.regions, hybrid.region_formats)
            ):
                sub = dict(formats)
                sub[name] = fmt
                kernels.append(
                    compile_kernel(
                        source,
                        sub,
                        backend=backend,
                        extra_key=(
                            *base_key,
                            "region",
                            fingerprint,
                            i,
                            region.format_name,
                        ),
                        **kwargs,
                    )
                )
        _metrics.record(
            "runtime.autoplan.hybrid_compiles",
            regions=len(self.partition.regions),
        )
        return HybridKernel(source, name, self.partition, kernels), formats

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"hybrid plan: {len(self.partition.regions)} regions, predicted "
            f"{self.predicted_seconds * 1e6:.1f} µs/call "
            f"(cost model: {self.model_source}; partition "
            f"{self.partition.fingerprint()})"
        ]
        lines.append(
            "  summation order is the region order below "
            "(bitwise-reproducible)"
        )
        for region, pred in zip(self.partition.regions, self.region_predictions):
            lines.append(
                f"    {region.kind:<9s} {region.format_name:<11s} "
                f"nnz={region.coo.nnz:<8d} stored={region.stored:>10.0f} "
                f"segments={region.segments:>5.0f} "
                f"predicted={pred * 1e6:>8.1f} µs — {region.detail}"
            )
        return "\n".join(lines)

    def explain(self) -> str:
        """Alias for :meth:`describe` (mirrors ``explain(plan)``)."""
        return self.describe()

    def to_dict(self) -> dict:
        return {
            "partition_fingerprint": self.partition.fingerprint(),
            "predicted_seconds": self.predicted_seconds,
            "model_source": self.model_source,
            "feasible": self.feasible,
            "regions": [
                dict(r.summary(), predicted_seconds=p, detail=r.detail)
                for r, p in zip(self.partition.regions, self.region_predictions)
            ],
        }


def plan_hybrid(
    coo,
    profile=None,
    model: CostModel | None = None,
    config: SpecializeConfig | None = None,
) -> HybridPlan:
    """Partition ``coo`` and price the composed plan region by region.

    Every region is charged its own per-call α plus β times its stored
    slots and weighted segment loops — the same model the single-format
    planner uses, so the two predictions are directly comparable.
    """
    model = model or CostModel()
    partition = partition_regions(coo, profile=profile, config=config, model=model)
    preds = []
    for region in partition.regions:
        name = region.format_name
        alpha = model.alpha.get(name, DEFAULT_ALPHA.get(name, 2.0e-5))
        beta = model.beta.get(name, DEFAULT_BETA.get(name, 3.0e-9))
        preds.append(
            alpha + beta * (region.stored + SEGMENT_WEIGHT * region.segments)
        )
    return HybridPlan(
        partition=partition,
        predicted_seconds=float(sum(preds)),
        region_predictions=tuple(preds),
        model_source=model.source,
    )
