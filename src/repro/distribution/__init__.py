"""Distribution relations: global-to-local index translation (paper Sec. 3.1).

A distribution of a global index range [0, n) over P processors is the
relation IND(i, p, i') — a 1-1 mapping between global index i and the pair
(owner processor p, local offset i').  Different applications represent
this relation differently, and exploiting that representation's structure
is the paper's Table-3 point:

* :class:`~repro.distribution.block.BlockDistribution` — HPF BLOCK,
  ownership by closed-form formula (replicated knowledge),
* :class:`~repro.distribution.block.CyclicDistribution` /
  :class:`~repro.distribution.block.BlockCyclicDistribution` — HPF CYCLIC,
* :class:`~repro.distribution.generalized.GeneralizedBlockDistribution` —
  HPF-2 GEN_BLOCK: one contiguous block per processor, block sizes
  replicated everywhere,
* :class:`~repro.distribution.indirect.IndirectDistribution` — HPF-2
  INDIRECT: an arbitrary MAP array; with the map replicated, ownership is
  a local lookup,
* :class:`~repro.distribution.multiblock.MultiBlockDistribution` — the
  BlockSolve scheme: each processor owns a small number of contiguous row
  ranges (one per color); the range list is replicated,
* :class:`~repro.distribution.translation.DistributedTranslationTable` —
  the Chaos scheme: the MAP array itself is block-distributed, so
  ownership queries require communication (built and queried through the
  SPMD machine).
"""

from repro.distribution.base import Distribution
from repro.distribution.block import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
)
from repro.distribution.generalized import GeneralizedBlockDistribution
from repro.distribution.indirect import IndirectDistribution
from repro.distribution.multiblock import MultiBlockDistribution
from repro.distribution.translation import DistributedTranslationTable

__all__ = [
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "GeneralizedBlockDistribution",
    "IndirectDistribution",
    "MultiBlockDistribution",
    "DistributedTranslationTable",
]
