"""The Distribution protocol: the IND(i, p, i') relation.

Every distribution is a bijection between global indices [0, n) and
(processor, local offset) pairs, with local offsets contiguous from 0 on
each processor (paper Sec. 3.1: "a 1-1 mapping between the global index a
and the pair ⟨p, a'⟩").
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError
from repro.relational import Relation

__all__ = ["Distribution"]


class Distribution:
    """Abstract distribution of [0, nglobal) over nprocs processors.

    Subclasses implement the vectorized ``owner`` and ``local_index``;
    everything else derives.  ``replicated`` declares whether ownership
    can be computed locally on any processor without communication — the
    property whose exploitation Table 3 quantifies.
    """

    #: ownership computable without communication
    replicated: bool = True

    def __init__(self, nglobal: int, nprocs: int):
        if nglobal < 0 or nprocs < 1:
            raise DistributionError(
                f"bad distribution extent n={nglobal}, P={nprocs}"
            )
        self.nglobal = int(nglobal)
        self.nprocs = int(nprocs)

    # ------------------------------------------------------------------
    def owner(self, i) -> np.ndarray:
        """Owner processor of each global index (vectorized)."""
        raise NotImplementedError

    def local_index(self, i) -> np.ndarray:
        """Local offset of each global index on its owner (vectorized)."""
        raise NotImplementedError

    def owned_by(self, p: int) -> np.ndarray:
        """Global indices owned by processor p, in local-offset order."""
        idx = np.arange(self.nglobal)
        mine = idx[self.owner(idx) == p]
        order = np.argsort(self.local_index(mine), kind="stable")
        return mine[order]

    def local_count(self, p: int) -> int:
        return len(self.owned_by(p))

    def global_index(self, p: int, l) -> np.ndarray:
        """Inverse: global index of local offset(s) l on processor p."""
        return self.owned_by(p)[np.asarray(l)]

    def fingerprint(self) -> int:
        """CRC32 of the materialized IND relation: two distributions map
        indistinguishably iff their fingerprints match.

        This is the distribution coordinate of a
        :class:`~repro.runtime.schedule_cache.ScheduleCache` key: a gather
        schedule built against one distribution is reusable under any
        other with the same fingerprint.  Computed once (O(nglobal)) and
        cached on the instance — distributions are immutable by contract.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            import zlib

            i = np.arange(self.nglobal)
            crc = zlib.crc32(
                np.asarray([self.nglobal, self.nprocs], dtype=np.int64).tobytes()
            )
            crc = zlib.crc32(np.asarray(self.owner(i), dtype=np.int64).tobytes(), crc)
            crc = zlib.crc32(
                np.asarray(self.local_index(i), dtype=np.int64).tobytes(), crc
            )
            fp = self._fingerprint = crc
        return fp

    # ------------------------------------------------------------------
    def as_relation(self) -> Relation:
        """Materialize IND(i, p, ip) — the fragmentation-equation view."""
        i = np.arange(self.nglobal)
        return Relation(
            ["i", "p", "ip"],
            {"i": i, "p": self.owner(i), "ip": self.local_index(i)},
        )

    def validate(self) -> None:
        """Check the 1-1-and-onto property (paper: "can only be verified
        at run-time"); raises :class:`DistributionError` on violation."""
        i = np.arange(self.nglobal)
        p = self.owner(i)
        l = self.local_index(i)
        if len(i) and (p.min(initial=0) < 0 or p.max(initial=0) >= self.nprocs):
            raise DistributionError("owner out of range")
        for q in range(self.nprocs):
            locs = np.sort(l[p == q])
            if not np.array_equal(locs, np.arange(len(locs))):
                raise DistributionError(
                    f"local offsets on processor {q} are not contiguous from 0"
                )

    def __repr__(self):
        return f"{type(self).__name__}(n={self.nglobal}, P={self.nprocs})"
