"""Regular closed-form distributions: BLOCK, CYCLIC, BLOCK-CYCLIC.

For these, the IND relation is a formula — ownership is computed at
compile time / locally with no storage at all (paper Sec. 1: "In the case
of regular block/cyclic distributions the distribution relations can be
specified by a closed-form formula").
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import DistributionError

__all__ = ["BlockDistribution", "CyclicDistribution", "BlockCyclicDistribution"]


class BlockDistribution(Distribution):
    """HPF BLOCK: processor p owns the contiguous range
    [p·B, (p+1)·B) with B = ⌈n / P⌉ (the last block may be short)."""

    replicated = True

    def __init__(self, nglobal: int, nprocs: int):
        super().__init__(nglobal, nprocs)
        self.block = max(1, -(-self.nglobal // self.nprocs))  # ceil div

    def owner(self, i):
        return np.minimum(np.asarray(i) // self.block, self.nprocs - 1)

    def local_index(self, i):
        i = np.asarray(i)
        return i - self.owner(i) * self.block

    def owned_by(self, p: int) -> np.ndarray:
        lo = min(p * self.block, self.nglobal)
        hi = self.nglobal if p == self.nprocs - 1 else min((p + 1) * self.block, self.nglobal)
        return np.arange(lo, max(lo, hi))


class CyclicDistribution(Distribution):
    """HPF CYCLIC(1): global index i lives on processor i mod P."""

    replicated = True

    def owner(self, i):
        return np.asarray(i) % self.nprocs

    def local_index(self, i):
        return np.asarray(i) // self.nprocs

    def owned_by(self, p: int) -> np.ndarray:
        return np.arange(p, self.nglobal, self.nprocs)


class BlockCyclicDistribution(Distribution):
    """HPF CYCLIC(B): blocks of B indices dealt round-robin."""

    replicated = True

    def __init__(self, nglobal: int, nprocs: int, block: int):
        super().__init__(nglobal, nprocs)
        if block < 1:
            raise DistributionError(f"block size must be >= 1, got {block}")
        self.block = int(block)

    def owner(self, i):
        return (np.asarray(i) // self.block) % self.nprocs

    def local_index(self, i):
        i = np.asarray(i)
        round_ = i // (self.block * self.nprocs)
        return round_ * self.block + i % self.block
