"""HPF-2 GEN_BLOCK: one contiguous block per processor, arbitrary sizes.

"In generalized block distribution, each processor receives a single block
of contiguous rows.  It is suggested in the standard that each processor
should hold the block sizes for all processors — that is, the distribution
relation should be replicated.  This permits ownership to be determined
without communication." (paper Sec. 1)
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import DistributionError

__all__ = ["GeneralizedBlockDistribution"]


class GeneralizedBlockDistribution(Distribution):
    """One contiguous block per processor; the size vector is replicated."""

    replicated = True

    def __init__(self, block_sizes):
        sizes = np.asarray(block_sizes, dtype=np.int64)
        if len(sizes) < 1 or np.any(sizes < 0):
            raise DistributionError(f"bad block sizes {sizes}")
        super().__init__(int(sizes.sum()), len(sizes))
        self.sizes = sizes
        self.starts = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.starts[1:])

    @classmethod
    def balanced_for_weights(cls, weights, nprocs: int) -> "GeneralizedBlockDistribution":
        """Split [0, len(weights)) into ``nprocs`` contiguous blocks with
        roughly equal total weight (e.g. rows weighted by nonzero count —
        the load-balance use case the paper motivates GEN_BLOCK with)."""
        w = np.asarray(weights, dtype=np.float64)
        total = w.sum()
        csum = np.concatenate([[0.0], np.cumsum(w)])
        cuts = [0]
        for p in range(1, nprocs):
            target = total * p / nprocs
            cuts.append(int(np.searchsorted(csum, target, side="left")))
        cuts.append(len(w))
        cuts = np.maximum.accumulate(cuts)
        return cls(np.diff(cuts))

    def owner(self, i):
        return np.searchsorted(self.starts, np.asarray(i), side="right") - 1

    def local_index(self, i):
        i = np.asarray(i)
        return i - self.starts[self.owner(i)]

    def owned_by(self, p: int) -> np.ndarray:
        return np.arange(self.starts[p], self.starts[p + 1])

    def local_count(self, p: int) -> int:
        return int(self.sizes[p])
