"""HPF-2 INDIRECT distribution: an arbitrary MAP array.

"Indirect distributions are the most general: the user provides an array
MAP such that the element MAP(i) gives the processor to which the ith row
is assigned." (paper Sec. 1)

This class is the *replicated* variant: every processor holds the full MAP
array, so ownership is a local lookup.  The Chaos-style variant, where the
MAP array itself is distributed and ownership queries need communication,
is :class:`repro.distribution.translation.DistributedTranslationTable`.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import DistributionError

__all__ = ["IndirectDistribution"]


class IndirectDistribution(Distribution):
    """Arbitrary ownership via a replicated MAP array.

    Local offsets are assigned by global-index order within each owner
    (the convention Chaos uses when registering index lists).
    """

    replicated = True

    def __init__(self, map_array, nprocs: int | None = None):
        m = np.asarray(map_array, dtype=np.int64)
        P = int(m.max(initial=-1)) + 1 if nprocs is None else int(nprocs)
        super().__init__(len(m), max(P, 1))
        if len(m) and (m.min() < 0 or m.max() >= self.nprocs):
            raise DistributionError("MAP entries out of processor range")
        self.map = m
        # local offset = rank of i among the owner's indices
        self._local = np.zeros(len(m), dtype=np.int64)
        for p in range(self.nprocs):
            mine = np.flatnonzero(m == p)
            self._local[mine] = np.arange(len(mine))

    @classmethod
    def random(cls, nglobal: int, nprocs: int, rng=None) -> "IndirectDistribution":
        r = np.random.default_rng(rng)
        return cls(r.integers(0, nprocs, size=nglobal), nprocs)

    @classmethod
    def from_owned_lists(cls, lists: list) -> "IndirectDistribution":
        """Chaos-style registration: processor p supplies the list of
        global indices it owns."""
        n = sum(len(l) for l in lists)
        m = -np.ones(n, dtype=np.int64)
        for p, l in enumerate(lists):
            l = np.asarray(l, dtype=np.int64)
            if len(l) and (l.min() < 0 or l.max() >= n):
                raise DistributionError(
                    "index lists do not cover [0, n): index out of range"
                )
            if np.any(m[l] != -1):
                raise DistributionError("index owned by two processors")
            m[l] = p
        if np.any(m < 0):
            raise DistributionError("index lists do not cover [0, n)")
        return cls(m, len(lists))

    def owner(self, i):
        return self.map[np.asarray(i)]

    def local_index(self, i):
        return self._local[np.asarray(i)]

    def owned_by(self, p: int) -> np.ndarray:
        return np.flatnonzero(self.map == p)
