"""The BlockSolve distribution: several contiguous row ranges per processor.

"For parallel execution, each color is divided among the processors.
Therefore each processor receives several blocks of contiguous rows. ...
the distribution relation in the BlockSolve library is replicated, since
each processor usually receives only a small number of contiguous rows."
(paper Sec. 1 & 3.3)

More general than HPF-2 GEN_BLOCK (a processor owns one range per color),
yet far more structured than INDIRECT — the representation whose
exploitation produces the cheap inspectors of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import DistributionError

__all__ = ["MultiBlockDistribution"]


class MultiBlockDistribution(Distribution):
    """Ownership by a replicated list of (start, end, proc) ranges.

    Ranges must be disjoint, sorted, and cover [0, n).  Local offsets
    number each processor's ranges consecutively in range order.
    """

    replicated = True

    def __init__(self, ranges: list[tuple[int, int, int]]):
        if not ranges:
            raise DistributionError("empty range list")
        ranges = sorted((int(s), int(e), int(p)) for s, e, p in ranges)
        n = ranges[-1][1]
        P = max(p for _, _, p in ranges) + 1
        super().__init__(n, P)
        pos = 0
        for s, e, p in ranges:
            if s != pos or e < s:
                raise DistributionError(
                    f"ranges must tile [0, n) contiguously; gap at {pos}"
                )
            pos = e
        self.ranges = ranges
        self.starts = np.asarray([s for s, _, _ in ranges], dtype=np.int64)
        self.procs = np.asarray([p for _, _, p in ranges], dtype=np.int64)
        # local base offset of each range on its owner
        base = np.zeros(len(ranges), dtype=np.int64)
        counts = np.zeros(P, dtype=np.int64)
        for k, (s, e, p) in enumerate(ranges):
            base[k] = counts[p]
            counts[p] += e - s
        self.base = base
        self.counts = counts

    @classmethod
    def from_color_classes(
        cls, clique_ptr, colors, nprocs: int
    ) -> "MultiBlockDistribution":
        """The BlockSolve assignment: within each color, deal the cliques'
        rows out to the processors in contiguous runs."""
        clique_ptr = np.asarray(clique_ptr, dtype=np.int64)
        colors = np.asarray(colors, dtype=np.int64)
        ranges: list[tuple[int, int, int]] = []
        ncolors = int(colors.max(initial=-1)) + 1
        for c in range(ncolors):
            cliques = np.flatnonzero(colors == c)
            if len(cliques) == 0:
                continue
            # deal whole cliques (never split one): processor p gets a
            # contiguous run of this color's cliques
            k = len(cliques)
            chunk = -(-k // nprocs)
            for p in range(nprocs):
                a = min(p * chunk, k)
                b = min((p + 1) * chunk, k)
                if b > a:
                    s = int(clique_ptr[cliques[a]])
                    e = int(clique_ptr[cliques[b - 1] + 1])
                    ranges.append((s, e, p))
        return cls(ranges)

    def _range_of(self, i) -> np.ndarray:
        return np.searchsorted(self.starts, np.asarray(i), side="right") - 1

    def owner(self, i):
        return self.procs[self._range_of(i)]

    def local_index(self, i):
        i = np.asarray(i)
        k = self._range_of(i)
        return self.base[k] + (i - self.starts[k])

    def owned_by(self, p: int) -> np.ndarray:
        parts = [
            np.arange(s, e) for s, e, q in self.ranges if q == p
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def local_count(self, p: int) -> int:
        return int(self.counts[p])

    def ranges_of(self, p: int) -> list[tuple[int, int]]:
        """The contiguous global ranges owned by p (range order)."""
        return [(s, e) for s, e, q in self.ranges if q == p]
