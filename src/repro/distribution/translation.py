"""The Chaos-style distributed translation table (paper Sec. 1, Eq. 8–11).

With an INDIRECT distribution, the ownership map is itself too large to
replicate; Chaos block-distributes it: the owner p and local offset i' of
global index i are stored on processor q = ⌊i / B⌋ at slot h = i mod B
(paper Eq. 8–9).  Consequently

* *building* the table costs an all-to-all with volume proportional to the
  number of owned indices (every processor registers its index list), and
* *dereferencing* — finding the owner of a global index — costs another
  all-to-all round trip to the table's owners,

which is exactly the structural source of the order-of-magnitude inspector
gap of Table 3.

Both operations are SPMD generator subroutines: call them with
``yield from`` inside a rank program running on a
:class:`~repro.runtime.machine.Machine`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError

__all__ = ["DistributedTranslationTable", "build_translation_table", "dereference"]


class DistributedTranslationTable:
    """Rank-local fragment of the block-distributed ownership table.

    Slot h on processor q describes global index ``q·B + h``: its owner
    and its local offset on that owner.
    """

    replicated = False

    def __init__(self, rank: int, nglobal: int, nprocs: int, block: int, owners: np.ndarray, locals_: np.ndarray):
        self.rank = rank
        self.nglobal = int(nglobal)
        self.nprocs = int(nprocs)
        self.block = int(block)
        self.owners = owners
        self.locals = locals_

    def table_home(self, i) -> np.ndarray:
        """Which processor stores the table entry of global index i (Eq. 8)."""
        return np.minimum(np.asarray(i) // self.block, self.nprocs - 1)

    def slot(self, i) -> np.ndarray:
        """Slot of global index i within its home fragment (Eq. 9)."""
        i = np.asarray(i)
        return i - self.table_home(i) * self.block

    def lookup_local(self, i) -> tuple[np.ndarray, np.ndarray]:
        """Resolve indices whose table entries live on *this* rank."""
        h = self.slot(i)
        home = self.table_home(i)
        if np.any(home != self.rank):
            raise DistributionError("lookup_local called for non-local entries")
        return self.owners[h], self.locals[h]


def build_translation_table(rank: int, nglobal: int, nprocs: int, owned_global: np.ndarray):
    """SPMD subroutine: register this rank's owned index list and build the
    distributed table.  Communication volume: Θ(n / P) per rank — the
    "round of all-to-all communication with volume proportional to the
    problem size" the paper charges the Indirect inspectors with.

    Use as ``table = yield from build_translation_table(...)``.
    """
    owned_global = np.asarray(owned_global, dtype=np.int64)
    block = max(1, -(-nglobal // nprocs))
    home = np.minimum(owned_global // block, nprocs - 1)
    send: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for q in range(nprocs):
        mask = home == q
        if mask.any():
            # (global index, local offset on me) pairs registered with q
            send[q] = (owned_global[mask], np.flatnonzero(mask).astype(np.int64))
    recv = yield ("alltoallv", send)
    lo = rank * block
    hi = min(nglobal, (rank + 1) * block) if rank < nprocs - 1 else nglobal
    size = max(0, hi - lo)
    owners = -np.ones(size, dtype=np.int64)
    locals_ = -np.ones(size, dtype=np.int64)
    for src, (gidx, loff) in recv.items():
        owners[gidx - lo] = src
        locals_[gidx - lo] = loff
    if size and np.any(owners < 0):
        raise DistributionError("translation table has unregistered indices")
    return DistributedTranslationTable(rank, nglobal, nprocs, block, owners, locals_)


def dereference(table: DistributedTranslationTable, queries: np.ndarray):
    """SPMD subroutine: resolve (owner, local offset) of arbitrary global
    indices through the distributed table.  Two all-to-all steps: requests
    to the table homes, answers back.

    Use as ``owners, locals_ = yield from dereference(table, idx)``.
    """
    queries = np.asarray(queries, dtype=np.int64)
    home = table.table_home(queries)
    send: dict[int, np.ndarray] = {}
    positions: dict[int, np.ndarray] = {}
    for q in range(table.nprocs):
        mask = home == q
        if mask.any():
            send[q] = queries[mask]
            positions[q] = np.flatnonzero(mask)
    req = yield ("alltoallv", send)
    answers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for src, gidx in req.items():
        o, l = table.lookup_local(gidx)
        answers[src] = (o, l)
    resp = yield ("alltoallv", answers)
    owners = np.empty(len(queries), dtype=np.int64)
    locals_ = np.empty(len(queries), dtype=np.int64)
    for q, (o, l) in resp.items():
        owners[positions[q]] = o
        locals_[positions[q]] = l
    return owners, locals_
