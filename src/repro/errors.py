"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.  The
subclasses mirror the major subsystems: relational algebra, storage formats,
the compiler, distributions, and the SPMD runtime.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "FormatError",
    "CompileError",
    "ParseError",
    "PlanningError",
    "SparsityError",
    "DistributionError",
    "RuntimeMachineError",
    "InspectorError",
    "PhaseNotFoundError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation was used with fields that do not match its schema."""


class FormatError(ReproError):
    """A sparse storage format was constructed or accessed inconsistently."""


class CompileError(ReproError):
    """The compiler could not translate a program."""


class ParseError(CompileError):
    """The mini-language source text is malformed."""


class PlanningError(CompileError):
    """No legal join order / access plan exists for the query."""


class SparsityError(CompileError):
    """Sparsity-predicate derivation failed for an expression."""


class DistributionError(ReproError):
    """A distribution relation is inconsistent (not 1-1 and onto)."""


class RuntimeMachineError(ReproError):
    """Misuse of the simulated SPMD machine."""


class InspectorError(ReproError):
    """Inspector could not build a valid communication schedule."""


class PhaseNotFoundError(RuntimeMachineError, KeyError):
    """A named phase marker does not exist in the run's statistics.

    Subclasses :class:`KeyError` so ``stats.phase("nope")`` reads like a
    failed dict lookup, and :class:`RuntimeMachineError` so blanket library
    handlers still catch it.
    """

    def __str__(self) -> str:  # KeyError repr-quotes its argument
        return Exception.__str__(self)


class ObservabilityError(ReproError):
    """Tracing / metrics / explain misuse (bad trace file, wrong target)."""
