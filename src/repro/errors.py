"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.  The
subclasses mirror the major subsystems: relational algebra, storage formats,
the compiler, distributions, and the SPMD runtime.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "FormatError",
    "CompileError",
    "ParseError",
    "VerificationError",
    "PlanningError",
    "SparsityError",
    "DistributionError",
    "RuntimeMachineError",
    "InspectorError",
    "CommFailureError",
    "PhaseNotFoundError",
    "ObservabilityError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation was used with fields that do not match its schema."""


class FormatError(ReproError):
    """A sparse storage format was constructed or accessed inconsistently."""


class CompileError(ReproError):
    """The compiler could not translate a program."""


class ParseError(CompileError):
    """The mini-language source text is malformed.

    Carries an optional :class:`~repro.sourceloc.SourceSpan` plus the
    source text it points into; when both are present ``str(err)`` renders
    the same caret snippet the analysis diagnostics use, so parser errors
    and analyzer findings share one location format.
    """

    def __init__(self, message: str, span=None, source: str | None = None):
        super().__init__(message)
        self.message = message
        self.span = span
        self.source = source

    def __str__(self) -> str:
        if self.span is not None and self.source is not None:
            from repro.sourceloc import caret_snippet

            return f"{self.message} at {caret_snippet(self.source, self.span)}"
        return self.message


class VerificationError(CompileError):
    """A verification pass found error-severity diagnostics.

    Raised by ``compile_kernel(verify="error")`` when the DOANY dependence
    checker rejects the program.  ``diagnostics`` holds the offending
    :class:`~repro.analysis.diagnostics.Diagnostic` objects.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class PlanningError(CompileError):
    """No legal join order / access plan exists for the query."""


class SparsityError(CompileError):
    """Sparsity-predicate derivation failed for an expression."""


class DistributionError(ReproError):
    """A distribution relation is inconsistent (not 1-1 and onto)."""


class RuntimeMachineError(ReproError):
    """Misuse of the simulated SPMD machine."""


class InspectorError(ReproError):
    """Inspector could not build a valid communication schedule."""


class CommFailureError(RuntimeMachineError):
    """The hardened delivery protocol gave up on a communication.

    Raised when a message exhausts its retry budget under fault injection,
    or when schedule re-inspection cannot restore a corrupted schedule.
    The executors' contract is: converge to the exact fault-free result
    within the retry budget, or raise this — never silently return wrong
    data.  Carries enough context to replay the failure: the fault plan
    (``plan``) plus the failing edge (``src``, ``dst``, ``seq``,
    ``attempts``) when the failure is a single message.
    """

    def __init__(self, message: str, plan=None, src=-1, dst=-1, seq=-1, attempts=0):
        super().__init__(message)
        self.plan = plan
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts


class PhaseNotFoundError(RuntimeMachineError, KeyError):
    """A named phase marker does not exist in the run's statistics.

    Subclasses :class:`KeyError` so ``stats.phase("nope")`` reads like a
    failed dict lookup, and :class:`RuntimeMachineError` so blanket library
    handlers still catch it.
    """

    def __str__(self) -> str:  # KeyError repr-quotes its argument
        return Exception.__str__(self)


class ObservabilityError(ReproError):
    """Tracing / metrics / explain misuse (bad trace file, wrong target)."""


class ServiceError(ReproError):
    """Compile-and-solve service misuse (bad request kind, stopped service)."""
