"""Sparse (and dense) storage formats described via access methods.

Each format stores a matrix or vector and *describes itself to the compiler*
as a hierarchy of access levels (paper Sec. 2.1, the ``J -> (I, V)``
notation).  A level can *enumerate* the indices it binds and/or *search* for
a given index; it declares properties — sorted output, dense coverage,
search cost — that the planner uses to choose join orders and join
implementations.  The compilation machinery is independent of the concrete
set of formats: anything implementing :class:`~repro.formats.base.Format`
can be compiled against (see ``examples/custom_format.py``).

Exchange type: :class:`~repro.formats.coo.COOMatrix` (canonical coordinate
triples).  Every matrix format converts to/from COO; conversions are the
composition through COO.
"""

from repro.formats.base import AccessLevel, Format, Emitter
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseMatrix, DenseVector
from repro.formats.crs import CRSMatrix
from repro.formats.ccs import CCSMatrix
from repro.formats.cccs import CCCSMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.diagonal import DiagonalMatrix
from repro.formats.jdiag import JaggedDiagonalMatrix
from repro.formats.sparse_vector import SparseVector
from repro.formats.permutation import Permutation
from repro.formats.permuted import PermutedMatrix
from repro.formats.translated import TranslatedVector
from repro.formats.inode import InodeMatrix
from repro.formats.blockdiag import BlockDiagonalMatrix
from repro.formats.blocksolve import BlockSolveMatrix
from repro.formats.denseblocks import DenseBlocksMatrix

__all__ = [
    "AccessLevel",
    "Format",
    "Emitter",
    "COOMatrix",
    "DenseMatrix",
    "DenseVector",
    "CRSMatrix",
    "CCSMatrix",
    "CCCSMatrix",
    "ELLMatrix",
    "DiagonalMatrix",
    "JaggedDiagonalMatrix",
    "SparseVector",
    "Permutation",
    "PermutedMatrix",
    "TranslatedVector",
    "InodeMatrix",
    "BlockDiagonalMatrix",
    "BlockSolveMatrix",
    "DenseBlocksMatrix",
    "FORMAT_NAMES",
    "matrix_format_by_name",
]

#: The sequential matrix formats of Table 1, by their paper column names.
FORMAT_NAMES = {
    "Diagonal": DiagonalMatrix,
    "Coordinate": COOMatrix,
    "CRS": CRSMatrix,
    "CCS": CCSMatrix,
    "CCCS": CCCSMatrix,
    "ITPACK": ELLMatrix,
    "JDiag": JaggedDiagonalMatrix,
    "BS95": BlockSolveMatrix,
    "Dense": DenseMatrix,
}


def matrix_format_by_name(name: str):
    """Look up a matrix format class by its Table-1 column name."""
    try:
        return FORMAT_NAMES[name]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; known: {sorted(FORMAT_NAMES)}"
        ) from None
