"""The access-method protocol: how formats describe themselves to the compiler.

The paper (Sec. 2.1) specifies a storage format through a hierarchy of
index terms, e.g. ``J -> (I, V)`` for CCS: given a column index j one can
access the set of (row, value) pairs of that column.  For each term the
format provides methods to *enumerate* and to *search* the indices at that
level, plus properties (cost, sortedness) the planner uses for join ordering
and join implementation selection.

Here that contract is:

* :class:`Format` — a container (matrix or vector) exposing
  ``levels()``: an ordered tuple of :class:`AccessLevel`, outermost first.
  Walking the levels outer→inner enumerates exactly the stored
  (structurally nonzero) elements, binding matrix axes along the way.
* :class:`AccessLevel` — one level of the hierarchy.  ``binds`` says which
  matrix axes the level assigns when enumerated (possibly none for internal
  levels such as the diagonal-offset level of the Diagonal format, possibly
  two for Coordinate).  Codegen hooks emit Python source through an
  :class:`Emitter`.

Generated code refers to a format's storage through flat names prefixed by
the program-level array name (``A_rowptr``, ``A_vals``, ...); the
``storage(prefix)`` method supplies these bindings at kernel-bind time.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import FormatError

__all__ = ["Emitter", "AccessLevel", "Format"]


class Emitter:
    """Accumulates generated Python source with indentation management."""

    def __init__(self, indent: str = "    "):
        self._indent = indent
        self.lines: list[str] = []
        self.depth = 0
        self._counters: dict[str, int] = {}
        self._reserved: set[str] = set()

    def emit(self, line: str = "") -> None:
        """Append one line at the current indentation depth."""
        self.lines.append(self._indent * self.depth + line if line else "")

    def open(self, header: str) -> None:
        """Emit a block header (``for ...:`` / ``if ...:``) and indent."""
        self.emit(header)
        self.depth += 1

    def close(self, levels: int = 1) -> None:
        """Dedent by ``levels`` blocks."""
        if self.depth - levels < 0:
            raise FormatError("emitter block underflow")
        self.depth -= levels

    def reserve(self, names) -> None:
        """Mark ``names`` as taken so :meth:`fresh` never returns them.

        Callers pass the kernel's parameter names (storage keys and free
        scalars): a user array named e.g. ``_s0`` would otherwise collide
        with the first ``fresh("s")`` temporary and be clobbered by the
        generated code.
        """
        self._reserved.update(names)

    def fresh(self, base: str) -> str:
        """A new unique variable name derived from ``base``; skips any
        name previously handed out or reserved via :meth:`reserve`."""
        n = self._counters.get(base, 0)
        name = f"_{base}{n}"
        while name in self._reserved:
            n += 1
            name = f"_{base}{n}"
        self._counters[base] = n + 1
        self._reserved.add(name)
        return name

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class AccessLevel:
    """One level in a format's index hierarchy.

    Attributes
    ----------
    binds:
        Tuple of matrix axes (0 = row, 1 = column) whose index variables
        become bound when this level is enumerated.  Empty for internal
        levels (e.g. a diagonal-offset loop).
    enumerable:
        Enumeration is supported (``emit_enumerate``).  All levels here
        are enumerable; the flag exists for completeness of the property
        vocabulary.
    searchable:
        ``emit_search`` is supported: given already-bound axis expressions,
        locate the position (or skip the iteration).
    sorted_enum:
        Enumeration yields the bound axis indices in increasing order —
        the property that enables merge joins.
    dense:
        Enumeration covers every index in ``[0, extent)`` of the bound
        axis (no sparsity at this level).
    search_cost:
        Relative cost of one search (1.0 ≈ an O(1) array lookup).
    """

    binds: tuple[int, ...] = ()
    enumerable: bool = True
    searchable: bool = False
    sorted_enum: bool = True
    dense: bool = False
    search_cost: float = 1.0
    #: the level supports a two-pointer merge against a sorted enumeration
    #: of its axis (``emit_merge``) — the planner's third join implementation
    mergeable: bool = False

    def avg_fanout(self) -> float:
        """Expected number of entries enumerated under one parent position
        (used by the planner's cost model)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # codegen hooks.  ``axis_vars`` maps matrix axis -> loop variable name;
    # the hook must emit assignments for every axis in ``binds``.
    # ``parent_pos`` is the position expression from the enclosing level
    # (``None`` at the outermost level).  Returns this level's position
    # expression, to be passed down / used for the value load.
    # ------------------------------------------------------------------
    def emit_enumerate(
        self, g: Emitter, prefix: str, parent_pos: str | None, axis_vars: Mapping[int, str]
    ) -> str:
        """Open loop(s) enumerating this level; bind axis variables."""
        raise NotImplementedError

    def emit_search(
        self, g: Emitter, prefix: str, parent_pos: str | None, axis_exprs: Mapping[int, str]
    ) -> str:
        """Emit code locating the position for bound axis values.

        On a miss the emitted code must ``continue`` (the planner only
        places searches inside an enclosing loop).  Returns the position
        expression on a hit.
        """
        raise FormatError(f"{type(self).__name__} is not searchable")

    def emit_merge(
        self, g: Emitter, prefix: str, parent_pos: str | None, key_expr: str, cursor: str
    ) -> str:
        """Two-pointer merge step: advance ``cursor`` to the first stored
        index >= ``key_expr``; ``break`` when exhausted (the enclosing
        enumeration is sorted, so nothing further can match) and
        ``continue`` on a mismatch.  Returns the position expression.
        The caller initializes ``cursor`` to 0 before the sorted loop.
        """
        raise FormatError(f"{type(self).__name__} does not support merge joins")

    # Vectorization hook: if the level can expose the entries under one
    # parent position as numpy slices, return a dict
    #   {"slice": (start_expr, stop_expr),
    #    "index": {axis: ("gather", template) | ("affine", start_expr)}}
    # where a "gather" template contains {s}/{e} placeholders for the slice
    # bounds and evaluates to the index array, and "affine" means the axis
    # index runs ``start, start+1, ...`` over the slice (contiguous access).
    # Return None if the level cannot be vectorized.
    def vector_view(self, prefix: str, parent_pos: str | None):
        return None


class Format:
    """Base class for all storage formats (matrices and vectors).

    Concrete formats must provide:

    * ``shape`` — tuple of extents (len 2 for matrices, 1 for vectors),
    * ``nnz`` — number of stored entries,
    * ``levels()`` — the access hierarchy (outermost first),
    * ``storage(prefix)`` — dict of numpy arrays / helper objects to bind
      into the generated kernel's namespace,
    * ``emit_load(g, prefix, axis_vars, pos)`` — expression for the stored
      value at ``pos`` (with all axes bound),
    * ``from_coo(coo)`` / ``to_coo()`` — conversion through the exchange
      format.

    Writable formats (dense) also provide ``emit_store`` /
    ``emit_accumulate``.
    """

    #: subclasses override
    writable: bool = False
    #: True for formats that store every element (NZ(A(...)) ≡ TRUE);
    #: the sparsity analysis drops NZ literals on structurally dense arrays.
    structurally_dense: bool = False
    #: human-readable format name (defaults to the class name)
    format_name: str = ""

    @property
    def shape(self) -> tuple[int, ...]:
        raise NotImplementedError

    @property
    def nnz(self) -> int:
        raise NotImplementedError

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def levels(self) -> tuple[AccessLevel, ...]:
        raise NotImplementedError

    def storage(self, prefix: str) -> dict[str, object]:
        raise NotImplementedError

    def emit_load(self, g: Emitter, prefix: str, axis_vars: Mapping[int, str], pos: str) -> str:
        raise NotImplementedError

    def emit_load_vec(self, prefix: str, axis_exprs: Sequence[str]) -> str:
        """Vectorized load: index each axis by an expression that may be a
        slice or an index array.  Only meaningful for structurally dense
        formats (the vectorizing backends gather them)."""
        return f"{prefix}_vals[{', '.join(axis_exprs)}]"

    def emit_store(self, g: Emitter, prefix: str, axis_vars: Mapping[int, str], pos: str, value_expr: str) -> None:
        raise FormatError(f"{type(self).__name__} is not writable")

    def emit_accumulate(self, g: Emitter, prefix: str, axis_vars: Mapping[int, str], pos: str, value_expr: str, op: str = "+") -> None:
        """Combine ``value_expr`` into the target element with ``op``
        (one of :data:`~repro.compiler.ast_nodes.REDUCTION_OPS`)."""
        raise FormatError(f"{type(self).__name__} is not writable")

    def segmented_view(self, prefix: str):
        """Whole-matrix vectorization view for two-level formats, or None.

        Enables the code generator's *segmented-reduction* pass (the
        numpy analogue of what a vectorizing C backend does for
        pointer-and-index formats): the entire loop nest collapses into a
        flat product over all stored entries followed by one segmented
        reduction.  Two kinds:

        * ``{"kind": "segments", "segments": ptr_expr, "index": {axis:
          gather_expr}, "vals": vals_expr, "outer_axis": axis}`` — entries
          of outer index q live in ``vals[ptr[q]:ptr[q+1]]``
          (CRS rows); reduction via ``np.add.reduceat``,
        * ``{"kind": "dense2d", ...}`` — entries in padded 2-D arrays
          (ITPACK), zero padding; reduction via ``.sum(axis=1)``.
        """
        return None

    def inner_block_view(self, prefix: str, parent_pos: str | None):
        """Dense-block vectorization view for the last TWO levels, or None.

        For formats whose final (row, column) levels form a small dense
        block under one outer position (i-nodes, clique blocks), the code
        generator can collapse both loops into one GEMV per block.
        Contract::

            {"rows": ("gather", expr) | ("affine", start_expr),
             "cols": ("gather", expr) | ("affine", start_expr),
             "nrows": expr, "ncols": expr,
             "vals": flat_expr,          # row-major, nrows*ncols long
             "unique_rows": bool}        # rows never repeat in a block
        """
        return None

    def inner_vector_view(self, prefix: str, parent_pos: str | None):
        """Vectorization view of the innermost level, or None.

        Returns the innermost level's ``vector_view`` augmented with a
        ``"vals"`` template ({s}/{e} placeholders) that evaluates to the
        value array over the slice.  Formats whose values do not live in a
        flat ``{prefix}_vals`` array override this.
        """
        view = self.levels()[-1].vector_view(prefix, parent_pos)
        if view is None:
            return None
        view.setdefault("vals", f"{prefix}_vals[{{s}}:{{e}}]")
        return view

    # ------------------------------------------------------------------
    # conversions / utilities
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo) -> "Format":
        raise NotImplementedError

    def to_coo(self):
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        """Densify (for tests and small examples)."""
        return self.to_coo().to_dense()

    @property
    def name(self) -> str:
        return self.format_name or type(self).__name__

    def spec(self) -> tuple:
        """Hashable structural description of this container for plan/kernel
        cache keys: everything about the format that affects the *generated
        code* (class identity, wrapped formats, which axes are translated)
        but nothing about the data values or extents.  Two instances with
        equal specs must be interchangeable at kernel-bind time — the same
        compiled source runs correctly against either.  Composite formats
        (wrappers around another :class:`Format`) must include the wrapped
        format's spec; the default covers self-contained formats.
        """
        return (type(self).__qualname__,)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz})"


def check_shape(shape: Sequence[int], ndim: int) -> tuple[int, ...]:
    """Validate and normalize a shape tuple."""
    t = tuple(int(s) for s in shape)
    if len(t) != ndim:
        raise FormatError(f"expected {ndim}-D shape, got {t}")
    if any(s < 0 for s in t):
        raise FormatError(f"negative extent in shape {t}")
    return t
