"""Block-diagonal storage: the dense clique blocks of BlockSolve
(the black triangles along the diagonal in paper Fig. 2(b)).

The index range [0, n) is partitioned into contiguous blocks; block b
covers rows *and* columns ``blockptr[b] : blockptr[b+1]`` and stores a full
dense square block.  After BlockSolve's color/clique reordering every
clique's rows are contiguous, so its diagonal coupling is exactly such a
block.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix

__all__ = ["BlockDiagonalMatrix"]


class _BlockOuterLevel(AccessLevel):
    binds = ()
    searchable = False
    dense = False

    def __init__(self, owner: "BlockDiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(max(1, self._owner.nblocks))

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        b = g.fresh("b")
        g.open(f"for {b} in range({prefix}_nblocks):")
        return b


class _BlockRowLevel(AccessLevel):
    """Rows of one dense diagonal block.  Returns the compound position
    ``"base:lo:w"`` interpreted only by the sibling column level."""

    binds = (0,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "BlockDiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        b = max(1, self._owner.nblocks)
        return max(1.0, self._owner.shape[0] / b)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        b = parent_pos
        lo, w = g.fresh("lo"), g.fresh("w")
        g.emit(f"{lo} = {prefix}_blockptr[{b}]")
        g.emit(f"{w} = {prefix}_blockptr[{b} + 1] - {lo}")
        rr = g.fresh("rr")
        g.open(f"for {rr} in range({w}):")
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {lo} + {rr}")
        base = g.fresh("base")
        g.emit(f"{base} = {prefix}_voff[{b}] + {rr} * {w}")
        return f"{base}:{lo}:{w}"


class _BlockColLevel(AccessLevel):
    """Columns of one dense block row: the contiguous range [lo, lo+w)."""

    binds = (1,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "BlockDiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        b = max(1, self._owner.nblocks)
        return max(1.0, self._owner.shape[0] / b)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        base, lo, w = _split_pos(parent_pos)
        cc = g.fresh("cc")
        g.open(f"for {cc} in range({w}):")
        if 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {lo} + {cc}")
        return f"{base} + {cc}"

    def vector_view(self, prefix: str, parent_pos):
        base, lo, w = _split_pos(parent_pos)
        return {
            "slice": ("0", w),
            "index": {1: ("affine", lo)},
            "unique_axes": frozenset({1}),
        }


def _split_pos(parent_pos: str | None) -> tuple[str, str, str]:
    parts = (parent_pos or "0").split(":")
    if len(parts) != 3:  # availability probe with a placeholder parent
        parts = [parts[0]] * 3
    return parts[0], parts[1], parts[2]


class BlockDiagonalMatrix(Format):
    """Contiguous dense diagonal blocks.

    Parameters
    ----------
    n:
        Matrix dimension (square).
    blockptr:
        ``nblocks + 1`` partition of [0, n) into contiguous ranges.
    vals, voff:
        Flat row-major block values; block b occupies
        ``vals[voff[b] : voff[b+1]]`` with ``voff[b+1]-voff[b] == w_b**2``.
    """

    format_name = "BlockDiag"

    def __init__(self, n, blockptr, vals, voff):
        self._shape = check_shape((n, n), 2)
        self.blockptr = np.asarray(blockptr, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.voff = np.asarray(voff, dtype=np.int64)
        if self.blockptr[0] != 0 or self.blockptr[-1] != n:
            raise FormatError("blockptr must partition [0, n)")
        if np.any(np.diff(self.blockptr) <= 0):
            raise FormatError("blocks must be non-empty and increasing")
        w = np.diff(self.blockptr)
        if len(self.voff) != len(w) + 1 or np.any(np.diff(self.voff) != w * w):
            raise FormatError("voff inconsistent with block widths")
        if len(self.vals) != self.voff[-1]:
            raise FormatError("vals length inconsistent with voff")
        self._batch_cache = None

    @property
    def nblocks(self) -> int:
        return len(self.blockptr) - 1

    @property
    def stored_count(self) -> int:
        return len(self.vals)

    @classmethod
    def from_coo_blocks(cls, coo: COOMatrix, blockptr) -> "BlockDiagonalMatrix":
        """Extract the diagonal blocks of ``coo`` given the partition.

        Off-block entries of ``coo`` are ignored (callers split the matrix
        first); within-block missing entries are stored as explicit zeros.
        """
        blockptr = np.asarray(blockptr, dtype=np.int64)
        n = coo.shape[0]
        if coo.shape[0] != coo.shape[1]:
            raise FormatError(
                f"BlockDiag requires a square matrix, got {coo.shape[0]}x"
                f"{coo.shape[1]}; diagonal blocks cover rows and columns "
                "with the same index range"
            )
        if blockptr.ndim != 1 or len(blockptr) < 1:
            raise FormatError("blockptr must be a 1-D partition of [0, n)")
        if blockptr[0] != 0 or blockptr[-1] != n or np.any(np.diff(blockptr) <= 0):
            raise FormatError(
                "blockptr must start at 0, end at n, and be strictly increasing"
            )
        dense_blocks = []
        voff = [0]
        # assign each entry to a block by its row, keep it if the column
        # falls in the same block
        block_of = np.zeros(n, dtype=np.int64)
        for b in range(len(blockptr) - 1):
            block_of[blockptr[b] : blockptr[b + 1]] = b
        coo = coo.canonicalized()  # duplicates must SUM, not last-write-win
        keep = block_of[coo.row] == block_of[coo.col]
        r, c, v = coo.row[keep], coo.col[keep], coo.vals[keep]
        order = np.argsort(block_of[r], kind="stable")
        r, c, v = r[order], c[order], v[order]
        bounds = np.searchsorted(block_of[r], np.arange(len(blockptr)))
        for b in range(len(blockptr) - 1):
            lo, w = int(blockptr[b]), int(blockptr[b + 1] - blockptr[b])
            blk = np.zeros((w, w))
            s, e = bounds[b], bounds[b + 1]
            blk[r[s:e] - lo, c[s:e] - lo] = v[s:e]
            dense_blocks.append(blk.ravel())
            voff.append(voff[-1] + w * w)
        vals = np.concatenate(dense_blocks) if dense_blocks else np.empty(0)
        return cls(n, blockptr, vals, np.asarray(voff, dtype=np.int64))

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "BlockDiagonalMatrix":
        """Treat the whole matrix as one dense block (degenerate case).

        An empty matrix gets the empty partition (zero blocks) — the
        one-block partition ``[0, 0]`` would be a zero-width block.
        """
        n = coo.shape[0]
        ptr = np.asarray([0], dtype=np.int64) if n == 0 else np.asarray([0, n])
        return cls.from_coo_blocks(coo, ptr)

    def to_coo(self) -> COOMatrix:
        r_parts, c_parts, v_parts = [], [], []
        for b in range(self.nblocks):
            lo, hi = int(self.blockptr[b]), int(self.blockptr[b + 1])
            w = hi - lo
            blk = self.vals[self.voff[b] : self.voff[b + 1]].reshape(w, w)
            rr, cc = np.nonzero(blk)
            r_parts.append(rr + lo)
            c_parts.append(cc + lo)
            v_parts.append(blk[rr, cc])
        if not r_parts:
            return COOMatrix(self._shape, [], [], [])
        return COOMatrix.from_entries(
            self._shape,
            np.concatenate(r_parts),
            np.concatenate(c_parts),
            np.concatenate(v_parts),
        )

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def levels(self):
        return (_BlockOuterLevel(self), _BlockRowLevel(self), _BlockColLevel(self))

    def inner_vector_view(self, prefix, parent_pos):
        view = _BlockColLevel(self).vector_view(prefix, parent_pos)
        base = _split_pos(parent_pos)[0]
        view["vals"] = f"{prefix}_vals[{base} : {base} + ({{e}} - {{s}})]"
        return view

    def inner_block_view(self, prefix, parent_pos):
        b = parent_pos or "0"
        start = f"{prefix}_blockptr[{b}]"
        w = f"{prefix}_blockptr[{b} + 1] - {prefix}_blockptr[{b}]"
        return {
            "rows": ("affine", start),
            "cols": ("affine", start),
            "nrows": w,
            "ncols": w,
            "vals": f"{prefix}_vals[{prefix}_voff[{b}]:{prefix}_voff[{b} + 1]]",
            "unique_rows": True,
        }

    def storage(self, prefix: str):
        return {
            f"{prefix}_blockptr": self.blockptr,
            f"{prefix}_vals": self.vals,
            f"{prefix}_voff": self.voff,
            f"{prefix}_nblocks": self.nblocks,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    # ------------------------------------------------------------------
    def _batches(self):
        """Group blocks by width; cache stacked tensors per width."""
        if self._batch_cache is None:
            by_w: dict[int, list[int]] = {}
            widths = np.diff(self.blockptr)
            for b in range(self.nblocks):
                by_w.setdefault(int(widths[b]), []).append(b)
            batches = []
            for w, bs in sorted(by_w.items()):
                V = np.stack(
                    [self.vals[self.voff[b] : self.voff[b + 1]].reshape(w, w) for b in bs]
                )
                starts = self.blockptr[np.asarray(bs)]
                idx = starts[:, None] + np.arange(w)[None, :]
                batches.append((V, idx))
            self._batch_cache = batches
        return self._batch_cache

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y (+)= A·x with one batched GEMV per block width.

        Block ranges are disjoint, so scatter is a plain indexed store-add.
        """
        x = np.asarray(x)
        y = out if out is not None else np.zeros(self._shape[0])
        for V, idx in self._batches():
            y[idx] += np.einsum("tij,tj->ti", V, x[idx])
        return y
