"""The BlockSolve95 storage format (paper Sec. 1 & 3.3, Fig. 2).

A square matrix (typically a multi-dof FEM stiffness matrix) is analyzed
and reordered:

1. *i-nodes* — rows with identical column structure — seed a *clique
   partition* of the matrix graph,
2. the clique-contracted graph is greedily *colored*,
3. the matrix is reordered color by color, clique by clique
   (paper Fig. 2(b)),
4. the reordered matrix splits into dense diagonal clique blocks
   (:class:`~repro.formats.blockdiag.BlockDiagonalMatrix` — the black
   triangles) and the off-diagonal remainder stored in i-node form
   (:class:`~repro.formats.inode.InodeMatrix` — the gray blocks).

The format is *composite*: the compiler accesses its components
(``dense_blocks``, ``offdiag``) individually — the paper's observation
that sophisticated formats need algorithm specification at the component
level (the mixed local/global program of Eq. 24) rather than as one dense
loop.  Calling :meth:`levels` therefore raises.

:meth:`matvec` is the hand-written library kernel used as the
"BlockSolve" baseline throughout the evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import Format, check_shape
from repro.formats.blockdiag import BlockDiagonalMatrix
from repro.formats.coo import COOMatrix
from repro.formats.inode import InodeMatrix
from repro.formats.permutation import Permutation
from repro.graphs import (
    adjacency_sets,
    clique_partition,
    contracted_graph,
    find_inodes,
    greedy_color,
)

__all__ = ["BlockSolveMatrix"]


class BlockSolveMatrix(Format):
    """Color/clique-reordered composite storage (BlockSolve95).

    Attributes
    ----------
    perm:
        :class:`Permutation` with ``perm(old) = new`` — the color/clique
        reordering.  All component structures live in the *new* (reordered)
        index space.
    dense_blocks:
        The dense diagonal clique blocks.
    offdiag:
        Everything off the clique blocks, in i-node storage.
    colors:
        Color of each clique (in reordered clique order).
    clique_ptr:
        Row partition of the reordered index space by clique
        (== ``dense_blocks.blockptr``).
    """

    format_name = "BS95"

    def __init__(self, perm: Permutation, dense_blocks: BlockDiagonalMatrix, offdiag: InodeMatrix, colors, clique_ptr):
        n = len(perm)
        self._shape = check_shape((n, n), 2)
        if dense_blocks.shape != (n, n) or offdiag.shape != (n, n):
            raise FormatError("component shape mismatch")
        self.perm = perm
        self.dense_blocks = dense_blocks
        self.offdiag = offdiag
        self.colors = np.asarray(colors, dtype=np.int64)
        self.clique_ptr = np.asarray(clique_ptr, dtype=np.int64)
        if len(self.colors) != len(self.clique_ptr) - 1:
            raise FormatError("one color per clique required")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "BlockSolveMatrix":
        """Analyze structure, reorder, and split the matrix."""
        coo = coo.canonicalized()
        if coo.shape[0] != coo.shape[1]:
            raise FormatError("BlockSolve requires a square matrix")
        n = coo.shape[0]
        adj = adjacency_sets(coo, include_self=True)
        inode_groups = find_inodes(adj)
        cliques = clique_partition(adj, inode_groups)
        cadj = contracted_graph(adj, cliques)
        colors = greedy_color(cadj)
        # reorder cliques by (color, original clique id); rows follow
        order = sorted(range(len(cliques)), key=lambda c: (int(colors[c]), c))
        old2new = np.empty(n, dtype=np.int64)
        clique_ptr = [0]
        pos = 0
        for c in order:
            for v in cliques[c]:
                old2new[v] = pos
                pos += 1
            clique_ptr.append(pos)
        perm = Permutation(old2new)
        reordered = coo.permuted(old2new, old2new)
        clique_ptr = np.asarray(clique_ptr, dtype=np.int64)
        # split on/off the diagonal clique blocks
        block_of = np.zeros(n, dtype=np.int64)
        for b in range(len(clique_ptr) - 1):
            block_of[clique_ptr[b] : clique_ptr[b + 1]] = b
        on_diag = block_of[reordered.row] == block_of[reordered.col]
        diag_part = COOMatrix(
            reordered.shape,
            reordered.row[on_diag],
            reordered.col[on_diag],
            reordered.vals[on_diag],
            canonical=True,
        )
        off_part = COOMatrix(
            reordered.shape,
            reordered.row[~on_diag],
            reordered.col[~on_diag],
            reordered.vals[~on_diag],
            canonical=True,
        )
        dense_blocks = BlockDiagonalMatrix.from_coo_blocks(diag_part, clique_ptr)
        offdiag = InodeMatrix.from_coo(off_part)
        # dtype pinned: ``order`` may be empty, and an empty default array
        # is float64 — not a valid index
        return cls(
            perm, dense_blocks, offdiag,
            colors[np.asarray(order, dtype=np.int64)], clique_ptr,
        )

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return self.dense_blocks.nnz + int(np.count_nonzero(self.offdiag.vals))

    @property
    def ncolors(self) -> int:
        return int(self.colors.max(initial=-1)) + 1

    def levels(self):
        raise FormatError(
            "BlockSolve is a composite format: compile against its "
            "components (.dense_blocks, .offdiag) — see the mixed "
            "local/global specification of paper Eq. (24)"
        )

    def storage(self, prefix: str):
        raise FormatError("BlockSolve is composite; bind its components instead")

    def emit_load(self, g, prefix, axis_vars, pos):
        raise FormatError("BlockSolve is composite; bind its components instead")

    def to_coo(self) -> COOMatrix:
        """Back to original (un-reordered) coordinates.

        Clique blocks are stored fully dense, so structural zeros inside a
        block are pruned on the way out.
        """
        combined = self.dense_blocks.to_coo().canonicalized()
        off = self.offdiag.to_coo()
        merged = COOMatrix.from_entries(
            self._shape,
            np.concatenate([combined.row, off.row]),
            np.concatenate([combined.col, off.col]),
            np.concatenate([combined.vals, off.vals]),
        )
        return merged.permuted(self.perm.iperm, self.perm.iperm).prune(0.0)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Hand-written library SpMV (the BlockSolve baseline):
        dense clique blocks + i-node off-diagonal part, then un-permute."""
        x = np.asarray(x)
        xp = x[self.perm.iperm]  # xp[new] = x[old]
        yp = self.dense_blocks.matvec(xp)
        self.offdiag.matvec(xp, out=yp)
        return yp[self.perm.perm]  # y[old] = yp[new]
