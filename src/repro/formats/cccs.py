"""Compressed Compressed Column Storage (CCCS) — paper Fig. 1(c).

When a matrix has many empty columns, CCS wastes COLP slots on them; CCCS
adds another level of indirection, the COLIND array, compressing the column
dimension as well.  Hierarchy: a *compressed* column level (only stored
columns are enumerated) above a compressed row level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import Format, check_shape
from repro.formats.compressed import (
    CompressedLevel,
    CompressedOuterLevel,
    segment_search,
)
from repro.formats.coo import COOMatrix

__all__ = ["CCCSMatrix"]


class CCCSMatrix(Format):
    """Compressed Compressed Column Storage.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    colind:
        Sorted global indices of the stored (nonempty) columns.
    colp:
        ``len(colind) + 1`` segment pointers into rowind/vals.
    rowind, vals:
        Row indices (sorted per column) and values.
    """

    format_name = "CCCS"

    def __init__(self, shape, colind, colp, rowind, vals):
        self._shape = check_shape(shape, 2)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.colp = np.asarray(colp, dtype=np.int64)
        self.rowind = np.asarray(rowind, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.colp) != len(self.colind) + 1:
            raise FormatError("colp length must be len(colind) + 1")
        if len(self.colind) and np.any(np.diff(self.colind) <= 0):
            raise FormatError("colind must be strictly increasing")
        if self.colp[0] != 0 or (len(self.colp) and self.colp[-1] != len(self.vals)):
            raise FormatError("colp must start at 0 and end at nnz")
        if len(self.rowind) != len(self.vals):
            raise FormatError("rowind/vals length mismatch")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CCCSMatrix":
        coo = coo.canonicalized()
        order = np.lexsort((coo.row, coo.col))
        col_sorted = coo.col[order]
        stored, counts = np.unique(col_sorted, return_counts=True)
        colp = np.zeros(len(stored) + 1, dtype=np.int64)
        np.cumsum(counts, out=colp[1:])
        return cls(coo.shape, stored, colp, coo.row[order], coo.vals[order])

    def to_coo(self) -> COOMatrix:
        col = np.repeat(self.colind, np.diff(self.colp))
        return COOMatrix.from_entries(self._shape, self.rowind, col, self.vals)

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def ncols_stored(self) -> int:
        return len(self.colind)

    def levels(self):
        k = max(1, self.ncols_stored)
        return (
            CompressedOuterLevel(1, "colind", "ncols_stored", fanout=self.ncols_stored),
            CompressedLevel(0, "colp", "rowind", fanout=self.nnz / k),
        )

    def storage(self, prefix: str):
        return {
            f"{prefix}_colind": self.colind,
            f"{prefix}_ncols_stored": self.ncols_stored,
            f"{prefix}_colp": self.colp,
            f"{prefix}_rowind": self.rowind,
            f"{prefix}_vals": self.vals,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
            f"{prefix}_find_colind": self._find_col,
            f"{prefix}_find_rowind": self._find_row,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    def _find_col(self, j: int) -> int:
        q = int(np.searchsorted(self.colind, j, side="left"))
        if q < len(self.colind) and self.colind[q] == j:
            return q
        return -1

    def _find_row(self, q: int, i: int) -> int:
        return segment_search(self.rowind, int(self.colp[q]), int(self.colp[q + 1]), i)
