"""Compressed Column Storage (CCS) — the running example of paper Fig. 1(b).

Hierarchy: ``J -> (I, V)`` — a dense column level above a compressed row
level.  Column j's row indices live in ``ROWIND[COLP[j] : COLP[j+1]]`` and
its values in ``VALS`` at the same positions, exactly the paper's arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import Format, check_shape
from repro.formats.compressed import CompressedLevel, segment_search
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseAxisLevel

__all__ = ["CCSMatrix"]


class CCSMatrix(Format):
    """Compressed Column Storage, with the paper's array names.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    colp:
        ``ncols + 1`` monotone segment pointers (the paper's COLP).
    rowind, vals:
        Row indices (sorted within each column) and values (ROWIND, VALS).
    """

    format_name = "CCS"

    def __init__(self, shape, colp, rowind, vals):
        self._shape = check_shape(shape, 2)
        self.colp = np.asarray(colp, dtype=np.int64)
        self.rowind = np.asarray(rowind, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.colp) != self._shape[1] + 1:
            raise FormatError(
                f"colp length {len(self.colp)} != ncols+1 = {self._shape[1] + 1}"
            )
        if self.colp[0] != 0 or self.colp[-1] != len(self.vals):
            raise FormatError("colp must start at 0 and end at nnz")
        if np.any(np.diff(self.colp) < 0):
            raise FormatError("colp must be non-decreasing")
        if len(self.rowind) != len(self.vals):
            raise FormatError("rowind/vals length mismatch")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CCSMatrix":
        coo = coo.canonicalized()
        ncols = coo.shape[1]
        order = np.lexsort((coo.row, coo.col))  # column-major
        colp = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(np.bincount(coo.col, minlength=ncols), out=colp[1:])
        return cls(coo.shape, colp, coo.row[order], coo.vals[order])

    def to_coo(self) -> COOMatrix:
        col = np.repeat(np.arange(self._shape[1]), np.diff(self.colp))
        return COOMatrix.from_entries(self._shape, self.rowind, col, self.vals)

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def levels(self):
        m = max(1, self._shape[1])
        return (
            DenseAxisLevel(1, self._shape[1]),
            CompressedLevel(0, "colp", "rowind", fanout=self.nnz / m),
        )

    def storage(self, prefix: str):
        return {
            f"{prefix}_colp": self.colp,
            f"{prefix}_rowind": self.rowind,
            f"{prefix}_vals": self.vals,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
            f"{prefix}_find_rowind": self._find,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    def _find(self, j: int, i: int) -> int:
        return segment_search(self.rowind, int(self.colp[j]), int(self.colp[j + 1]), i)

    def col_slice(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column j."""
        s, e = self.colp[j], self.colp[j + 1]
        return self.rowind[s:e], self.vals[s:e]
