"""Reusable compressed access levels shared by CRS/CCS/CCCS and friends.

A *compressed* level stores, for each parent position ``q``, a contiguous
segment ``ptr[q] : ptr[q+1]`` of an index array.  This is the classic
"pointer + index" building block of sparse formats; the paper's CCS
description ``J -> (I, V)`` is a dense column level above a compressed row
level.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter

__all__ = ["CompressedLevel", "CompressedOuterLevel", "segment_search"]


def segment_search(idx: np.ndarray, lo: int, hi: int, key: int) -> int:
    """Binary search for ``key`` in the sorted segment ``idx[lo:hi]``.

    Returns the absolute position, or -1 if absent.
    """
    k = lo + int(np.searchsorted(idx[lo:hi], key, side="left"))
    if k < hi and idx[k] == key:
        return k
    return -1


class CompressedLevel(AccessLevel):
    """Inner compressed level: segment of ``idx`` under each parent position.

    Parameters
    ----------
    axis:
        The matrix axis this level binds.
    ptr_name, idx_name:
        Storage-array suffixes (``"rowptr"``/``"colind"`` for CRS).  The
        owning format's ``storage()`` must provide ``{prefix}_{ptr_name}``,
        ``{prefix}_{idx_name}`` and the search callable
        ``{prefix}_find_{idx_name}(parent_pos, key) -> pos | -1``.
    fanout:
        Average segment length (cost model).
    sorted_within:
        Indices within each segment are increasing (enables binary search
        and merge joins).
    """

    searchable = True
    dense = False

    def __init__(self, axis: int, ptr_name: str, idx_name: str, fanout: float, sorted_within: bool = True):
        self.binds = (axis,)
        self.axis = axis
        self.ptr_name = ptr_name
        self.idx_name = idx_name
        self._fanout = float(fanout)
        self.sorted_enum = bool(sorted_within)
        self.searchable = bool(sorted_within)
        self.search_cost = 8.0

    def avg_fanout(self) -> float:
        return self._fanout

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        if parent_pos is None:
            raise FormatError("compressed level needs a parent position")
        p = g.fresh("p")
        ptr = f"{prefix}_{self.ptr_name}"
        g.open(f"for {p} in range({ptr}[{parent_pos}], {ptr}[{parent_pos} + 1]):")
        g.emit(f"{axis_vars[self.axis]} = {prefix}_{self.idx_name}[{p}]")
        return p

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        if not self.searchable:
            raise FormatError("unsorted compressed level is not searchable")
        p = g.fresh("p")
        g.emit(f"{p} = {prefix}_find_{self.idx_name}({parent_pos}, {axis_exprs[self.axis]})")
        g.open(f"if {p} < 0:")
        g.emit("continue")
        g.close()
        return p

    def vector_view(self, prefix: str, parent_pos):
        ptr = f"{prefix}_{self.ptr_name}"
        return {
            "slice": (f"{ptr}[{parent_pos}]", f"{ptr}[{parent_pos} + 1]"),
            "index": {
                self.axis: ("gather", f"{prefix}_{self.idx_name}[{{s}}:{{e}}]")
            },
            # indices within one segment never repeat
            "unique_axes": frozenset({self.axis}) if self.sorted_enum else frozenset(),
        }


class CompressedOuterLevel(AccessLevel):
    """Outermost compressed level: enumerate only the *stored* indices of an
    axis (e.g. CCCS's COLIND array of nonempty columns).

    Storage contract: ``{prefix}_{idx_name}`` (the stored indices, sorted)
    and ``{prefix}_{count_name}`` (how many), plus the search callable
    ``{prefix}_find_{idx_name}(key) -> pos | -1``.
    """

    searchable = True
    sorted_enum = True
    dense = False
    search_cost = 8.0

    def __init__(self, axis: int, idx_name: str, count_name: str, fanout: float):
        self.binds = (axis,)
        self.axis = axis
        self.idx_name = idx_name
        self.count_name = count_name
        self._fanout = float(fanout)

    def avg_fanout(self) -> float:
        return self._fanout

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        p = g.fresh("q")
        g.open(f"for {p} in range({prefix}_{self.count_name}):")
        g.emit(f"{axis_vars[self.axis]} = {prefix}_{self.idx_name}[{p}]")
        return p

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        p = g.fresh("q")
        g.emit(f"{p} = {prefix}_find_{self.idx_name}({axis_exprs[self.axis]})")
        g.open(f"if {p} < 0:")
        g.emit("continue")
        g.close()
        return p
