"""Coordinate (COO) format — the exchange format and Table 1's "Coordinate".

A matrix is stored as three parallel arrays: row indices, column indices and
values.  The *canonical* form is sorted row-major with duplicate coordinates
summed; all other formats convert to and from canonical COO.

Access hierarchy: a single level binding both axes at once,

    (I, J) -> V

enumerable in row-major sorted order (when canonical) and searchable by
binary search over the (row, col) key.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape

__all__ = ["COOMatrix", "CoordinateLevel"]


class CoordinateLevel(AccessLevel):
    """The (I, J) level of COO: one flat enumeration over all entries."""

    binds = (0, 1)
    searchable = True
    dense = False
    search_cost = 8.0  # binary search

    def __init__(self, owner: "COOMatrix"):
        self._owner = owner
        self.sorted_enum = owner.canonical

    def avg_fanout(self) -> float:
        return float(self._owner.nnz)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        p = g.fresh("p")
        g.open(f"for {p} in range({prefix}_nnz):")
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {prefix}_row[{p}]")
        if 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {prefix}_col[{p}]")
        return p

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        if not self._owner.canonical:
            raise FormatError("non-canonical COO is not searchable")
        p = g.fresh("p")
        g.emit(f"{p} = {prefix}_search({axis_exprs[0]}, {axis_exprs[1]})")
        g.open(f"if {p} < 0:")
        g.emit("continue")
        g.close()
        return p

    def vector_view(self, prefix: str, parent_pos):
        return {
            "slice": ("0", f"{prefix}_nnz"),
            "index": {
                0: ("gather", f"{prefix}_row[{{s}}:{{e}}]"),
                1: ("gather", f"{prefix}_col[{{s}}:{{e}}]"),
            },
        }


class COOMatrix(Format):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    row, col, vals:
        Parallel entry arrays.  Pass ``canonical=True`` only if the entries
        are already row-major sorted with unique coordinates; use
        :meth:`from_entries` to canonicalize arbitrary triples.
    """

    format_name = "Coordinate"

    def __init__(self, shape, row, col, vals, canonical: bool = False):
        self._shape = check_shape(shape, 2)
        self.row = np.asarray(row, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if not (len(self.row) == len(self.col) == len(self.vals)):
            raise FormatError("row/col/vals length mismatch")
        if len(self.row) and (
            self.row.min(initial=0) < 0
            or self.col.min(initial=0) < 0
            or self.row.max(initial=-1) >= self._shape[0]
            or self.col.max(initial=-1) >= self._shape[1]
        ):
            raise FormatError(f"coordinates out of bounds for shape {self._shape}")
        self.canonical = bool(canonical)
        self._key_list = None  # lazy, for bisect search

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(cls, shape, row, col, vals) -> "COOMatrix":
        """Canonicalize arbitrary (row, col, val) triples: sort row-major
        and sum duplicates.  Entries that sum to exactly zero are kept as
        explicit (structural) zeros — formats must preserve structure."""
        row = np.asarray(row, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if len(row) == 0:
            return cls(shape, row, col, vals, canonical=True)
        order = np.lexsort((col, row))
        row, col, vals = row[order], col[order], vals[order]
        # segment boundaries where the coordinate changes
        new = np.empty(len(row), dtype=bool)
        new[0] = True
        new[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
        idx = np.flatnonzero(new)
        summed = np.add.reduceat(vals, idx)
        return cls(shape, row[idx], col[idx], summed, canonical=True)

    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise FormatError("from_dense expects a 2-D array")
        r, c = np.nonzero(dense)
        return cls(dense.shape, r, c, dense[r, c], canonical=True)

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "COOMatrix":
        return coo.canonicalized()

    @classmethod
    def identity(cls, n: int) -> "COOMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), idx, idx, np.ones(n), canonical=True)

    @classmethod
    def random(
        cls, nrows: int, ncols: int, density: float, rng=None, symmetric: bool = False
    ) -> "COOMatrix":
        """A random matrix with roughly ``density * nrows * ncols`` entries."""
        rng = np.random.default_rng(rng)
        nnz = max(0, int(round(density * nrows * ncols)))
        r = rng.integers(0, nrows, size=nnz)
        c = rng.integers(0, ncols, size=nnz)
        v = rng.standard_normal(nnz)
        m = cls.from_entries((nrows, ncols), r, c, v)
        if symmetric:
            if nrows != ncols:
                raise FormatError("symmetric random matrix must be square")
            t = m.transpose()
            m = cls.from_entries(
                (nrows, ncols),
                np.concatenate([m.row, t.row]),
                np.concatenate([m.col, t.col]),
                np.concatenate([m.vals, t.vals]) * 0.5,
            )
        return m

    # ------------------------------------------------------------------
    # Format interface
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def levels(self):
        return (CoordinateLevel(self),)

    def storage(self, prefix: str):
        return {
            f"{prefix}_row": self.row,
            f"{prefix}_col": self.col,
            f"{prefix}_vals": self.vals,
            f"{prefix}_nnz": self.nnz,
            f"{prefix}_search": self._search,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def canonicalized(self) -> "COOMatrix":
        if self.canonical:
            return self
        return COOMatrix.from_entries(self._shape, self.row, self.col, self.vals)

    def to_coo(self) -> "COOMatrix":
        return self.canonicalized()

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self._shape)
        np.add.at(out, (self.row, self.col), self.vals)
        return out

    def transpose(self) -> "COOMatrix":
        m = COOMatrix((self._shape[1], self._shape[0]), self.col, self.row, self.vals)
        return m.canonicalized()

    def prune(self, tol: float = 0.0) -> "COOMatrix":
        """Drop stored entries with |value| <= tol."""
        keep = np.abs(self.vals) > tol
        return COOMatrix(
            self._shape, self.row[keep], self.col[keep], self.vals[keep], self.canonical
        )

    def row_counts(self) -> np.ndarray:
        """Number of stored entries in each row."""
        return np.bincount(self.row, minlength=self._shape[0]).astype(np.int64)

    def col_counts(self) -> np.ndarray:
        return np.bincount(self.col, minlength=self._shape[1]).astype(np.int64)

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector."""
        n = min(self._shape)
        d = np.zeros(n)
        on = self.row == self.col
        np.add.at(d, self.row[on], self.vals[on])
        return d

    def select_rows(self, rows) -> "COOMatrix":
        """Sub-matrix of the given global rows, *renumbered* 0..len(rows)-1
        (columns keep global numbering).  ``rows`` need not be sorted."""
        rows = np.asarray(rows, dtype=np.int64)
        lookup = -np.ones(self._shape[0], dtype=np.int64)
        lookup[rows] = np.arange(len(rows))
        keep = lookup[self.row] >= 0
        return COOMatrix.from_entries(
            (len(rows), self._shape[1]),
            lookup[self.row[keep]],
            self.col[keep],
            self.vals[keep],
        )

    def permuted(self, row_perm=None, col_perm=None) -> "COOMatrix":
        """Apply permutations: new_index = perm[old_index] for each axis."""
        r = self.row if row_perm is None else np.asarray(row_perm, dtype=np.int64)[self.row]
        c = self.col if col_perm is None else np.asarray(col_perm, dtype=np.int64)[self.col]
        return COOMatrix.from_entries(self._shape, r, c, self.vals)

    def __eq__(self, other):
        if not isinstance(other, COOMatrix):
            return NotImplemented
        a, b = self.canonicalized(), other.canonicalized()
        return (
            a.shape == b.shape
            and np.array_equal(a.row, b.row)
            and np.array_equal(a.col, b.col)
            and np.allclose(a.vals, b.vals)
        )

    def __hash__(self):
        raise TypeError("COOMatrix is unhashable")

    # ------------------------------------------------------------------
    def _search(self, i: int, j: int) -> int:
        """Binary search for entry (i, j); -1 if absent.  Canonical only."""
        if not self.canonical:
            raise FormatError("search requires canonical COO")
        lo = int(np.searchsorted(self.row, i, side="left"))
        hi = int(np.searchsorted(self.row, i, side="right"))
        k = lo + int(np.searchsorted(self.col[lo:hi], j, side="left"))
        if k < hi and self.col[k] == j:
            return k
        return -1
