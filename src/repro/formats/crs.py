"""Compressed Row Storage (CRS/CSR) — Table 1's "CRS".

Hierarchy: ``I -> (J, V)`` — a dense row level above a compressed column
level.  Rows are stored as segments ``rowptr[i] : rowptr[i+1]`` of the
``colind``/``vals`` arrays, column indices sorted within each row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import Format, check_shape
from repro.formats.compressed import CompressedLevel, segment_search
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseAxisLevel

__all__ = ["CRSMatrix"]


class CRSMatrix(Format):
    """Compressed Row Storage.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    rowptr:
        ``nrows + 1`` monotone segment pointers.
    colind, vals:
        Column indices (sorted within each row) and values, both of length
        ``rowptr[-1]``.
    """

    format_name = "CRS"

    def __init__(self, shape, rowptr, colind, vals):
        self._shape = check_shape(shape, 2)
        self.rowptr = np.asarray(rowptr, dtype=np.int64)
        self.colind = np.asarray(colind, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.rowptr) != self._shape[0] + 1:
            raise FormatError(
                f"rowptr length {len(self.rowptr)} != nrows+1 = {self._shape[0] + 1}"
            )
        if self.rowptr[0] != 0 or self.rowptr[-1] != len(self.vals):
            raise FormatError("rowptr must start at 0 and end at nnz")
        if np.any(np.diff(self.rowptr) < 0):
            raise FormatError("rowptr must be non-decreasing")
        if len(self.colind) != len(self.vals):
            raise FormatError("colind/vals length mismatch")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CRSMatrix":
        coo = coo.canonicalized()
        nrows = coo.shape[0]
        rowptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(coo.row, minlength=nrows), out=rowptr[1:])
        # canonical COO is already row-major with sorted columns per row
        return cls(coo.shape, rowptr, coo.col.copy(), coo.vals.copy())

    def to_coo(self) -> COOMatrix:
        row = np.repeat(np.arange(self._shape[0]), np.diff(self.rowptr))
        return COOMatrix(self._shape, row, self.colind, self.vals, canonical=True)

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def levels(self):
        n = max(1, self._shape[0])
        return (
            DenseAxisLevel(0, self._shape[0]),
            CompressedLevel(1, "rowptr", "colind", fanout=self.nnz / n),
        )

    def storage(self, prefix: str):
        return {
            f"{prefix}_rowptr": self.rowptr,
            f"{prefix}_colind": self.colind,
            f"{prefix}_vals": self.vals,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
            f"{prefix}_find_colind": self._find,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    def segmented_view(self, prefix: str):
        return {
            "kind": "segments",
            "segments": f"{prefix}_rowptr",
            "index": {1: f"{prefix}_colind"},
            "vals": f"{prefix}_vals",
            "outer_axis": 0,
        }

    def _find(self, i: int, j: int) -> int:
        return segment_search(self.colind, int(self.rowptr[i]), int(self.rowptr[i + 1]), j)

    # ------------------------------------------------------------------
    # hand-written reference operations (baseline / oracle use only)
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Hand-vectorized y = A·x, used as an oracle in tests."""
        x = np.asarray(x)
        prod = self.vals * x[self.colind]
        out = np.zeros(self._shape[0])
        counts = np.diff(self.rowptr)
        nonempty = np.flatnonzero(counts)
        if len(nonempty):
            out[nonempty] = np.add.reduceat(prod, self.rowptr[nonempty])
        return out

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row i."""
        s, e = self.rowptr[i], self.rowptr[i + 1]
        return self.colind[s:e], self.vals[s:e]
