"""Dense matrix and vector "formats".

Dense containers participate in the same access-method protocol as the
sparse formats — they are simply relations whose every index is present
(``structurally_dense``), enumerable in sorted order and searchable in O(1).
They are the only *writable* formats: compiled kernels store or accumulate
into dense outputs (the paper's y vector in y = A·x).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape

__all__ = ["DenseAxisLevel", "DenseMatrix", "DenseVector"]


def _emit_combine(g: Emitter, target: str, value_expr: str, op: str) -> None:
    """Combine a value into a scalar storage slot with a reduction op."""
    if op == "+":
        g.emit(f"{target} += {value_expr}")
    elif op == "*":
        g.emit(f"{target} *= {value_expr}")
    elif op in ("min", "max"):
        g.emit(f"{target} = {op}({target}, {value_expr})")
    else:
        raise FormatError(f"unknown reduction operator {op!r}")


class DenseAxisLevel(AccessLevel):
    """One dense axis: enumerate 0..extent-1; search is the identity."""

    enumerable = True
    searchable = True
    sorted_enum = True
    dense = True
    search_cost = 1.0

    def __init__(self, axis: int, extent: int):
        self.binds = (axis,)
        self.axis = axis
        self.extent = int(extent)

    def avg_fanout(self) -> float:
        return float(self.extent)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        v = axis_vars[self.axis]
        g.open(f"for {v} in range({prefix}_n{self.axis}):")
        return v

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        # every index is present: the position *is* the index
        return axis_exprs[self.axis]

    def vector_view(self, prefix: str, parent_pos):
        return {
            "slice": ("0", f"{prefix}_n{self.axis}"),
            "index": {self.axis: ("affine", "0")},
        }


class DenseMatrix(Format):
    """A dense 2-D array wrapped in the format protocol."""

    format_name = "Dense"
    writable = True
    structurally_dense = True

    def __init__(self, vals):
        self.vals = np.ascontiguousarray(vals, dtype=np.float64)
        if self.vals.ndim != 2:
            raise FormatError("DenseMatrix expects a 2-D array")

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "DenseMatrix":
        return cls(np.zeros((nrows, ncols)))

    @classmethod
    def from_coo(cls, coo) -> "DenseMatrix":
        return cls(coo.to_dense())

    def to_coo(self):
        from repro.formats.coo import COOMatrix

        return COOMatrix.from_dense(self.vals)

    def to_dense(self) -> np.ndarray:
        return self.vals

    @property
    def shape(self):
        return self.vals.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def levels(self):
        return (
            DenseAxisLevel(0, self.vals.shape[0]),
            DenseAxisLevel(1, self.vals.shape[1]),
        )

    def storage(self, prefix: str):
        return {
            f"{prefix}_vals": self.vals,
            f"{prefix}_n0": self.vals.shape[0],
            f"{prefix}_n1": self.vals.shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{axis_vars[0]}, {axis_vars[1]}]"

    def emit_store(self, g, prefix, axis_vars, pos, value_expr):
        g.emit(f"{prefix}_vals[{axis_vars[0]}, {axis_vars[1]}] = {value_expr}")

    def emit_accumulate(self, g, prefix, axis_vars, pos, value_expr, op="+"):
        _emit_combine(
            g, f"{prefix}_vals[{axis_vars[0]}, {axis_vars[1]}]", value_expr, op
        )

    def inner_vector_view(self, prefix, parent_pos):
        # innermost level is the column axis under a bound row index
        return {
            "slice": ("0", f"{prefix}_n1"),
            "index": {1: ("affine", "0")},
            "vals": f"{prefix}_vals[{parent_pos}][{{s}}:{{e}}]",
        }


class DenseVector(Format):
    """A dense 1-D array wrapped in the format protocol."""

    format_name = "DenseVector"
    writable = True
    structurally_dense = True

    def __init__(self, vals):
        self.vals = np.ascontiguousarray(vals, dtype=np.float64)
        if self.vals.ndim != 1:
            raise FormatError("DenseVector expects a 1-D array")

    @classmethod
    def zeros(cls, n: int) -> "DenseVector":
        return cls(np.zeros(n))

    @property
    def shape(self):
        return self.vals.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def levels(self):
        return (DenseAxisLevel(0, self.vals.shape[0]),)

    def storage(self, prefix: str):
        return {f"{prefix}_vals": self.vals, f"{prefix}_n0": self.vals.shape[0]}

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{axis_vars[0]}]"

    def emit_store(self, g, prefix, axis_vars, pos, value_expr):
        g.emit(f"{prefix}_vals[{axis_vars[0]}] = {value_expr}")

    def emit_accumulate(self, g, prefix, axis_vars, pos, value_expr, op="+"):
        _emit_combine(g, f"{prefix}_vals[{axis_vars[0]}]", value_expr, op)

    def to_dense(self) -> np.ndarray:
        return self.vals

    def to_coo(self):
        raise FormatError("DenseVector is 1-D; no COO matrix form")
