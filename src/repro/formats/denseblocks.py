"""Dense rectangular windows at arbitrary offsets (region specialization).

:class:`BlockDiagonalMatrix` stores dense *diagonal* blocks: block b covers
rows and columns ``blockptr[b]:blockptr[b+1]``, so blocks must tile the
whole index range.  The region specializer (``repro.compiler.specialize``)
instead peels dense *windows* out of a hybrid matrix — a planted 600-wide
block at an arbitrary offset, say — and needs a format that stores a small
set of disjoint dense rectangles anywhere in the matrix, with everything
outside the windows owned by some other region.

Block b covers rows ``r0[b] : r0[b]+bh[b]`` and columns
``c0[b] : c0[b]+bw[b]`` and stores the full dense window row-major in
``vals[voff[b] : voff[b+1]]``.  Windows must be pairwise disjoint so the
block-GEMV lowering's scatter stays a plain ``+=`` (rows unique within a
block; across blocks the sub-kernels of a hybrid plan run sequentially).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix

__all__ = ["DenseBlocksMatrix"]


class _WindowOuterLevel(AccessLevel):
    binds = ()
    searchable = False
    dense = False

    def __init__(self, owner: "DenseBlocksMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(max(1, self._owner.nblocks))

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        b = g.fresh("b")
        g.open(f"for {b} in range({prefix}_nblocks):")
        return b


class _WindowRowLevel(AccessLevel):
    """Rows of one dense window.  Returns the compound position
    ``"base:b"`` interpreted only by the sibling column level."""

    binds = (0,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "DenseBlocksMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        o = self._owner
        return max(1.0, float(np.mean(o.bh)) if o.nblocks else 1.0)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        b = parent_pos
        h, w = g.fresh("h"), g.fresh("w")
        g.emit(f"{h} = {prefix}_bh[{b}]")
        g.emit(f"{w} = {prefix}_bw[{b}]")
        rr = g.fresh("rr")
        g.open(f"for {rr} in range({h}):")
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {prefix}_r0[{b}] + {rr}")
        base = g.fresh("base")
        g.emit(f"{base} = {prefix}_voff[{b}] + {rr} * {w}")
        return f"{base}:{b}"


class _WindowColLevel(AccessLevel):
    """Columns of one window row: the contiguous range [c0[b], c0[b]+bw[b])."""

    binds = (1,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "DenseBlocksMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        o = self._owner
        return max(1.0, float(np.mean(o.bw)) if o.nblocks else 1.0)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        base, b = _split_pos(parent_pos)
        cc = g.fresh("cc")
        g.open(f"for {cc} in range({prefix}_bw[{b}]):")
        if 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {prefix}_c0[{b}] + {cc}")
        return f"{base} + {cc}"

    def vector_view(self, prefix: str, parent_pos):
        base, b = _split_pos(parent_pos)
        return {
            "slice": ("0", f"{prefix}_bw[{b}]"),
            "index": {1: ("affine", f"{prefix}_c0[{b}]")},
            "unique_axes": frozenset({1}),
        }


def _split_pos(parent_pos: str | None) -> tuple[str, str]:
    parts = (parent_pos or "0").split(":")
    if len(parts) != 2:  # availability probe with a placeholder parent
        parts = [parts[0]] * 2
    return parts[0], parts[1]


class DenseBlocksMatrix(Format):
    """Disjoint dense rectangular windows.

    Parameters
    ----------
    shape:
        Full matrix shape (the windows need not cover it).
    r0, c0, bh, bw:
        Per-block window origin and extent: block b covers rows
        ``r0[b] : r0[b]+bh[b]`` and columns ``c0[b] : c0[b]+bw[b]``.
    vals, voff:
        Flat row-major window values; block b occupies
        ``vals[voff[b] : voff[b+1]]`` with ``voff[b+1]-voff[b] == bh[b]*bw[b]``.
    """

    format_name = "DenseBlocks"

    def __init__(self, shape, r0, c0, bh, bw, vals, voff):
        self._shape = check_shape(shape, 2)
        self.r0 = np.asarray(r0, dtype=np.int64)
        self.c0 = np.asarray(c0, dtype=np.int64)
        self.bh = np.asarray(bh, dtype=np.int64)
        self.bw = np.asarray(bw, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.voff = np.asarray(voff, dtype=np.int64)
        nb = len(self.r0)
        if not (len(self.c0) == len(self.bh) == len(self.bw) == nb):
            raise FormatError("r0/c0/bh/bw must have equal lengths")
        if np.any(self.bh <= 0) or np.any(self.bw <= 0):
            raise FormatError("windows must be non-empty")
        if np.any(self.r0 < 0) or np.any(self.c0 < 0):
            raise FormatError("window origins must be nonnegative")
        if np.any(self.r0 + self.bh > self._shape[0]) or np.any(
            self.c0 + self.bw > self._shape[1]
        ):
            raise FormatError("window exceeds the matrix shape")
        if len(self.voff) != nb + 1 or self.voff[0] != 0 or np.any(
            np.diff(self.voff) != self.bh * self.bw
        ):
            raise FormatError("voff inconsistent with window extents")
        if len(self.vals) != self.voff[-1]:
            raise FormatError("vals length inconsistent with voff")
        for a in range(nb):
            for b in range(a + 1, nb):
                row_overlap = (self.r0[a] < self.r0[b] + self.bh[b]) and (
                    self.r0[b] < self.r0[a] + self.bh[a]
                )
                col_overlap = (self.c0[a] < self.c0[b] + self.bw[b]) and (
                    self.c0[b] < self.c0[a] + self.bw[a]
                )
                if row_overlap and col_overlap:
                    raise FormatError(
                        f"windows {a} and {b} overlap; dense windows must be "
                        "pairwise disjoint"
                    )

    @property
    def nblocks(self) -> int:
        return len(self.r0)

    @property
    def stored_count(self) -> int:
        return len(self.vals)

    @classmethod
    def from_coo_windows(cls, coo: COOMatrix, windows) -> "DenseBlocksMatrix":
        """Materialize the given ``(r0, c0, h, w)`` windows of ``coo``.

        Entries of ``coo`` outside every window are ignored (callers split
        the matrix into regions first); missing entries inside a window are
        stored as explicit zeros.
        """
        coo = coo.canonicalized()  # duplicates must SUM, not last-write-win
        r0s, c0s, bhs, bws, parts, voff = [], [], [], [], [], [0]
        for win in windows:
            r0, c0, h, w = (int(v) for v in win)
            if h <= 0 or w <= 0:
                raise FormatError("windows must be non-empty")
            blk = np.zeros((h, w))
            keep = (
                (coo.row >= r0)
                & (coo.row < r0 + h)
                & (coo.col >= c0)
                & (coo.col < c0 + w)
            )
            blk[coo.row[keep] - r0, coo.col[keep] - c0] = coo.vals[keep]
            r0s.append(r0)
            c0s.append(c0)
            bhs.append(h)
            bws.append(w)
            parts.append(blk.ravel())
            voff.append(voff[-1] + h * w)
        vals = np.concatenate(parts) if parts else np.empty(0)
        return cls(coo.shape, r0s, c0s, bhs, bws, vals, voff)

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DenseBlocksMatrix":
        """Treat the whole matrix as one dense window (degenerate case).

        An empty-extent matrix gets zero windows (a zero-area window is
        invalid).
        """
        nr, nc = coo.shape
        wins = [] if nr == 0 or nc == 0 else [(0, 0, nr, nc)]
        return cls.from_coo_windows(coo, wins)

    def to_coo(self) -> COOMatrix:
        r_parts, c_parts, v_parts = [], [], []
        for b in range(self.nblocks):
            h, w = int(self.bh[b]), int(self.bw[b])
            blk = self.vals[self.voff[b] : self.voff[b + 1]].reshape(h, w)
            rr, cc = np.nonzero(blk)
            r_parts.append(rr + self.r0[b])
            c_parts.append(cc + self.c0[b])
            v_parts.append(blk[rr, cc])
        if not r_parts:
            return COOMatrix(self._shape, [], [], [])
        return COOMatrix.from_entries(
            self._shape,
            np.concatenate(r_parts),
            np.concatenate(c_parts),
            np.concatenate(v_parts),
        )

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def levels(self):
        return (
            _WindowOuterLevel(self),
            _WindowRowLevel(self),
            _WindowColLevel(self),
        )

    def inner_vector_view(self, prefix, parent_pos):
        view = _WindowColLevel(self).vector_view(prefix, parent_pos)
        base = _split_pos(parent_pos)[0]
        view["vals"] = f"{prefix}_vals[{base} : {base} + ({{e}} - {{s}})]"
        return view

    def inner_block_view(self, prefix, parent_pos):
        b = parent_pos or "0"
        return {
            "rows": ("affine", f"{prefix}_r0[{b}]"),
            "cols": ("affine", f"{prefix}_c0[{b}]"),
            "nrows": f"{prefix}_bh[{b}]",
            "ncols": f"{prefix}_bw[{b}]",
            "vals": f"{prefix}_vals[{prefix}_voff[{b}]:{prefix}_voff[{b} + 1]]",
            "unique_rows": True,
        }

    def storage(self, prefix: str):
        return {
            f"{prefix}_r0": self.r0,
            f"{prefix}_c0": self.c0,
            f"{prefix}_bh": self.bh,
            f"{prefix}_bw": self.bw,
            f"{prefix}_vals": self.vals,
            f"{prefix}_voff": self.voff,
            f"{prefix}_nblocks": self.nblocks,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"
