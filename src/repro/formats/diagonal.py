"""Diagonal storage — Table 1's "Diagonal" (Appendix A of the paper).

A variant of banded/skyline storage re-oriented along diagonals: an
arbitrary set of diagonals ``d = j - i`` is stored, and within each diagonal
only the run between its first and last structural nonzero (interior zeros
are stored explicitly, as in Skyline storage [George & Liu]).

Storage arrays, for ``ndiag`` stored diagonals:

* ``offsets`` — sorted diagonal offsets (j - i),
* ``dptr``    — ``ndiag + 1`` segment pointers into ``vals``,
* ``first``   — the first stored row of each diagonal,
* ``vals``    — the runs, concatenated.

Hierarchy: an internal level over stored diagonals (binds no loop axis),
then a run level binding *both* axes affinely (i = first + offset-in-run,
j = i + d) — the format whose enumeration order is neither row- nor
column-major, exercising the planner's handling of index maps.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix

__all__ = ["DiagonalMatrix", "DiagOuterLevel", "DiagRunLevel"]


class DiagOuterLevel(AccessLevel):
    """Enumerate stored diagonals.  Binds no loop axis (internal index)."""

    binds = ()
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "DiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(max(1, len(self._owner.offsets)))

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        t = g.fresh("t")
        g.open(f"for {t} in range({prefix}_ndiag):")
        return t


class DiagRunLevel(AccessLevel):
    """Entries of one stored diagonal: i runs over the stored row range,
    j = i + offset.  Binds both axes."""

    binds = (0, 1)
    searchable = True
    sorted_enum = True  # i strictly increasing within a diagonal
    dense = False
    search_cost = 8.0

    def __init__(self, owner: "DiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        nd = max(1, len(self._owner.offsets))
        return self._owner.stored_count / nd

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        p = g.fresh("p")
        g.open(f"for {p} in range({prefix}_dptr[{parent_pos}], {prefix}_dptr[{parent_pos} + 1]):")
        i_expr = f"{prefix}_first[{parent_pos}] + ({p} - {prefix}_dptr[{parent_pos}])"
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {i_expr}")
            if 1 in axis_vars:
                g.emit(f"{axis_vars[1]} = {axis_vars[0]} + {prefix}_offsets[{parent_pos}]")
        elif 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {i_expr} + {prefix}_offsets[{parent_pos}]")
        return p

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        # search *within* the parent diagonal: (i, j) lies on diagonal t iff
        # j - i equals its offset and i falls inside the stored run.  The
        # search must be parent-relative — the planner always enumerates the
        # internal diagonal level first, so a full-key find here would hit
        # the same entry once per diagonal and reductions would over-count.
        t = parent_pos
        g.open(f"if {axis_exprs[1]} - ({axis_exprs[0]}) != {prefix}_offsets[{t}]:")
        g.emit("continue")
        g.close()
        p = g.fresh("p")
        g.emit(f"{p} = {prefix}_dptr[{t}] + (({axis_exprs[0]}) - {prefix}_first[{t}])")
        g.open(f"if {p} < {prefix}_dptr[{t}] or {p} >= {prefix}_dptr[{t} + 1]:")
        g.emit("continue")
        g.close()
        return p


class DiagonalMatrix(Format):
    """Diagonal (skyline-by-diagonal) storage."""

    format_name = "Diagonal"

    def __init__(self, shape, offsets, dptr, first, vals):
        self._shape = check_shape(shape, 2)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.dptr = np.asarray(dptr, dtype=np.int64)
        self.first = np.asarray(first, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.dptr) != len(self.offsets) + 1:
            raise FormatError("dptr length must be ndiag + 1")
        if len(self.first) != len(self.offsets):
            raise FormatError("first length must equal ndiag")
        if len(self.offsets) > 1 and np.any(np.diff(self.offsets) <= 0):
            raise FormatError("offsets must be strictly increasing")
        if self.dptr[0] != 0 or (len(self.dptr) and self.dptr[-1] != len(self.vals)):
            raise FormatError("dptr must start at 0 and end at len(vals)")

    @property
    def ndiag(self) -> int:
        return len(self.offsets)

    @property
    def stored_count(self) -> int:
        """Stored entries including explicit interior zeros."""
        return len(self.vals)

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DiagonalMatrix":
        coo = coo.canonicalized()
        d = coo.col - coo.row
        offsets = np.unique(d)
        dptr = [0]
        first = []
        runs = []
        for off in offsets:
            on = d == off
            rows = coo.row[on]
            vals = coo.vals[on]
            lo, hi = int(rows.min()), int(rows.max())
            run = np.zeros(hi - lo + 1)
            run[rows - lo] = vals
            first.append(lo)
            runs.append(run)
            dptr.append(dptr[-1] + len(run))
        vals = np.concatenate(runs) if runs else np.empty(0)
        return cls(coo.shape, offsets, np.asarray(dptr), np.asarray(first, dtype=np.int64), vals)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        for t in range(self.ndiag):
            s, e = int(self.dptr[t]), int(self.dptr[t + 1])
            i = self.first[t] + np.arange(e - s)
            rows.append(i)
            cols.append(i + self.offsets[t])
            vals.append(self.vals[s:e])
        if not rows:
            return COOMatrix(self._shape, [], [], [])
        coo = COOMatrix.from_entries(
            self._shape, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
        )
        # explicit interior zeros are a storage artifact, not structure
        return coo.prune(0.0)

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def levels(self):
        return (DiagOuterLevel(self), DiagRunLevel(self))

    def storage(self, prefix: str):
        return {
            f"{prefix}_offsets": self.offsets,
            f"{prefix}_dptr": self.dptr,
            f"{prefix}_first": self.first,
            f"{prefix}_vals": self.vals,
            f"{prefix}_ndiag": self.ndiag,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
            f"{prefix}_find": self._find,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    def inner_vector_view(self, prefix, parent_pos):
        t = parent_pos
        return {
            "slice": (f"{prefix}_dptr[{t}]", f"{prefix}_dptr[{t} + 1]"),
            "index": {
                0: ("affine", f"{prefix}_first[{t}]"),
                1: ("affine", f"{prefix}_first[{t}] + {prefix}_offsets[{t}]"),
            },
            "vals": f"{prefix}_vals[{{s}}:{{e}}]",
        }

    def _find(self, i: int, j: int) -> int:
        t = int(np.searchsorted(self.offsets, j - i, side="left"))
        if t >= self.ndiag or self.offsets[t] != j - i:
            return -1
        s, e = int(self.dptr[t]), int(self.dptr[t + 1])
        p = s + (i - int(self.first[t]))
        if s <= p < e:
            return p
        return -1
