"""ITPACK / ELLPACK format — Table 1's "ITPACK" (refs [12, 17] in the paper).

Every row stores up to K entries in two n×K 2-D arrays (column indices and
values); K is the maximum row length.  Rows shorter than K are padded, and a
``rowlen`` array records each row's true length so enumeration never visits
padding.  The format shines when row lengths are uniform (regular stencils)
and wastes memory when one row is much longer than the rest.

Hierarchy: dense rows, then the packed entry level of each row.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseAxisLevel

__all__ = ["ELLMatrix", "EllEntryLevel"]


class EllEntryLevel(AccessLevel):
    """Entries of one ELL row: ``k in [0, rowlen[i])``; column sorted."""

    searchable = True
    sorted_enum = True
    dense = False
    search_cost = 8.0

    def __init__(self, owner: "ELLMatrix"):
        self.binds = (1,)
        self._owner = owner

    def avg_fanout(self) -> float:
        n = max(1, self._owner.shape[0])
        return self._owner.nnz / n

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        k = g.fresh("k")
        g.open(f"for {k} in range({prefix}_rowlen[{parent_pos}]):")
        g.emit(f"{axis_vars[1]} = {prefix}_colind2d[{parent_pos}, {k}]")
        return f"{parent_pos}, {k}"

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        k = g.fresh("k")
        g.emit(f"{k} = {prefix}_find_col({parent_pos}, {axis_exprs[1]})")
        g.open(f"if {k} < 0:")
        g.emit("continue")
        g.close()
        return f"{parent_pos}, {k}"


class ELLMatrix(Format):
    """ITPACK/ELLPACK storage.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    colind2d, vals2d:
        n×K index and value arrays; row i's valid entries are the first
        ``rowlen[i]`` positions, column-sorted; padding columns are 0 with
        value 0 (never enumerated).
    rowlen:
        True length of each row.
    """

    format_name = "ITPACK"

    def __init__(self, shape, colind2d, vals2d, rowlen):
        self._shape = check_shape(shape, 2)
        self.colind2d = np.ascontiguousarray(colind2d, dtype=np.int64)
        self.vals2d = np.ascontiguousarray(vals2d, dtype=np.float64)
        self.rowlen = np.asarray(rowlen, dtype=np.int64)
        if self.colind2d.shape != self.vals2d.shape:
            raise FormatError("colind2d/vals2d shape mismatch")
        if self.colind2d.ndim != 2 or self.colind2d.shape[0] != self._shape[0]:
            raise FormatError("ELL arrays must be (nrows, K)")
        if len(self.rowlen) != self._shape[0]:
            raise FormatError("rowlen length must equal nrows")
        if len(self.rowlen) and self.rowlen.max(initial=0) > self.colind2d.shape[1]:
            raise FormatError("rowlen exceeds K")

    @property
    def K(self) -> int:
        """The padded row width (max row length)."""
        return self.colind2d.shape[1]

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "ELLMatrix":
        coo = coo.canonicalized()
        n = coo.shape[0]
        counts = coo.row_counts()
        K = int(counts.max(initial=0))
        colind2d = np.zeros((n, K), dtype=np.int64)
        vals2d = np.zeros((n, K), dtype=np.float64)
        # canonical COO is row-major sorted: position within row
        offset = np.arange(coo.nnz, dtype=np.int64)
        rowstart = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=rowstart[1:])
        within = offset - rowstart[coo.row]
        colind2d[coo.row, within] = coo.col
        vals2d[coo.row, within] = coo.vals
        return cls(coo.shape, colind2d, vals2d, counts)

    def to_coo(self) -> COOMatrix:
        n, K = self.colind2d.shape
        k = np.arange(K)
        mask = k[None, :] < self.rowlen[:, None]
        r, c = np.nonzero(mask)
        return COOMatrix.from_entries(
            self._shape, r, self.colind2d[r, c], self.vals2d[r, c]
        )

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.rowlen.sum())

    def levels(self):
        return (DenseAxisLevel(0, self._shape[0]), EllEntryLevel(self))

    def storage(self, prefix: str):
        return {
            f"{prefix}_colind2d": self.colind2d,
            f"{prefix}_vals2d": self.vals2d,
            f"{prefix}_rowlen": self.rowlen,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
            f"{prefix}_find_col": self._find,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals2d[{pos}]"

    def inner_vector_view(self, prefix, parent_pos):
        return {
            "slice": ("0", f"{prefix}_rowlen[{parent_pos}]"),
            "index": {1: ("gather", f"{prefix}_colind2d[{parent_pos}][{{s}}:{{e}}]")},
            "vals": f"{prefix}_vals2d[{parent_pos}][{{s}}:{{e}}]",
            "unique_axes": frozenset({1}),  # columns unique within a row
        }

    def segmented_view(self, prefix: str):
        # zero padding makes the full 2-D product exact: padded entries
        # contribute vals2d == 0
        return {
            "kind": "dense2d",
            "index": {1: f"{prefix}_colind2d"},
            "vals": f"{prefix}_vals2d",
            "outer_axis": 0,
        }

    def _find(self, i: int, j: int) -> int:
        m = int(self.rowlen[i])
        k = int(np.searchsorted(self.colind2d[i, :m], j, side="left"))
        if k < m and self.colind2d[i, k] == j:
            return k
        return -1
