"""I-node storage (paper Fig. 2(c)): rows with identical column structure
share one column list; their values form a small dense block.

Storage, for ``T`` i-nodes:

* ``rows``, ``inodeptr`` — the row ids of each i-node (segment t is
  ``rows[inodeptr[t] : inodeptr[t+1]]``),
* ``cols``, ``colptr`` — the shared column list of each i-node,
* ``vals``, ``voff`` — per-i-node dense blocks (row-major, shape
  ``nrows_t × ncols_t``), concatenated flat.

The hand-written :meth:`matvec` batches i-nodes of equal block shape into
3-D tensors and uses one einsum per shape — the dense-block advantage that
makes BlockSolve win on multi-dof FEM matrices in Table 1.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix
from repro.graphs.inodes import find_inodes

__all__ = ["InodeMatrix"]


class _InodeOuterLevel(AccessLevel):
    """Enumerate i-nodes (internal index; binds no loop axis)."""

    binds = ()
    searchable = False
    dense = False

    def __init__(self, owner: "InodeMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(max(1, self._owner.ninodes))

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        t = g.fresh("t")
        g.open(f"for {t} in range({prefix}_ninodes):")
        return t


class _InodeRowLevel(AccessLevel):
    """Rows of one i-node.  The returned position is a *format-internal*
    compound (``"base:cs:nc"`` variable names) that only the sibling
    column level interprets — positions are opaque to the compiler."""

    binds = (0,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "InodeMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        t = max(1, self._owner.ninodes)
        return max(1.0, len(self._owner.rows) / t)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        t = parent_pos
        cs, nc = g.fresh("cs"), g.fresh("nc")
        g.emit(f"{cs} = {prefix}_colptr[{t}]")
        g.emit(f"{nc} = {prefix}_colptr[{t} + 1] - {cs}")
        r = g.fresh("r")
        g.open(f"for {r} in range({prefix}_inodeptr[{t}], {prefix}_inodeptr[{t} + 1]):")
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {prefix}_rows[{r}]")
        base = g.fresh("base")
        g.emit(f"{base} = {prefix}_voff[{t}] + ({r} - {prefix}_inodeptr[{t}]) * {nc}")
        return f"{base}:{cs}:{nc}"


class _InodeColLevel(AccessLevel):
    """The shared column list of one i-node row (position from the row
    level is the compound ``base:cs:nc``)."""

    binds = (1,)
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "InodeMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        t = max(1, self._owner.ninodes)
        return max(1.0, len(self._owner.cols) / t)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        base, cs, nc = parent_pos.split(":")
        c = g.fresh("c")
        g.open(f"for {c} in range({cs}, {cs} + {nc}):")
        if 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {prefix}_cols[{c}]")
        return f"{base} + ({c} - {cs})"

    def vector_view(self, prefix: str, parent_pos):
        parts = parent_pos.split(":") if parent_pos else []
        if len(parts) != 3:  # availability probe with a placeholder parent
            parts = [parent_pos or "0"] * 3
        base, cs, nc = parts
        return {
            "slice": (cs, f"{cs} + {nc}"),
            "index": {1: ("gather", f"{prefix}_cols[{{s}}:{{e}}]")},
            "unique_axes": frozenset({1}),
        }


class InodeMatrix(Format):
    """Matrix stored as i-node dense blocks."""

    format_name = "Inode"

    def __init__(self, shape, rows, inodeptr, cols, colptr, vals, voff):
        self._shape = check_shape(shape, 2)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.inodeptr = np.asarray(inodeptr, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.colptr = np.asarray(colptr, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.voff = np.asarray(voff, dtype=np.int64)
        T = len(self.inodeptr) - 1
        if len(self.colptr) != T + 1 or len(self.voff) != T + 1:
            raise FormatError("inodeptr/colptr/voff length mismatch")
        nr = np.diff(self.inodeptr)
        nc = np.diff(self.colptr)
        if np.any(np.diff(self.voff) != nr * nc):
            raise FormatError("voff inconsistent with block shapes")
        if self.voff[-1] != len(self.vals) if T else len(self.vals) != 0:
            raise FormatError("vals length inconsistent with voff")
        self._batch_cache = None

    @property
    def ninodes(self) -> int:
        return len(self.inodeptr) - 1

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "InodeMatrix":
        """Detect i-nodes (identical row patterns) and pack dense blocks.

        Rows with no stored entries form no i-node (they contribute no
        blocks); stored zeros inside a block are explicit.
        """
        coo = coo.canonicalized()
        from repro.formats.crs import CRSMatrix

        crs = CRSMatrix.from_coo(coo)
        nrows = coo.shape[0]
        patterns = [tuple(crs.row_slice(i)[0].tolist()) for i in range(nrows)]
        groups = [
            g for g in find_inodes(patterns) if patterns[g[0]]  # drop empty rows
        ]
        rows, inodeptr = [], [0]
        cols, colptr = [], [0]
        vals_parts, voff = [], [0]
        for g in groups:
            pat = patterns[g[0]]
            rows.extend(g)
            inodeptr.append(len(rows))
            cols.extend(pat)
            colptr.append(len(cols))
            block = np.stack([crs.row_slice(i)[1] for i in g])
            vals_parts.append(block.ravel())
            voff.append(voff[-1] + block.size)
        vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        return cls(
            coo.shape,
            np.asarray(rows, dtype=np.int64),
            np.asarray(inodeptr, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(colptr, dtype=np.int64),
            vals,
            np.asarray(voff, dtype=np.int64),
        )

    def to_coo(self) -> COOMatrix:
        r_parts, c_parts, v_parts = [], [], []
        for t in range(self.ninodes):
            rs = self.rows[self.inodeptr[t] : self.inodeptr[t + 1]]
            cs = self.cols[self.colptr[t] : self.colptr[t + 1]]
            block = self.vals[self.voff[t] : self.voff[t + 1]].reshape(len(rs), len(cs))
            rr, cc = np.meshgrid(rs, cs, indexing="ij")
            r_parts.append(rr.ravel())
            c_parts.append(cc.ravel())
            v_parts.append(block.ravel())
        if not r_parts:
            return COOMatrix(self._shape, [], [], [])
        return COOMatrix.from_entries(
            self._shape,
            np.concatenate(r_parts),
            np.concatenate(c_parts),
            np.concatenate(v_parts),
        )

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def levels(self):
        return (_InodeOuterLevel(self), _InodeRowLevel(self), _InodeColLevel(self))

    def inner_vector_view(self, prefix, parent_pos):
        view = _InodeColLevel(self).vector_view(prefix, parent_pos)
        base = (parent_pos or "0").split(":")[0]
        view["vals"] = f"{prefix}_vals[{base} : {base} + ({{e}} - {{s}})]"
        return view

    def inner_block_view(self, prefix, parent_pos):
        t = parent_pos or "0"
        return {
            "rows": ("gather", f"{prefix}_rows[{prefix}_inodeptr[{t}]:{prefix}_inodeptr[{t} + 1]]"),
            "cols": ("gather", f"{prefix}_cols[{prefix}_colptr[{t}]:{prefix}_colptr[{t} + 1]]"),
            "nrows": f"{prefix}_inodeptr[{t} + 1] - {prefix}_inodeptr[{t}]",
            "ncols": f"{prefix}_colptr[{t} + 1] - {prefix}_colptr[{t}]",
            "vals": f"{prefix}_vals[{prefix}_voff[{t}]:{prefix}_voff[{t} + 1]]",
            "unique_rows": True,
        }

    def storage(self, prefix: str):
        return {
            f"{prefix}_rows": self.rows,
            f"{prefix}_inodeptr": self.inodeptr,
            f"{prefix}_cols": self.cols,
            f"{prefix}_colptr": self.colptr,
            f"{prefix}_vals": self.vals,
            f"{prefix}_voff": self.voff,
            f"{prefix}_ninodes": self.ninodes,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    # ------------------------------------------------------------------
    # hand-written library kernels (the BlockSolve baseline)
    # ------------------------------------------------------------------
    def _batches(self):
        """Group i-nodes by block shape; cache stacked tensors per shape."""
        if self._batch_cache is None:
            by_shape: dict[tuple[int, int], list[int]] = {}
            nr = np.diff(self.inodeptr)
            nc = np.diff(self.colptr)
            for t in range(self.ninodes):
                by_shape.setdefault((int(nr[t]), int(nc[t])), []).append(t)
            batches = []
            for (r, c), ts in sorted(by_shape.items()):
                V = np.stack(
                    [
                        self.vals[self.voff[t] : self.voff[t + 1]].reshape(r, c)
                        for t in ts
                    ]
                )
                R = np.stack(
                    [self.rows[self.inodeptr[t] : self.inodeptr[t + 1]] for t in ts]
                )
                C = np.stack(
                    [self.cols[self.colptr[t] : self.colptr[t + 1]] for t in ts]
                )
                batches.append((V, R, C))
            self._batch_cache = batches
        return self._batch_cache

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y (+)= A·x using shape-batched dense block products."""
        x = np.asarray(x)
        y = out if out is not None else np.zeros(self._shape[0])
        for V, R, C in self._batches():
            yb = np.einsum("tij,tj->ti", V, x[C])
            np.add.at(y, R, yb)
        return y

    def split_by_columns(self, keep_mask: np.ndarray) -> tuple["InodeMatrix", "InodeMatrix"]:
        """Split into (A_kept, A_rest) by a boolean column predicate.

        Each i-node's column list is partitioned by ``keep_mask``; the
        blocks are sliced accordingly.  This is how BlockSolve separates
        the off-diagonal sparse part into the portion touching *local*
        columns of x and the portion touching *non-local* columns
        (A_SL / A_SNL in the paper, Sec. 3.3).
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if len(keep_mask) != self._shape[1]:
            raise FormatError("mask length must equal ncols")

        def build(select) -> "InodeMatrix":
            rows, inodeptr = [], [0]
            cols, colptr = [], [0]
            vals_parts, voff = [], [0]
            for t in range(self.ninodes):
                ct = self.cols[self.colptr[t] : self.colptr[t + 1]]
                sel = select(keep_mask[ct])
                if not sel.any():
                    continue
                rt = self.rows[self.inodeptr[t] : self.inodeptr[t + 1]]
                block = self.vals[self.voff[t] : self.voff[t + 1]].reshape(
                    len(rt), len(ct)
                )[:, sel]
                rows.extend(rt.tolist())
                inodeptr.append(len(rows))
                cols.extend(ct[sel].tolist())
                colptr.append(len(cols))
                vals_parts.append(block.ravel())
                voff.append(voff[-1] + block.size)
            vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
            return InodeMatrix(
                self._shape,
                np.asarray(rows, dtype=np.int64),
                np.asarray(inodeptr, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
                np.asarray(colptr, dtype=np.int64),
                vals,
                np.asarray(voff, dtype=np.int64),
            )

        return build(lambda m: m), build(lambda m: ~m)

    def column_support(self) -> np.ndarray:
        """Sorted unique column indices referenced by any i-node."""
        return np.unique(self.cols)

    def select_rows(self, keep_mask: np.ndarray, row_map: np.ndarray, new_nrows: int) -> "InodeMatrix":
        """Restrict to rows with ``keep_mask`` true, renumbered by
        ``row_map`` (new local offsets).  I-nodes whose rows straddle the
        predicate are split implicitly (kept rows stay one i-node — their
        shared column list is untouched).  Used to carve each processor's
        off-diagonal fragment out of the global i-node structure."""
        keep_mask = np.asarray(keep_mask, dtype=bool)
        row_map = np.asarray(row_map, dtype=np.int64)
        rows, inodeptr = [], [0]
        cols, colptr = [], [0]
        vals_parts, voff = [], [0]
        for t in range(self.ninodes):
            rt = self.rows[self.inodeptr[t] : self.inodeptr[t + 1]]
            sel = keep_mask[rt]
            if not sel.any():
                continue
            ct = self.cols[self.colptr[t] : self.colptr[t + 1]]
            block = self.vals[self.voff[t] : self.voff[t + 1]].reshape(
                len(rt), len(ct)
            )[sel, :]
            rows.extend(row_map[rt[sel]].tolist())
            inodeptr.append(len(rows))
            cols.extend(ct.tolist())
            colptr.append(len(cols))
            vals_parts.append(block.ravel())
            voff.append(voff[-1] + block.size)
        vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        return InodeMatrix(
            (new_nrows, self._shape[1]),
            np.asarray(rows, dtype=np.int64),
            np.asarray(inodeptr, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(colptr, dtype=np.int64),
            vals,
            np.asarray(voff, dtype=np.int64),
        )

    def remap_columns(self, col_map: np.ndarray, new_ncols: int) -> "InodeMatrix":
        """Renumber column indices through ``col_map`` (e.g. global →
        local x offsets, or global → ghost slots)."""
        col_map = np.asarray(col_map, dtype=np.int64)
        cols = col_map[self.cols]
        if len(cols) and (cols.min() < 0 or cols.max() >= new_ncols):
            raise FormatError("column remap out of range")
        return InodeMatrix(
            (self._shape[0], new_ncols),
            self.rows,
            self.inodeptr,
            cols,
            self.colptr,
            self.vals,
            self.voff,
        )
