"""Jagged Diagonal (JDIAG) storage — Table 1's "JDiag" (Saad [18]).

Rows are permuted by decreasing row length; the d-th *jagged diagonal*
collects the d-th stored entry of every (permuted) row that has one, giving
long contiguous vectors even when row lengths vary — the classic format for
vector machines.

This format embeds an index translation (paper Sec. 2.2): the stored row
position r is a *permuted* index, and the view exposes the original row
``i = PERM(r)``.  The access methods hide the translation, exactly the
"relations are views of the data structures" discipline.

Storage arrays:

* ``perm``   — permuted position -> original row index,
* ``jdptr``  — ``njd + 1`` pointers into jdcol/jdval,
* ``jdcol``, ``jdval`` — the jagged diagonals, concatenated.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape
from repro.formats.coo import COOMatrix

__all__ = ["JaggedDiagonalMatrix", "JDOuterLevel", "JDRunLevel"]


class JDOuterLevel(AccessLevel):
    """Enumerate jagged diagonals (internal index; binds no loop axis)."""

    binds = ()
    searchable = False
    sorted_enum = True
    dense = False

    def __init__(self, owner: "JaggedDiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(max(1, self._owner.njd))

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        d = g.fresh("d")
        g.open(f"for {d} in range({prefix}_njd):")
        return d


class JDRunLevel(AccessLevel):
    """Entries of one jagged diagonal: permuted rows 0..len_d-1."""

    binds = (0, 1)
    searchable = False  # enumeration-only, like the real JDIAG kernels
    sorted_enum = False  # i follows the permutation: unsorted
    dense = False

    def __init__(self, owner: "JaggedDiagonalMatrix"):
        self._owner = owner

    def avg_fanout(self) -> float:
        nd = max(1, self._owner.njd)
        return self._owner.nnz / nd

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        p = g.fresh("p")
        g.open(f"for {p} in range({prefix}_jdptr[{parent_pos}], {prefix}_jdptr[{parent_pos} + 1]):")
        if 0 in axis_vars:
            g.emit(f"{axis_vars[0]} = {prefix}_perm[{p} - {prefix}_jdptr[{parent_pos}]]")
        if 1 in axis_vars:
            g.emit(f"{axis_vars[1]} = {prefix}_jdcol[{p}]")
        return p


class JaggedDiagonalMatrix(Format):
    """Jagged Diagonal storage."""

    format_name = "JDiag"

    def __init__(self, shape, perm, jdptr, jdcol, jdval):
        self._shape = check_shape(shape, 2)
        self.perm = np.asarray(perm, dtype=np.int64)
        self.jdptr = np.asarray(jdptr, dtype=np.int64)
        self.jdcol = np.asarray(jdcol, dtype=np.int64)
        self.jdval = np.asarray(jdval, dtype=np.float64)
        if len(self.perm) != self._shape[0]:
            raise FormatError("perm must have one entry per row")
        if len(self.perm) and sorted(self.perm.tolist()) != list(range(self._shape[0])):
            raise FormatError("perm is not a permutation of the rows")
        if self.jdptr[0] != 0 or (len(self.jdptr) and self.jdptr[-1] != len(self.jdval)):
            raise FormatError("jdptr must start at 0 and end at nnz")
        if np.any(np.diff(self.jdptr) > 0) and np.any(np.diff(-np.diff(self.jdptr)) < -0):
            # jagged diagonals must have non-increasing lengths
            lens = np.diff(self.jdptr)
            if np.any(lens[1:] > lens[:-1]):
                raise FormatError("jagged diagonal lengths must be non-increasing")
        if len(self.jdcol) != len(self.jdval):
            raise FormatError("jdcol/jdval length mismatch")

    @property
    def njd(self) -> int:
        return len(self.jdptr) - 1

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "JaggedDiagonalMatrix":
        coo = coo.canonicalized()
        n = coo.shape[0]
        counts = coo.row_counts()
        perm = np.argsort(-counts, kind="stable").astype(np.int64)
        maxlen = int(counts.max(initial=0))
        rowstart = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=rowstart[1:])
        jdptr = [0]
        jdcol_parts, jdval_parts = [], []
        for d in range(maxlen):
            rows = perm[counts[perm] > d]  # prefix of the permutation
            pos = rowstart[rows] + d
            jdcol_parts.append(coo.col[pos])
            jdval_parts.append(coo.vals[pos])
            jdptr.append(jdptr[-1] + len(rows))
        jdcol = np.concatenate(jdcol_parts) if jdcol_parts else np.empty(0, dtype=np.int64)
        jdval = np.concatenate(jdval_parts) if jdval_parts else np.empty(0)
        return cls(coo.shape, perm, np.asarray(jdptr, dtype=np.int64), jdcol, jdval)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        for d in range(self.njd):
            s, e = int(self.jdptr[d]), int(self.jdptr[d + 1])
            rows.append(self.perm[: e - s])
            cols.append(self.jdcol[s:e])
            vals.append(self.jdval[s:e])
        if not rows:
            return COOMatrix(self._shape, [], [], [])
        return COOMatrix.from_entries(
            self._shape, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
        )

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.jdval)

    def levels(self):
        return (JDOuterLevel(self), JDRunLevel(self))

    def storage(self, prefix: str):
        return {
            f"{prefix}_perm": self.perm,
            f"{prefix}_jdptr": self.jdptr,
            f"{prefix}_jdcol": self.jdcol,
            f"{prefix}_jdval": self.jdval,
            f"{prefix}_njd": self.njd,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_n1": self._shape[1],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_jdval[{pos}]"

    def inner_vector_view(self, prefix, parent_pos):
        d = parent_pos
        return {
            "slice": (f"{prefix}_jdptr[{d}]", f"{prefix}_jdptr[{d} + 1]"),
            "index": {
                0: ("gather", f"{prefix}_perm[:({{e}} - {{s}})]"),
                1: ("gather", f"{prefix}_jdcol[{{s}}:{{e}}]"),
            },
            "vals": f"{prefix}_jdval[{{s}}:{{e}}]",
            # each row occurs at most once per jagged diagonal
            "unique_axes": frozenset({0}),
        }
