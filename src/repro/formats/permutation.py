"""Permutations as index-translation relations (paper Sec. 2.2).

A permutation P is stored as two integer arrays — PERM and IPERM, the map
and its inverse — and viewed as a relation of ⟨i, i'⟩ tuples, where i is
the original index and i' the permuted one.  The compiler joins such a
relation into a query when an array's storage is indexed by permuted
indices (paper Eq. 6); the distribution machinery reuses the same idea for
global-to-local index translation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.relational import Relation

__all__ = ["Permutation"]


class Permutation:
    """A bijection on ``range(n)``.

    ``perm[i]`` is the permuted index i' of original index i;
    ``iperm[i']`` recovers i.  Invariant: ``iperm[perm[i]] == i``.
    """

    def __init__(self, perm):
        self.perm = np.asarray(perm, dtype=np.int64)
        n = len(self.perm)
        if sorted(self.perm.tolist()) != list(range(n)):
            raise FormatError("not a permutation of range(n)")
        self.iperm = np.empty(n, dtype=np.int64)
        self.iperm[self.perm] = np.arange(n)

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n))

    @classmethod
    def random(cls, n: int, rng=None) -> "Permutation":
        return cls(np.random.default_rng(rng).permutation(n))

    @classmethod
    def from_inverse(cls, iperm) -> "Permutation":
        iperm = np.asarray(iperm, dtype=np.int64)
        perm = np.empty(len(iperm), dtype=np.int64)
        perm[iperm] = np.arange(len(iperm))
        return cls(perm)

    def __len__(self) -> int:
        return len(self.perm)

    def __call__(self, i):
        """Apply: original index (array ok) -> permuted index."""
        return self.perm[i]

    def inverse(self) -> "Permutation":
        return Permutation(self.iperm)

    def compose(self, other: "Permutation") -> "Permutation":
        """(self ∘ other): first apply ``other``, then ``self``."""
        if len(self) != len(other):
            raise FormatError("cannot compose permutations of different sizes")
        return Permutation(self.perm[other.perm])

    def apply_to_vector(self, x: np.ndarray) -> np.ndarray:
        """y with ``y[perm[i]] = x[i]`` (moves element i to its new slot)."""
        x = np.asarray(x)
        out = np.empty_like(x)
        out[self.perm] = x
        return out

    def as_relation(self, old_field: str = "i", new_field: str = "ip") -> Relation:
        """The ⟨i, i'⟩ relation view of the permutation."""
        n = len(self.perm)
        return Relation([old_field, new_field], {old_field: np.arange(n), new_field: self.perm})

    def storage(self, prefix: str):
        """Storage bindings for generated code (PERM and IPERM arrays)."""
        return {f"{prefix}_perm": self.perm, f"{prefix}_iperm": self.iperm}

    def __eq__(self, other):
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self.perm, other.perm)

    def __hash__(self):
        raise TypeError("Permutation is unhashable")

    def __repr__(self):
        return f"Permutation(n={len(self.perm)})"
