"""Permuted matrix views (paper Sec. 2.2, Eq. 6).

"Suppose rows of the matrix in our example have been permuted using P.
Then we can view A as a relation of ⟨i', j, a⟩ tuples and the query for
sparse matrix-vector product is σ_P( I ⋈ X ⋈ Y ⋈ P(i,i') ⋈ A(i',j,a) )."

:class:`PermutedMatrix` realizes the join with the permutation relation
*inside the access methods*: the stored matrix is indexed by permuted
indices, and the view translates on the fly —

* enumeration yields stored indices and maps them back through IPERM,
* searches map the requested view index through PERM first,
* vectorized views wrap the stored index arrays in an IPERM gather.

The wrapper composes with ANY position-based sparse format and needs no
compiler changes — the second extensibility demonstration (the first is
``examples/custom_format.py``).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format
from repro.formats.coo import COOMatrix
from repro.formats.permutation import Permutation

__all__ = ["PermutedMatrix"]


class _PermutedLevel(AccessLevel):
    """Wraps a base level, translating permuted axes through PERM/IPERM."""

    def __init__(self, inner: AccessLevel, permuted_axes: frozenset[int]):
        self._inner = inner
        self._permuted = permuted_axes
        self.binds = inner.binds
        self.enumerable = inner.enumerable
        self.searchable = inner.searchable
        self.dense = inner.dense
        self.search_cost = inner.search_cost + 1.0
        # translation destroys sortedness on permuted axes
        self.sorted_enum = inner.sorted_enum and not (
            set(inner.binds) & permuted_axes
        )
        self.mergeable = False

    def avg_fanout(self) -> float:
        return self._inner.avg_fanout()

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        inner_vars: dict[int, str] = {}
        translate: list[tuple[int, str, str]] = []
        for a, v in axis_vars.items():
            if a in self._permuted:
                tmp = g.fresh(f"st_{v}")
                inner_vars[a] = tmp
                translate.append((a, tmp, v))
            else:
                inner_vars[a] = v
        pos = self._inner.emit_enumerate(g, prefix, parent_pos, inner_vars)
        for a, tmp, v in translate:
            g.emit(f"{v} = {prefix}_iperm{a}[{tmp}]")
        return pos

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        inner_exprs = {
            a: (f"{prefix}_perm{a}[{e}]" if a in self._permuted else e)
            for a, e in axis_exprs.items()
        }
        return self._inner.emit_search(g, prefix, parent_pos, inner_exprs)


class PermutedMatrix(Format):
    """A sparse matrix viewed through row/column permutations.

    ``view[i, j] == stored[row_perm(i), col_perm(j)]``.  The base format
    must load values by *position* (every sparse format here does; dense
    formats are excluded — permute those with numpy directly).
    """

    format_name = "Permuted"

    def __init__(self, base: Format, row_perm: Permutation | None = None, col_perm: Permutation | None = None):
        if base.structurally_dense:
            raise FormatError("PermutedMatrix wraps sparse (position-based) formats")
        if base.ndim != 2:
            raise FormatError("PermutedMatrix wraps matrices")
        if row_perm is not None and len(row_perm) != base.shape[0]:
            raise FormatError("row permutation size mismatch")
        if col_perm is not None and len(col_perm) != base.shape[1]:
            raise FormatError("column permutation size mismatch")
        self.base = base
        self.perms: dict[int, Permutation] = {}
        if row_perm is not None:
            self.perms[0] = row_perm
        if col_perm is not None:
            self.perms[1] = col_perm
        self._axes = frozenset(self.perms)

    @classmethod
    def build(cls, base_cls, coo: COOMatrix, row_perm: Permutation | None = None, col_perm: Permutation | None = None):
        """Store ``coo`` (given in VIEW coordinates) permuted, wrapped in
        the view that recovers the original indexing."""
        stored = coo.permuted(
            row_perm.perm if row_perm else None,
            col_perm.perm if col_perm else None,
        )
        return cls(base_cls.from_coo(stored), row_perm, col_perm)

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.base.shape

    @property
    def nnz(self) -> int:
        return self.base.nnz

    def levels(self):
        return tuple(
            _PermutedLevel(lv, self._axes & set(lv.binds)) if (self._axes & set(lv.binds)) else lv
            for lv in self.base.levels()
        )

    def spec(self) -> tuple:
        # the generated code depends on the wrapped format AND on which
        # axes go through PERM/IPERM — two views differing in either must
        # not share a cached kernel
        return (type(self).__qualname__, self.base.spec(), tuple(sorted(self._axes)))

    def storage(self, prefix: str):
        out = dict(self.base.storage(prefix))
        for a, p in self.perms.items():
            out[f"{prefix}_perm{a}"] = p.perm
            out[f"{prefix}_iperm{a}"] = p.iperm
        return out

    def emit_load(self, g, prefix, axis_vars, pos):
        # position-based load: axis variables are irrelevant to the base
        return self.base.emit_load(g, prefix, {}, pos)

    def inner_vector_view(self, prefix, parent_pos):
        view = self.base.inner_vector_view(prefix, parent_pos)
        if view is None:
            return None
        out = dict(view)
        index = dict(view.get("index", {}))
        unique = set(view.get("unique_axes", frozenset()))
        for a in list(index):
            if a in self._axes:
                kind, payload = index[a]
                if kind == "affine":
                    payload = f"np.arange({payload}, {payload} + ({{e}} - {{s}}))"
                index[a] = ("gather", f"{prefix}_iperm{a}[{payload}]")
                # a bijection preserves duplicate-freedom
        out["index"] = index
        out["unique_axes"] = frozenset(unique)
        return out

    def to_coo(self) -> COOMatrix:
        stored = self.base.to_coo()
        return stored.permuted(
            self.perms[0].iperm if 0 in self.perms else None,
            self.perms[1].iperm if 1 in self.perms else None,
        )

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()
