"""Compressed sparse vector.

Stores the nonzero positions (sorted) and their values.  Used as the sparse
``x`` in the paper's opening example (``y = A·x`` with both A and x sparse),
where the planner must *search* x or merge it against A's column
enumeration instead of a dense O(1) lookup.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape

__all__ = ["SparseVector", "SparseVectorLevel"]


class SparseVectorLevel(AccessLevel):
    """The single level of a compressed vector: sorted stored indices."""

    searchable = True
    sorted_enum = True
    dense = False
    search_cost = 8.0
    mergeable = True

    def __init__(self, owner: "SparseVector"):
        self.binds = (0,)
        self._owner = owner

    def avg_fanout(self) -> float:
        return float(self._owner.nnz)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        p = g.fresh("p")
        g.open(f"for {p} in range({prefix}_nnz):")
        g.emit(f"{axis_vars[0]} = {prefix}_ind[{p}]")
        return p

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        p = g.fresh("p")
        g.emit(f"{p} = {prefix}_find({axis_exprs[0]})")
        g.open(f"if {p} < 0:")
        g.emit("continue")
        g.close()
        return p

    def emit_merge(self, g: Emitter, prefix: str, parent_pos, key_expr: str, cursor: str) -> str:
        g.open(f"while {cursor} < {prefix}_nnz and {prefix}_ind[{cursor}] < {key_expr}:")
        g.emit(f"{cursor} += 1")
        g.close()
        g.open(f"if {cursor} >= {prefix}_nnz:")
        g.emit("break")
        g.close()
        g.open(f"if {prefix}_ind[{cursor}] != {key_expr}:")
        g.emit("continue")
        g.close()
        return cursor

    def vector_view(self, prefix: str, parent_pos):
        return {
            "slice": ("0", f"{prefix}_nnz"),
            "index": {0: ("gather", f"{prefix}_ind[{{s}}:{{e}}]")},
        }


class SparseVector(Format):
    """A compressed 1-D vector: sorted indices + values."""

    format_name = "SparseVector"

    def __init__(self, n, ind, vals):
        self._shape = check_shape((n,), 1)
        self.ind = np.asarray(ind, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.ind) != len(self.vals):
            raise FormatError("ind/vals length mismatch")
        if len(self.ind):
            if np.any(np.diff(self.ind) <= 0):
                raise FormatError("indices must be strictly increasing")
            if self.ind[0] < 0 or self.ind[-1] >= self._shape[0]:
                raise FormatError("index out of bounds")

    @classmethod
    def from_dense(cls, dense) -> "SparseVector":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise FormatError("from_dense expects a 1-D array")
        idx = np.flatnonzero(dense)
        return cls(len(dense), idx, dense[idx])

    @classmethod
    def from_entries(cls, n, ind, vals) -> "SparseVector":
        """Canonicalize possibly-unsorted, possibly-duplicated entries."""
        ind = np.asarray(ind, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if len(ind) == 0:
            return cls(n, ind, vals)
        order = np.argsort(ind, kind="stable")
        ind, vals = ind[order], vals[order]
        new = np.empty(len(ind), dtype=bool)
        new[0] = True
        new[1:] = ind[1:] != ind[:-1]
        pos = np.flatnonzero(new)
        return cls(n, ind[pos], np.add.reduceat(vals, pos))

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self._shape[0])
        out[self.ind] = self.vals
        return out

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def levels(self):
        return (SparseVectorLevel(self),)

    def storage(self, prefix: str):
        return {
            f"{prefix}_ind": self.ind,
            f"{prefix}_vals": self.vals,
            f"{prefix}_nnz": self.nnz,
            f"{prefix}_n0": self._shape[0],
            f"{prefix}_find": self._find,
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{pos}]"

    def _find(self, i: int) -> int:
        p = int(np.searchsorted(self.ind, i, side="left"))
        if p < len(self.ind) and self.ind[p] == i:
            return p
        return -1
