"""A vector viewed through an index-translation relation (paper Sec. 2.2).

``TranslatedVector`` presents a *global* index space while storing values
in a compact local buffer: every access goes through ``map`` —
``x[j] == vals[map[j]]``.  This is exactly the data structure the paper's
*naive* (fully global) executor ends up with: "redundant global-to-local
translation ... introduces an extra level of indirection in the final code
even for the local references to x".  Compiled kernels gathering from a
TranslatedVector pay one extra gather per element — the measured ~10%
executor penalty of the Bernoulli (naive) column in Table 2.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import AccessLevel, Emitter, Format, check_shape

__all__ = ["TranslatedVector"]


class _TranslatedAxisLevel(AccessLevel):
    """Dense global axis whose positions go through the translation map."""

    enumerable = True
    searchable = True
    sorted_enum = True
    dense = True
    search_cost = 2.0  # one extra indirection vs a direct dense axis

    def __init__(self, extent: int):
        self.binds = (0,)
        self.extent = int(extent)

    def avg_fanout(self) -> float:
        return float(self.extent)

    def emit_enumerate(self, g: Emitter, prefix: str, parent_pos, axis_vars: Mapping[int, str]) -> str:
        v = axis_vars[0]
        g.open(f"for {v} in range({prefix}_n0):")
        return v

    def emit_search(self, g: Emitter, prefix: str, parent_pos, axis_exprs: Mapping[int, str]) -> str:
        return axis_exprs[0]


class TranslatedVector(Format):
    """A dense global vector stored compactly behind a translation map.

    Parameters
    ----------
    nglobal:
        Extent of the global index space the view presents.
    vals:
        The compact value buffer (e.g. a ghost buffer).
    index_map:
        ``nglobal``-long array mapping global index -> buffer slot.
    """

    format_name = "TranslatedVector"
    writable = False
    structurally_dense = True

    def __init__(self, nglobal: int, vals, index_map):
        self._shape = check_shape((nglobal,), 1)
        self.vals = np.ascontiguousarray(vals, dtype=np.float64)
        self.map = np.ascontiguousarray(index_map, dtype=np.int64)
        if self.vals.ndim != 1 or self.map.ndim != 1:
            raise FormatError("TranslatedVector expects 1-D vals and map")
        if len(self.map) != nglobal:
            raise FormatError("index map must cover the global extent")
        if len(self.map) and len(self.vals) and (
            self.map.min() < 0 or self.map.max() >= len(self.vals)
        ):
            raise FormatError("index map points outside the value buffer")

    @property
    def shape(self):
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals[self.map])) if len(self.map) else 0

    def levels(self):
        return (_TranslatedAxisLevel(self._shape[0]),)

    def storage(self, prefix: str):
        return {
            f"{prefix}_vals": self.vals,
            f"{prefix}_map": self.map,
            f"{prefix}_n0": self._shape[0],
        }

    def emit_load(self, g, prefix, axis_vars, pos):
        return f"{prefix}_vals[{prefix}_map[{axis_vars[0]}]]"

    def emit_load_vec(self, prefix, axis_exprs):
        # the extra level of indirection, in vector form
        return f"{prefix}_vals[{prefix}_map[{axis_exprs[0]}]]"

    def to_dense(self) -> np.ndarray:
        return self.vals[self.map]
