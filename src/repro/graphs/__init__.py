"""Graph algorithms backing the BlockSolve format (paper Sec. 1, Fig. 2).

The BlockSolve library exploits structure of PDE stiffness matrices with
multiple degrees of freedom per discretization point:

* *i-nodes* — groups of rows with identical column structure
  (:func:`~repro.graphs.inodes.find_inodes`),
* *cliques* — mutually adjacent vertex groups; each grid point's dof rows
  form one (:func:`~repro.graphs.cliques.clique_partition`),
* the *contracted graph* induced by the cliques is greedily colored
  (:func:`~repro.graphs.coloring.greedy_color`), and the matrix reordered
  color-by-color so each color's diagonal blocks are independent.
"""

from repro.graphs.adjacency import adjacency_sets, contracted_graph
from repro.graphs.inodes import find_inodes
from repro.graphs.cliques import clique_partition
from repro.graphs.coloring import greedy_color, color_classes

__all__ = [
    "adjacency_sets",
    "contracted_graph",
    "find_inodes",
    "clique_partition",
    "greedy_color",
    "color_classes",
]
