"""Adjacency construction from sparse matrix patterns."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["adjacency_sets", "contracted_graph"]


def adjacency_sets(coo, include_self: bool = True) -> list[frozenset[int]]:
    """The symmetrized structural adjacency of a square matrix.

    Vertex i is adjacent to j iff A[i,j] or A[j,i] is stored.  With
    ``include_self`` the vertex itself is always in its set — the right
    convention for i-node detection (two rows with identical off-diagonal
    structure but differing diagonals are still "identical nodes" of the
    underlying graph).
    """
    if coo.shape[0] != coo.shape[1]:
        raise ReproError("adjacency requires a square matrix")
    n = coo.shape[0]
    adj: list[set[int]] = [set() for _ in range(n)]
    for i, j in zip(coo.row.tolist(), coo.col.tolist()):
        adj[i].add(j)
        adj[j].add(i)
    if include_self:
        for i in range(n):
            adj[i].add(i)
    return [frozenset(s) for s in adj]


def contracted_graph(adj: list[frozenset[int]], groups: list[list[int]]) -> list[set[int]]:
    """Contract vertex ``groups`` (a partition) into super-vertices.

    Returns the adjacency (as sets of group ids, self-loops removed) of the
    contracted graph: groups g and h are adjacent iff some member of g is
    adjacent to some member of h.
    """
    n = len(adj)
    group_of = -np.ones(n, dtype=np.int64)
    for gid, members in enumerate(groups):
        for v in members:
            if group_of[v] != -1:
                raise ReproError(f"vertex {v} in two groups")
            group_of[v] = gid
    if np.any(group_of < 0):
        raise ReproError("groups do not cover all vertices")
    cadj: list[set[int]] = [set() for _ in groups]
    for gid, members in enumerate(groups):
        for v in members:
            for w in adj[v]:
                h = int(group_of[w])
                if h != gid:
                    cadj[gid].add(h)
    return cadj
