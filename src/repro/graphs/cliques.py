"""Clique partition of the matrix graph (paper Fig. 2(a), dashed boxes).

BlockSolve partitions the vertices into cliques — mutually adjacent groups.
In a d-dof finite-element matrix, the d rows of one discretization point
have identical adjacency and are mutually adjacent, so the natural
partition starts from the i-node groups; any group that is not actually a
clique is refined greedily.
"""

from __future__ import annotations

__all__ = ["clique_partition"]


def _is_clique(adj: list[frozenset[int]], members: list[int]) -> bool:
    s = set(members)
    return all(s <= adj[v] for v in members)  # adj includes self


def clique_partition(
    adj: list[frozenset[int]], seed_groups: list[list[int]] | None = None
) -> list[list[int]]:
    """Partition vertices into cliques.

    Parameters
    ----------
    adj:
        Symmetrized adjacency with self-loops
        (:func:`~repro.graphs.adjacency.adjacency_sets`).
    seed_groups:
        Optional initial partition (typically the i-node groups).  Groups
        that are already cliques are kept whole; the rest are refined by a
        greedy first-fit pass.

    Returns
    -------
    A list of cliques (each a sorted list of vertex ids), ordered by their
    smallest member, covering every vertex exactly once.
    """
    n = len(adj)
    if seed_groups is None:
        seed_groups = [[v] for v in range(n)]
    cliques: list[list[int]] = []
    for group in seed_groups:
        if _is_clique(adj, group):
            cliques.append(sorted(group))
            continue
        # greedy first-fit refinement within the group
        sub: list[list[int]] = []
        for v in sorted(group):
            placed = False
            for c in sub:
                if all(v in adj[w] for w in c):
                    c.append(v)
                    placed = True
                    break
            if not placed:
                sub.append([v])
        cliques.extend(sorted(c) for c in sub)
    cliques.sort(key=lambda c: c[0])
    covered = sorted(v for c in cliques for v in c)
    assert covered == list(range(n)), "clique partition must cover all vertices"
    return cliques
