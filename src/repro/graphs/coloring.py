"""Greedy graph coloring of the contracted clique graph (paper Fig. 2(b)).

BlockSolve colors the graph induced by the cliques so that cliques of one
color share no matrix entries; the matrix is then reordered color by color
and, within a color, the rows are dealt out to the processors.  A simple
largest-degree-first greedy coloring reproduces the structure the library
relies on (the library itself uses a parallel heuristic coloring; the
*number* of colors only affects constant factors).
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_color", "color_classes"]


def greedy_color(adj: list[set[int]] | list[frozenset[int]], order: str = "degree") -> np.ndarray:
    """Greedy vertex coloring.

    Parameters
    ----------
    adj:
        Adjacency sets (self-loops ignored).
    order:
        ``"degree"`` — largest degree first (fewer colors in practice),
        ``"natural"`` — vertex id order (deterministic baseline).

    Returns
    -------
    ``colors`` array, ``colors[v]`` ∈ {0, 1, ...}; adjacent vertices always
    receive different colors.
    """
    n = len(adj)
    if order == "degree":
        seq = sorted(range(n), key=lambda v: (-len(adj[v]), v))
    elif order == "natural":
        seq = list(range(n))
    else:
        raise ValueError(f"unknown order {order!r}")
    colors = -np.ones(n, dtype=np.int64)
    for v in seq:
        used = {int(colors[w]) for w in adj[v] if w != v and colors[w] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def color_classes(colors: np.ndarray) -> list[list[int]]:
    """Group vertex ids by color: ``classes[c]`` lists vertices of color c."""
    colors = np.asarray(colors)
    k = int(colors.max(initial=-1)) + 1
    return [np.flatnonzero(colors == c).tolist() for c in range(k)]
