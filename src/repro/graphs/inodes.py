"""I-node detection: rows with identical column structure (paper Fig. 2(c)).

Stiffness matrices from multi-component finite-element models have groups
of rows with *identical* column patterns — one group per discretization
point, of size equal to the number of degrees of freedom.  Gathering each
group's values into a small dense matrix reduces index storage (one column
list serves the whole group) and turns SpMV inner loops into dense GEMV.
"""

from __future__ import annotations

import numpy as np

__all__ = ["find_inodes"]


def find_inodes(patterns: list[frozenset[int]] | list[tuple[int, ...]]) -> list[list[int]]:
    """Partition row ids into groups with identical patterns.

    Parameters
    ----------
    patterns:
        For each row, its set (or sorted tuple) of column indices.

    Returns
    -------
    Groups of row ids, each sorted ascending; groups ordered by their
    smallest member.  Every row appears in exactly one group.
    """
    buckets: dict[tuple[int, ...], list[int]] = {}
    for i, pat in enumerate(patterns):
        key = tuple(sorted(pat)) if not isinstance(pat, tuple) else pat
        buckets.setdefault(key, []).append(i)
    groups = [sorted(v) for v in buckets.values()]
    groups.sort(key=lambda g: g[0])
    return groups
