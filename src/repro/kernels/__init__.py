"""The "extensible sparse BLAS": user-facing kernels produced by the compiler.

The paper argues the compiler "provid[es] an extensible set of sparse BLAS
codes": instead of 36 hand-written versions of every operation for every
format pair, each operation is one dense loop nest compiled on demand
against whatever formats the data happens to be in.  This package wraps the
common operations:

* :func:`~repro.kernels.spmv.spmv` — y (+)= A·x,
* :func:`~repro.kernels.spmv.spmv_transpose` — y (+)= Aᵀ·x,
* :func:`~repro.kernels.spmm.spmm` — C (+)= A·B with B a skinny dense
  matrix (the paper's "product of a sparse matrix and a skinny dense
  matrix", Sec. 6),
* :func:`~repro.kernels.vecops.axpy` / :func:`~repro.kernels.vecops.dot` —
  compiled vector kernels (mostly demonstration; the solvers use numpy
  directly for vector arithmetic, as a real code would).

Every function accepts any matrix :class:`~repro.formats.base.Format`;
kernels are compiled once per (operation, format class) and cached.
"""

from repro.kernels.spmv import spmv, spmv_transpose
from repro.kernels.spmm import spmm
from repro.kernels.vecops import axpy, dot, scale

__all__ = ["spmv", "spmv_transpose", "spmm", "axpy", "dot", "scale"]
