"""Compiled sparse × dense (skinny) matrix product."""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_kernel
from repro.formats.base import Format
from repro.formats.dense import DenseMatrix
from repro.observability.trace import span

__all__ = ["spmm", "SPMM_SRC"]

SPMM_SRC = (
    "for i in 0:n { for j in 0:m { for k in 0:p { "
    "C[i,k] += A[i,j] * B[j,k] } } }"
)


def spmm(
    A: Format,
    B,
    C=None,
    vectorize: bool | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """C (+)= A·B where A is sparse (any format) and B dense.

    This is "the product of a sparse matrix and a skinny dense matrix" the
    paper names as a core iterative-solver operation (Sec. 6).  B may also
    be another sparse format: the planner chains drivers (SpGEMM into a
    dense result).  ``backend`` selects the executor backend.
    """
    Bf = B if isinstance(B, Format) else DenseMatrix(np.asarray(B, dtype=np.float64))
    cv = np.zeros((A.shape[0], Bf.shape[1])) if C is None else C
    Cf = DenseMatrix(cv) if not isinstance(cv, DenseMatrix) else cv
    k = compile_kernel(
        SPMM_SRC, {"A": A, "B": Bf, "C": Cf}, vectorize=vectorize, backend=backend
    )
    with span(
        "kernels.spmm",
        format=type(A).__name__,
        backend=k.backend,
        nnz=A.nnz,
        width=Bf.shape[1],
    ):
        k(A=A, B=Bf, C=Cf)
    return Cf.vals
