"""Compiled sparse matrix-vector products."""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_kernel
from repro.formats.base import Format
from repro.formats.blocksolve import BlockSolveMatrix
from repro.formats.dense import DenseVector
from repro.observability import metrics as _metrics
from repro.observability.trace import span

__all__ = ["spmv", "spmv_transpose", "SPMV_SRC", "SPMV_T_SRC"]

#: The paper's running example, verbatim (Sec. 2).
SPMV_SRC = "for i in 0:n { for j in 0:m { Y[i] += A[i,j] * X[j] } }"
SPMV_T_SRC = "for i in 0:n { for j in 0:m { Y[j] += A[i,j] * X[i] } }"


def spmv(
    A: Format,
    x,
    y=None,
    vectorize: bool | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """y (+)= A·x for any matrix format.

    ``x`` is a dense 1-D array (or DenseVector); pass ``y`` to accumulate
    in place, otherwise a zero vector is allocated.  ``backend`` selects
    the executor backend (``"vectorized"`` default / ``"interpreted"``);
    BlockSolve matrices dispatch to the hand-written library kernel
    regardless (the format is composite; see paper Sec. 3.3).
    """
    xv = x.vals if isinstance(x, DenseVector) else np.asarray(x, dtype=np.float64)
    if isinstance(A, BlockSolveMatrix):
        # hand-written library path: count the 2·nnz flops it performs
        with span(
            "kernels.spmv", format="BlockSolveMatrix", backend="library", flops=2.0 * A.nnz
        ):
            out = A.matvec(xv)
        _metrics.record("kernel.flops", 2.0 * A.nnz)
        _metrics.record("kernel.nnz_touched", A.nnz)
        _metrics.record("kernel.rows_visited", A.shape[0])
        if y is None:
            return out
        yv = y.vals if isinstance(y, DenseVector) else y
        yv += out
        return yv
    yv = np.zeros(A.shape[0]) if y is None else (y.vals if isinstance(y, DenseVector) else y)
    X, Y = DenseVector(xv), DenseVector(yv)
    k = compile_kernel(
        SPMV_SRC, {"A": A, "X": X, "Y": Y}, vectorize=vectorize, backend=backend
    )
    with span("kernels.spmv", format=type(A).__name__, backend=k.backend, nnz=A.nnz):
        k(A=A, X=X, Y=Y)
    return Y.vals


def spmv_transpose(
    A: Format,
    x,
    y=None,
    vectorize: bool | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """y (+)= Aᵀ·x for any matrix format (no transposed copy is built —
    the planner simply schedules the other projection of the same query)."""
    xv = x.vals if isinstance(x, DenseVector) else np.asarray(x, dtype=np.float64)
    if isinstance(A, BlockSolveMatrix):
        # composite: transpose through the exchange format (rarely needed)
        from repro.formats.crs import CRSMatrix

        return spmv(CRSMatrix.from_coo(A.to_coo().transpose()), xv, y, vectorize, backend)
    yv = np.zeros(A.shape[1]) if y is None else (y.vals if isinstance(y, DenseVector) else y)
    X, Y = DenseVector(xv), DenseVector(yv)
    k = compile_kernel(
        SPMV_T_SRC, {"A": A, "X": X, "Y": Y}, vectorize=vectorize, backend=backend
    )
    with span(
        "kernels.spmv_transpose", format=type(A).__name__, backend=k.backend, nnz=A.nnz
    ):
        k(A=A, X=X, Y=Y)
    return Y.vals
