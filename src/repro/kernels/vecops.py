"""Compiled vector kernels (axpy, dot, scale).

These exist to demonstrate that the "sparse BLAS" layer really is produced
by the one compiler — including operations on sparse *vectors* — not to
beat numpy on dense data.  Every operation accepts ``backend=`` to select
the executor backend (``"vectorized"`` default / ``"interpreted"``).
"""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_kernel
from repro.formats.base import Format
from repro.formats.dense import DenseVector

__all__ = ["axpy", "dot", "scale", "AXPY_SRC", "DOT_SRC", "SCALE_SRC"]

AXPY_SRC = "for i in 0:n { Y[i] += alpha * X[i] }"
DOT_SRC = "for z in 0:1 { for i in 0:n { S[z] += X[i] * Y[i] } }"
SCALE_SRC = "for i in 0:n { Y[i] = alpha * X[i] }"


def _vec(x) -> Format:
    return x if isinstance(x, Format) else DenseVector(np.asarray(x, dtype=np.float64))


def axpy(alpha: float, x, y, backend: str | None = None) -> np.ndarray:
    """y += alpha · x.  ``x`` may be sparse (compressed vector) or dense."""
    X = _vec(x)
    Y = _vec(y)
    k = compile_kernel(AXPY_SRC, {"X": X, "Y": Y}, backend=backend)
    k(X=X, Y=Y, alpha=float(alpha))
    return Y.vals


def dot(x, y, backend: str | None = None) -> float:
    """xᵀ·y; either side may be a sparse vector (the sparse one drives)."""
    X = _vec(x)
    Y = _vec(y)
    acc = DenseVector.zeros(1)
    # the scalar accumulator is a 1-element vector indexed by a unit loop
    k = compile_kernel(DOT_SRC, {"X": X, "Y": Y, "S": acc}, backend=backend)
    k(X=X, Y=Y, S=acc)
    return float(acc.vals[0])


def scale(alpha: float, x, backend: str | None = None) -> np.ndarray:
    """x *= alpha, in place, via a compiled kernel."""
    X = _vec(x)
    Y = DenseVector(np.array(X.to_dense(), dtype=np.float64))
    k = compile_kernel(SCALE_SRC, {"X": X, "Y": Y}, backend=backend)
    k(X=X, Y=Y, alpha=float(alpha))
    return Y.vals
