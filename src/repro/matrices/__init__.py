"""Workload generators and matrix I/O.

The paper evaluates on PETSc test matrices, Matrix Market matrices and a
synthetic 3-D grid problem (7-point stencil, 5 degrees of freedom).  This
package provides:

* :mod:`~repro.matrices.stencil` — 1/2/3-D grid Laplacians with a dense
  dof×dof coupling block per grid point (the paper's weak-scaling problem),
* :mod:`~repro.matrices.fem` — i-node/clique-rich FEM-style matrices
  (paper Fig. 2's multi-component finite-element model),
* :mod:`~repro.matrices.suite` — synthetic stand-ins for the Table-1
  matrix suite, matched by structure class (see DESIGN.md substitutions),
* :mod:`~repro.matrices.mmio` — MatrixMarket coordinate-format text I/O.
"""

from repro.matrices.stencil import grid_laplacian, stencil_matrix
from repro.matrices.fem import fem_matrix
from repro.matrices.suite import TABLE1_MATRICES, table1_matrix
from repro.matrices.mmio import read_matrix_market, write_matrix_market

__all__ = [
    "grid_laplacian",
    "stencil_matrix",
    "fem_matrix",
    "TABLE1_MATRICES",
    "table1_matrix",
    "read_matrix_market",
    "write_matrix_market",
]
