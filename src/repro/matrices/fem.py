"""FEM-style matrices rich in i-nodes and cliques (paper Fig. 2).

Models a multi-component finite-element discretization: a random planar-ish
point graph where every point carries ``dof`` unknowns.  Two coupled points
contribute a dense dof×dof block; a point's own dof rows form a dense
diagonal block.  Every point's rows share one column pattern (i-nodes of
size dof) and are mutually adjacent (cliques of size dof) — exactly the
structure BlockSolve exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.formats.coo import COOMatrix

__all__ = ["fem_matrix"]


def fem_matrix(points: int, dof: int = 3, neighbors: int = 3, rng=None) -> COOMatrix:
    """A symmetric positive-definite-ish FEM-style matrix.

    Parameters
    ----------
    points:
        Number of discretization points (matrix dimension = points·dof).
    dof:
        Degrees of freedom per point.
    neighbors:
        Target couplings per point: each point is linked to its
        ``neighbors`` nearest points in a random 2-D embedding — a cheap
        stand-in for a triangulation.
    rng:
        Seed or generator (deterministic given a seed).
    """
    if points < 1 or dof < 1:
        raise ReproError("points and dof must be >= 1")
    r = np.random.default_rng(rng)
    xy = r.random((points, 2))
    # symmetric k-nearest-neighbor coupling graph
    edges: set[tuple[int, int]] = set()
    if points > 1:
        d2 = ((xy[:, None, :] - xy[None, :, :]) ** 2).sum(-1)
        np.fill_diagonal(d2, np.inf)
        k = min(neighbors, points - 1)
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        for p in range(points):
            for q in nearest[p]:
                edges.add((min(p, int(q)), max(p, int(q))))
    di, dj = np.meshgrid(np.arange(dof), np.arange(dof), indexing="ij")
    di, dj = di.ravel(), dj.ravel()
    rows, cols, vals = [], [], []

    def add_block(p: int, q: int, block: np.ndarray) -> None:
        rows.append(p * dof + di)
        cols.append(q * dof + dj)
        vals.append(block.ravel())

    degree = np.zeros(points, dtype=np.int64)
    for p, q in sorted(edges):
        B = r.standard_normal((dof, dof)) * 0.2
        add_block(p, q, B)
        add_block(q, p, B.T)
        degree[p] += 1
        degree[q] += 1
    for p in range(points):
        D = r.standard_normal((dof, dof)) * 0.2
        D = (D + D.T) / 2 + (degree[p] + 2.0) * np.eye(dof)
        add_block(p, p, D)
    return COOMatrix.from_entries(
        (points * dof, points * dof),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
    )
