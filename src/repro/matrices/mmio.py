"""MatrixMarket coordinate-format text I/O (the paper cites Matrix Market
[8] as the source of its test suite).

Supports the ``matrix coordinate real {general|symmetric}`` and
``matrix coordinate pattern`` flavors — enough to read the files the paper
used, had we network access, and to exchange matrices with scipy.io.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path_or_file) -> COOMatrix:
    """Read a MatrixMarket coordinate file into canonical COO."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r") as f:
            return read_matrix_market(f)
    f = path_or_file
    header = f.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket":
        raise FormatError(f"bad MatrixMarket header: {header}")
    _, obj, fmt, field, symmetry = header[:5]
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise FormatError(f"unsupported MatrixMarket object/format: {obj} {fmt}")
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise FormatError(f"unsupported symmetry {symmetry!r}")
    line = f.readline()
    while line.startswith("%"):
        line = f.readline()
    nrows, ncols, nnz = map(int, line.split())
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in f:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        parts = line.split()
        if k >= nnz:
            raise FormatError("more entries than declared")
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        vals[k] = float(parts[2]) if field != "pattern" else 1.0
        k += 1
    if k != nnz:
        raise FormatError(f"declared {nnz} entries, found {k}")
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, sign * vals[off]]),
        )
    return COOMatrix.from_entries((nrows, ncols), rows, cols, vals)


def write_matrix_market(matrix: COOMatrix, path_or_file, comment: str = "") -> None:
    """Write canonical COO as a ``coordinate real general`` file."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as f:
            write_matrix_market(matrix, f, comment)
            return
    f = path_or_file
    m = matrix.canonicalized()
    f.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        f.write(f"% {line}\n")
    f.write(f"{m.shape[0]} {m.shape[1]} {m.nnz}\n")
    for i, j, v in zip(m.row.tolist(), m.col.tolist(), m.vals.tolist()):
        f.write(f"{i + 1} {j + 1} {v!r}\n")


def dumps(matrix: COOMatrix, comment: str = "") -> str:
    """The MatrixMarket text of a matrix as a string."""
    buf = io.StringIO()
    write_matrix_market(matrix, buf, comment)
    return buf.getvalue()
