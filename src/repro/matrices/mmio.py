"""MatrixMarket coordinate-format text I/O (the paper cites Matrix Market
[8] as the source of its test suite).

Supports the ``matrix coordinate real {general|symmetric}`` and
``matrix coordinate pattern`` flavors — enough to read the files the paper
used, had we network access, and to exchange matrices with scipy.io.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path_or_file) -> COOMatrix:
    """Read a MatrixMarket coordinate file into canonical COO."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r") as f:
            return read_matrix_market(f)
    f = path_or_file
    header = f.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket":
        raise FormatError(f"bad MatrixMarket header: {header}")
    _, obj, fmt, field, symmetry = header[:5]
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise FormatError(f"unsupported MatrixMarket object/format: {obj} {fmt}")
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise FormatError(f"unsupported symmetry {symmetry!r}")
    if field == "pattern" and symmetry == "skew-symmetric":
        # the MatrixMarket spec rules this combination out: a pattern has
        # no values to negate, and a skew-symmetric matrix needs signed
        # entries (and a zero diagonal)
        raise FormatError(
            "contradictory header: 'pattern' field with 'skew-symmetric' "
            "symmetry (patterns carry no signs)"
        )
    line = f.readline()
    while line.startswith("%"):
        line = f.readline()
    try:
        nrows, ncols, nnz = map(int, line.split())
    except ValueError:
        raise FormatError(f"bad MatrixMarket size line: {line.strip()!r}") from None
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    want = 2 if field == "pattern" else 3
    k = 0
    for line in f:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        parts = line.split()
        if k >= nnz:
            raise FormatError("more entries than declared")
        if len(parts) < want:
            raise FormatError(
                f"entry line {k + 1} has {len(parts)} fields, "
                f"{field!r} needs {want}: {line!r}"
            )
        try:
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if field != "pattern" else 1.0
        except ValueError:
            raise FormatError(f"bad entry line {k + 1}: {line!r}") from None
        k += 1
    if k != nnz:
        raise FormatError(f"declared {nnz} entries, found {k}")
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, sign * vals[off]]),
        )
    return COOMatrix.from_entries((nrows, ncols), rows, cols, vals)


def write_matrix_market(
    matrix: COOMatrix, path_or_file, comment: str = "", field: str = "real"
) -> None:
    """Write canonical COO as a ``coordinate {field} general`` file.

    ``field`` preserves the source flavor across a round-trip: ``"real"``
    (the default), ``"integer"`` (every stored value must be integral —
    :class:`~repro.errors.FormatError` otherwise, rather than silently
    promoting the file to real), or ``"pattern"`` (positions only; the
    values are dropped by construction, which is lossy unless they are
    all 1.0 — the value a pattern read materializes).
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as f:
            write_matrix_market(matrix, f, comment, field)
            return
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field type {field!r}")
    f = path_or_file
    m = matrix.canonicalized()
    if field == "integer" and not np.all(m.vals == np.trunc(m.vals)):
        bad = m.vals[m.vals != np.trunc(m.vals)][0]
        raise FormatError(
            f"field='integer' but stored values are not integral (e.g. {bad}); "
            "write field='real' instead"
        )
    f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    for line in comment.splitlines():
        f.write(f"% {line}\n")
    f.write(f"{m.shape[0]} {m.shape[1]} {m.nnz}\n")
    if field == "pattern":
        for i, j in zip(m.row.tolist(), m.col.tolist()):
            f.write(f"{i + 1} {j + 1}\n")
    elif field == "integer":
        for i, j, v in zip(m.row.tolist(), m.col.tolist(), m.vals.tolist()):
            f.write(f"{i + 1} {j + 1} {int(v)}\n")
    else:
        for i, j, v in zip(m.row.tolist(), m.col.tolist(), m.vals.tolist()):
            f.write(f"{i + 1} {j + 1} {v!r}\n")


def dumps(matrix: COOMatrix, comment: str = "", field: str = "real") -> str:
    """The MatrixMarket text of a matrix as a string."""
    buf = io.StringIO()
    write_matrix_market(matrix, buf, comment, field)
    return buf.getvalue()
