"""Grid stencil matrices: the paper's synthetic 3-D problem.

The parallel evaluation (Tables 2–3) runs CG on "synthetic three-dimensional
grid problems [whose] connectivity corresponds to a 7-point stencil with 5
degrees of freedom at each discretization point".  :func:`stencil_matrix`
builds exactly that family: a grid Laplacian L (5-point in 2-D, 7-point in
3-D) Kronecker-expanded with a dense dof×dof coupling block, i.e.

    A = L ⊗ B + I ⊗ C

with B/C dense dof-sized blocks — every grid point's dof rows share one
column pattern (i-nodes) and are mutually coupled (cliques).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.formats.coo import COOMatrix

__all__ = ["grid_laplacian", "stencil_matrix"]


def grid_laplacian(dims: tuple[int, ...]) -> COOMatrix:
    """Standard (2·d+1)-point Laplacian on a d-dimensional grid.

    ``dims`` is the grid extent per dimension; 1-, 2- and 3-D supported
    (tridiagonal / 5-point / 7-point stencils).  Diagonal = 2·d,
    off-diagonals = -1, Dirichlet boundaries (no wraparound).
    """
    dims = tuple(int(d) for d in dims)
    if not 1 <= len(dims) <= 3 or any(d < 1 for d in dims):
        raise ReproError(f"bad grid dims {dims}")
    n = int(np.prod(dims))
    idx = np.arange(n).reshape(dims)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 2.0 * len(dims))]
    for axis in range(len(dims)):
        lo = np.take(idx, np.arange(dims[axis] - 1), axis=axis).ravel()
        hi = np.take(idx, np.arange(1, dims[axis]), axis=axis).ravel()
        rows.extend([lo, hi])
        cols.extend([hi, lo])
        vals.extend([np.full(len(lo), -1.0), np.full(len(hi), -1.0)])
    return COOMatrix.from_entries(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def stencil_matrix(dims: tuple[int, ...], dof: int = 1, rng=None) -> COOMatrix:
    """Grid stencil with ``dof`` degrees of freedom per point.

    A = L ⊗ B + I ⊗ C where L is the grid Laplacian, B a symmetric dense
    dof×dof coupling block and C a diagonal-dominant dense block keeping
    the result positive definite.  With ``dof=1`` this reduces to L itself
    (up to the scalar shift).  Deterministic given ``rng``.
    """
    dof = int(dof)
    if dof < 1:
        raise ReproError("dof must be >= 1")
    lap = grid_laplacian(dims)
    if dof == 1:
        return lap
    r = np.random.default_rng(rng if rng is not None else 0)
    B = r.standard_normal((dof, dof)) * 0.1
    B = (B + B.T) / 2 + np.eye(dof)
    C = r.standard_normal((dof, dof)) * 0.1
    C = (C + C.T) / 2 + (2.0 * len(dims) * 2.0) * np.eye(dof)
    n = lap.shape[0]
    # kron expansion at COO level: entry (i, j, v) of L spawns the dense
    # block v*B at rows i*dof..+dof, cols j*dof..+dof; diagonal adds C
    di, dj = np.meshgrid(np.arange(dof), np.arange(dof), indexing="ij")
    di, dj = di.ravel(), dj.ravel()
    rows = (lap.row[:, None] * dof + di[None, :]).ravel()
    cols = (lap.col[:, None] * dof + dj[None, :]).ravel()
    vals = (lap.vals[:, None] * B.ravel()[None, :]).ravel()
    drows = (np.arange(n)[:, None] * dof + di[None, :]).ravel()
    dcols = (np.arange(n)[:, None] * dof + dj[None, :]).ravel()
    dvals = np.tile(C.ravel(), n)
    return COOMatrix.from_entries(
        (n * dof, n * dof),
        np.concatenate([rows, drows]),
        np.concatenate([cols, dcols]),
        np.concatenate([vals, dvals]),
    )
