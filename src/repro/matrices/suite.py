"""Synthetic stand-ins for the Table-1 matrix suite.

The paper's Table 1 measures sparse matrix-vector product on matrices from
the PETSc test suite (small, medium, cfd.1.10) and the Matrix Market
(685_bus, bcsstm27, gr_30_30, memplus, sherman1).  Those files are not
available offline, so each is replaced by a *generator matched to its
structure class* — the property Table 1 actually probes ("no single format
wins everywhere; structure determines the winner"):

=============  =========================  ==================================
name           paper matrix               structure class reproduced
=============  =========================  ==================================
small          PETSc 'small'              small regular 2-D 5-point grid
medium         PETSc 'medium'             larger regular 2-D 5-point grid
cfd.1.10       PETSc CFD test             3-D stencil, multiple unknowns
                                          per cell (dense dof coupling)
685_bus        MM 685_bus (685², power)   irregular low-degree network
bcsstm27       MM bcsstm27 (1224², FEM)   multi-dof FEM: i-nodes + cliques
gr_30_30       MM gr_30_30 (900², grid)   exact: 9-point star on 30×30
memplus        MM memplus (17758²,        diagonal + a few very long rows
               circuit)                   (extreme row-length skew)
sherman1       MM sherman1 (1000², oil    exact-shape: 7-point stencil on
               reservoir 10×10×10)        a 10×10×10 grid
=============  =========================  ==================================

Every generator is deterministic.  Sizes are kept at (or scaled toward)
the originals where a pure-Python benchmark can still turn them around;
``memplus`` is scaled down (17758 → 2400 rows) with the row-length skew
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices.fem import fem_matrix
from repro.matrices.stencil import grid_laplacian, stencil_matrix

__all__ = ["TABLE1_MATRICES", "table1_matrix", "SuiteEntry"]


@dataclass(frozen=True)
class SuiteEntry:
    """One synthetic Table-1 matrix: factory plus provenance notes."""

    name: str
    factory: Callable[[], COOMatrix]
    paper_source: str
    structure: str


def _grid9(nx: int, ny: int) -> COOMatrix:
    """9-point star on an nx×ny grid (gr_30_30's stencil): diagonal 8,
    all 8 neighbors -1."""
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    rows, cols, vals = [np.arange(n)], [np.arange(n)], [np.full(n, 8.0)]
    shifts = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1) if (di, dj) != (0, 0)]
    for di, dj in shifts:
        src = idx[max(0, -di) : nx - max(0, di), max(0, -dj) : ny - max(0, dj)]
        dst = idx[max(0, di) : nx + min(0, di), max(0, dj) : ny + min(0, dj)]
        rows.append(src.ravel())
        cols.append(dst.ravel())
        vals.append(np.full(src.size, -1.0))
    return COOMatrix.from_entries(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def _bus_network(n: int = 685, extra_edges: int = 300, rng=685) -> COOMatrix:
    """Power-network stand-in: a random tree (the grid's spanning backbone)
    plus a sprinkle of extra lines; symmetric, diagonally dominant."""
    r = np.random.default_rng(rng)
    parents = np.array([r.integers(0, i) for i in range(1, n)])
    rows = [np.arange(1, n), parents]
    cols = [parents, np.arange(1, n)]
    e1 = r.integers(0, n, size=extra_edges)
    e2 = r.integers(0, n, size=extra_edges)
    keep = e1 != e2
    rows.extend([e1[keep], e2[keep]])
    cols.extend([e2[keep], e1[keep]])
    rows_a = np.concatenate(rows)
    cols_a = np.concatenate(cols)
    vals_a = -np.abs(r.standard_normal(len(rows_a)))
    off = COOMatrix.from_entries((n, n), rows_a, cols_a, vals_a)
    # symmetrize values, then add a dominant diagonal
    off = COOMatrix.from_entries(
        (n, n),
        np.concatenate([off.row, off.col]),
        np.concatenate([off.col, off.row]),
        np.concatenate([off.vals, off.vals]) * 0.5,
    )
    diag = np.arange(n)
    dv = -np.asarray(
        [off.vals[off.row == i].sum() for i in range(n)]
    ) + 1.0  # row-sum dominance
    return COOMatrix.from_entries(
        (n, n),
        np.concatenate([off.row, diag]),
        np.concatenate([off.col, diag]),
        np.concatenate([off.vals, dv]),
    )


def _memplus_like(n: int = 2400, hubs: int = 24, rng=177) -> COOMatrix:
    """Circuit-simulation stand-in: tridiagonal bulk plus a few hub rows
    and columns with hundreds of entries — the row-length skew that makes
    padded formats (ITPACK) collapse on memplus."""
    r = np.random.default_rng(rng)
    i = np.arange(n)
    rows = [i, i[:-1], i[1:]]
    cols = [i, i[1:], i[:-1]]
    vals = [np.full(n, 4.0), np.full(n - 1, -1.0), np.full(n - 1, -1.0)]
    hub_ids = r.choice(n, size=hubs, replace=False)
    for h in hub_ids:
        targets = r.choice(n, size=n // 8, replace=False)
        rows.extend([np.full(len(targets), h), targets])
        cols.extend([targets, np.full(len(targets), h)])
        w = r.standard_normal(len(targets)) * 0.01
        vals.extend([w, w])
    return COOMatrix.from_entries(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


TABLE1_MATRICES: dict[str, SuiteEntry] = {
    "small": SuiteEntry(
        "small",
        lambda: grid_laplacian((8, 8)),
        "PETSc test matrix 'small'",
        "small regular 2-D 5-point grid (64 rows)",
    ),
    "medium": SuiteEntry(
        "medium",
        lambda: grid_laplacian((18, 18)),
        "PETSc test matrix 'medium'",
        "regular 2-D 5-point grid (324 rows)",
    ),
    "cfd.1.10": SuiteEntry(
        "cfd.1.10",
        lambda: stencil_matrix((6, 6, 6), dof=4, rng=10),
        "PETSc CFD test problem",
        "3-D 7-point stencil, 4 unknowns per cell (864 rows)",
    ),
    "685_bus": SuiteEntry(
        "685_bus",
        lambda: _bus_network(685),
        "Matrix Market 685_bus (power network)",
        "irregular low-degree network (685 rows)",
    ),
    "bcsstm27": SuiteEntry(
        "bcsstm27",
        lambda: fem_matrix(points=204, dof=6, neighbors=4, rng=27),
        "Matrix Market bcsstm27 (BCS mass matrix)",
        "multi-dof FEM with i-nodes and cliques (1224 rows)",
    ),
    "gr_30_30": SuiteEntry(
        "gr_30_30",
        lambda: _grid9(30, 30),
        "Matrix Market gr_30_30",
        "exact structure: 9-point star on a 30×30 grid (900 rows)",
    ),
    "memplus": SuiteEntry(
        "memplus",
        lambda: _memplus_like(),
        "Matrix Market memplus (memory circuit)",
        "diagonal bulk + hub rows, extreme row-length skew (2400 rows)",
    ),
    "sherman1": SuiteEntry(
        "sherman1",
        lambda: grid_laplacian((10, 10, 10)),
        "Matrix Market sherman1 (oil reservoir, 10×10×10)",
        "exact shape: 7-point stencil on a 10×10×10 grid (1000 rows)",
    ),
}


def table1_matrix(name: str) -> COOMatrix:
    """Build the synthetic stand-in for a Table-1 matrix by name."""
    try:
        return TABLE1_MATRICES[name].factory()
    except KeyError:
        raise KeyError(
            f"unknown Table-1 matrix {name!r}; known: {sorted(TABLE1_MATRICES)}"
        ) from None
