"""Observability: tracing, metrics, and plan explanation.

Three cooperating pieces, all off by default and near-free when off:

* :mod:`repro.observability.trace` — span tracer instrumenting the
  compiler pipeline and the SPMD machine; exports Chrome ``trace_event``
  JSON (``chrome://tracing`` / Perfetto) and a human-readable tree,
* :mod:`repro.observability.metrics` — counters/gauges/histograms for
  collective traffic, inspector schedules, and kernel work (flops, nnz
  touched), plus the rank×rank communication-matrix and
  inspector-vs-executor renderers,
* :mod:`repro.observability.explain` — ``explain(kernel)``: the join
  order, join implementation per term, sparsity predicate, and rejected
  alternatives of every compiled statement,
* :mod:`repro.observability.profile` — critical-path profiler and
  cost-model audit over ``RunStats`` (per-rank compute/comm/idle
  attribution, cross-rank critical path, load imbalance, α+β·n
  prediction error),
* :mod:`repro.observability.bench_track` — benchmark trajectory records
  (``BENCH_history.jsonl``) and the ``--gate`` regression check.

``python -m repro.observability.report trace.json`` pretty-prints a trace
saved by ``Tracer.save`` or a benchmark ``--trace`` run;
``--critical-path`` / ``--cost-audit`` run the profiler on the trace's
embedded ``run_stats`` event.
"""

from repro.observability.metrics import (
    REGISTRY,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    phase_breakdown,
    render_comm_matrix,
    render_phase_breakdown,
    scoped,
)
from repro.observability.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    instant,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Tracer",
    "span",
    "instant",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "MetricsRegistry",
    "REGISTRY",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "scoped",
    "render_comm_matrix",
    "phase_breakdown",
    "render_phase_breakdown",
    "explain",
]


def explain(obj, formats=None, verbose: bool = True) -> str:
    """Lazy re-export of :func:`repro.observability.explain.explain`
    (deferred so importing the runtime does not pull in the compiler)."""
    from repro.observability.explain import explain as _explain

    return _explain(obj, formats, verbose)
