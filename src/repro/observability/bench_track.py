"""Benchmark trajectory tracking and regression gating.

Every ``benchmarks/bench_*.py`` standalone main reduces its run to one
headline scalar (a geomean, a speedup, a modeled time) and hands it here
as a :class:`BenchRecord`.  Records append to an append-only JSONL
history (``BENCH_history.jsonl``), so the perf story of the repo is a
*trajectory*, not a pile of disconnected snapshots: each new record is
diffed against the best and the most recent prior record of the same
``(bench, fingerprint)`` series, and ``--gate <pct>`` turns that diff
into an exit code a CI job can fail on.

Design points:

* **Config fingerprint.** Records are only comparable when they measured
  the same thing; the fingerprint is a short sha256 of the
  canonicalized config dict (problem sizes, nprocs, backend, smoke
  flag).  A changed config starts a fresh series instead of tripping the
  gate with an apples-to-oranges diff.
* **Direction aware.** ``direction="lower"`` (times) and ``"higher"``
  (speedups) both gate on *worsening* — the sign convention lives here,
  not in every bench script.
* **Append-only, corruption tolerant.** History lines that fail to
  parse are skipped with a warning, never fatal: a truncated line from a
  killed CI job must not brick the gate forever after.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

__all__ = [
    "BenchRecord",
    "BenchHistory",
    "GateResult",
    "config_fingerprint",
    "current_git_rev",
    "evaluate_gate",
    "render_gate",
    "DEFAULT_HISTORY",
]

DEFAULT_HISTORY = "BENCH_history.jsonl"


def config_fingerprint(config: dict) -> str:
    """Short stable fingerprint of a benchmark config dict."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def current_git_rev() -> str:
    """The working tree's HEAD revision, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class BenchRecord:
    """One benchmark run reduced to its headline scalar."""

    bench: str  # benchmark id, e.g. "table3_inspector"
    value: float  # the headline scalar (geomean / speedup / seconds)
    direction: str = "lower"  # "lower" or "higher" is better
    config: dict = field(default_factory=dict)  # what was measured
    metrics: dict = field(default_factory=dict)  # supporting numbers
    fingerprint: str = ""  # config_fingerprint(config); filled by __post_init__
    git_rev: str = ""
    timestamp: float = 0.0  # unix seconds
    #: diffs vs prior history, % (positive = regression); filled at append
    delta_vs_best_pct: float | None = None
    delta_vs_last_pct: float | None = None

    def __post_init__(self):
        if self.direction not in ("lower", "higher"):
            raise ObservabilityError(
                f"BenchRecord direction must be 'lower' or 'higher', "
                f"got {self.direction!r}"
            )
        if not (isinstance(self.value, (int, float)) and math.isfinite(self.value)):
            raise ObservabilityError(
                f"BenchRecord value must be finite, got {self.value!r}"
            )
        self.value = float(self.value)
        if not self.fingerprint:
            self.fingerprint = config_fingerprint(self.config)
        if not self.git_rev:
            self.git_rev = current_git_rev()
        if not self.timestamp:
            self.timestamp = time.time()

    # regression % of this record vs a baseline value: positive = worse,
    # in the record's own direction convention
    def regression_pct(self, baseline: float) -> float:
        if baseline == 0.0:
            return 0.0
        if self.direction == "lower":
            return 100.0 * (self.value - baseline) / baseline
        return 100.0 * (baseline - self.value) / baseline

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "fingerprint": self.fingerprint,
            "value": self.value,
            "direction": self.direction,
            "config": self.config,
            "metrics": self.metrics,
            "git_rev": self.git_rev,
            "timestamp": self.timestamp,
            "delta_vs_best_pct": self.delta_vs_best_pct,
            "delta_vs_last_pct": self.delta_vs_last_pct,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchRecord":
        rec = cls(
            bench=str(doc["bench"]),
            value=float(doc["value"]),
            direction=str(doc.get("direction", "lower")),
            config=dict(doc.get("config", {})),
            metrics=dict(doc.get("metrics", {})),
            fingerprint=str(doc.get("fingerprint", "")),
            git_rev=str(doc.get("git_rev", "unknown")),
            timestamp=float(doc.get("timestamp", 0.0)) or 1.0,
        )
        rec.delta_vs_best_pct = doc.get("delta_vs_best_pct")
        rec.delta_vs_last_pct = doc.get("delta_vs_last_pct")
        return rec


class BenchHistory:
    """Append-only JSONL store of :class:`BenchRecord` lines."""

    def __init__(self, path: str = DEFAULT_HISTORY):
        self.path = path
        self.records: list[BenchRecord] = []
        self.skipped_lines = 0
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError as e:
            raise ObservabilityError(
                f"cannot read bench history {self.path!r}: {e}"
            ) from e
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                self.records.append(BenchRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    ObservabilityError):
                self.skipped_lines += 1

    def series(self, bench: str, fingerprint: str) -> list[BenchRecord]:
        """All prior records of one comparable series, oldest first."""
        return [
            r
            for r in self.records
            if r.bench == bench and r.fingerprint == fingerprint
        ]

    def last(self, bench: str, fingerprint: str) -> BenchRecord | None:
        s = self.series(bench, fingerprint)
        return s[-1] if s else None

    def best(self, bench: str, fingerprint: str) -> BenchRecord | None:
        s = self.series(bench, fingerprint)
        if not s:
            return None
        if s[0].direction == "higher":
            return max(s, key=lambda r: r.value)
        return min(s, key=lambda r: r.value)

    def append(self, record: BenchRecord) -> BenchRecord:
        """Diff ``record`` against prior history, stamp the deltas into
        it, append it to the JSONL file, and return it."""
        best = self.best(record.bench, record.fingerprint)
        last = self.last(record.bench, record.fingerprint)
        if best is not None:
            record.delta_vs_best_pct = record.regression_pct(best.value)
        if last is not None:
            record.delta_vs_last_pct = record.regression_pct(last.value)
        line = json.dumps(record.to_dict(), sort_keys=True, default=str)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        self.records.append(record)
        return record


@dataclass
class GateResult:
    """Outcome of one ``--gate <pct>`` regression check."""

    record: BenchRecord
    baseline: BenchRecord | None  # None: first record of its series
    against: str  # "best" or "last"
    threshold_pct: float
    regression_pct: float | None  # None: nothing to compare against

    @property
    def passed(self) -> bool:
        return self.regression_pct is None or self.regression_pct <= self.threshold_pct

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1


def evaluate_gate(
    record: BenchRecord,
    history: BenchHistory,
    threshold_pct: float,
    against: str = "best",
) -> GateResult:
    """Gate a fresh record against its series' ``best`` (default) or
    ``last`` prior record.  The record is expected to already be appended
    (so its deltas are stamped); a series with no prior records passes —
    the first data point cannot regress."""
    if against not in ("best", "last"):
        raise ObservabilityError(f"gate baseline must be 'best' or 'last', got {against!r}")
    # exclude the record itself (it is already in history.records)
    prior = [
        r
        for r in history.series(record.bench, record.fingerprint)
        if r is not record
    ]
    baseline = None
    if prior:
        if against == "last":
            baseline = prior[-1]
        elif record.direction == "higher":
            baseline = max(prior, key=lambda r: r.value)
        else:
            baseline = min(prior, key=lambda r: r.value)
    reg = None if baseline is None else record.regression_pct(baseline.value)
    return GateResult(
        record=record,
        baseline=baseline,
        against=against,
        threshold_pct=float(threshold_pct),
        regression_pct=reg,
    )


def render_gate(result: GateResult) -> str:
    r = result.record
    arrow = "↓ better" if r.direction == "lower" else "↑ better"
    lines = [
        f"bench {r.bench} [{r.fingerprint}] value={r.value:.6g} ({arrow}) "
        f"rev={r.git_rev}"
    ]
    if result.baseline is None:
        lines.append(
            f"gate PASS: first record of this series (threshold "
            f"{result.threshold_pct:g}%)"
        )
        return "\n".join(lines)
    b = result.baseline
    lines.append(
        f"baseline ({result.against}) value={b.value:.6g} rev={b.git_rev}"
    )
    verdict = "PASS" if result.passed else "FAIL"
    lines.append(
        f"gate {verdict}: {result.regression_pct:+.1f}% vs {result.against} "
        f"(threshold {result.threshold_pct:g}%)"
    )
    return "\n".join(lines)
