"""``explain(plan)``: why the query optimizer chose what it chose.

The planner (``repro.compiler.scheduling``) records every candidate driver
it weighed on the winning :class:`~repro.compiler.scheduling.Plan`
(``plan.considered``).  This module renders that record — join order, the
join implementation selected for every relation, the sparsity predicate,
and the rejection reason for every alternative — as the paper's running
commentary around Eq. 4–6 does in prose.

``explain`` accepts a :class:`~repro.compiler.kernels.CompiledKernel`
(every statement's plan), a single plan, or mini-language source plus
formats (compiled on the spot)::

    >>> k = compile_kernel(SPMV_SRC, {"A": crs, "X": xv, "Y": yv})
    >>> print(explain(k))
"""

from __future__ import annotations

from repro.errors import ObservabilityError

__all__ = ["explain"]


def explain(obj, formats=None, verbose: bool = True) -> str:
    """Render the access-plan rationale of a kernel, unit, or plan.

    Parameters
    ----------
    obj:
        A :class:`CompiledKernel`, a :class:`KernelUnit`, a :class:`Plan`,
        an :class:`~repro.compiler.autoplan.AutoPlan` (format-selection
        rationale: structure profile + ranked candidate costs), a
        :class:`~repro.compiler.specialize.HybridPlan` /
        :class:`~repro.compiler.specialize.HybridKernel` (the region
        decomposition and per-region lowering), or mini-language source
        text (requires ``formats``).
    formats:
        Array-name → :class:`Format` mapping, only needed when ``obj`` is
        source text.
    verbose:
        Include the rejected-alternatives section.
    """
    from repro.compiler.autoplan import AutoPlan
    from repro.compiler.kernels import CompiledKernel, compile_kernel
    from repro.compiler.codegen import KernelUnit
    from repro.compiler.scheduling import Plan
    from repro.compiler.specialize import HybridKernel, HybridPlan

    if isinstance(obj, (AutoPlan, HybridPlan, HybridKernel)):
        return obj.describe()
    if isinstance(obj, str):
        if formats is None:
            raise ObservabilityError(
                "explain(source) needs formats={name: Format} to compile against"
            )
        obj = compile_kernel(obj, formats)
    if isinstance(obj, CompiledKernel):
        fmt_names = {n: cls.__name__ for n, cls in obj.format_classes.items()}
        parts = []
        for k, unit in enumerate(obj.units):
            parts.append(
                _explain_unit(unit, fmt_names, verbose, header=f"statement [{k}]")
            )
        text = "\n\n".join(parts)
        cert = _certificate_narration(obj)
        if cert:
            text += "\n\n" + cert
        if verbose:
            findings = _kernel_diagnostics(obj)
            if findings:
                text += "\n\n" + findings
        return text
    if isinstance(obj, KernelUnit):
        return _explain_unit(obj, {}, verbose, header="statement")
    if isinstance(obj, Plan):
        return _explain_plan(obj, {}, verbose)
    raise ObservabilityError(
        f"cannot explain a {type(obj).__name__}; pass a CompiledKernel, "
        "KernelUnit, Plan, or source text with formats"
    )


def _certificate_narration(kernel) -> str:
    """Narrate the parallelism certificate the dependence analyzer
    attached at compile time (empty when compiled with ``verify="off"``)."""
    cert = getattr(kernel, "certificate", None)
    if cert is None:
        return ""
    lines = [
        f"parallelism: {cert.verdict.label()} "
        f"(certificate {cert.fingerprint}, v{cert.version})"
    ]
    for lv in cert.loops:
        lines.append(f"  loop {lv.var}: {lv.verdict.label()}")
        for ev in lv.evidence:
            lines.append(f"    {ev.kind}: {ev.detail}")
    return "\n".join(lines)


def _kernel_diagnostics(kernel) -> str:
    """Analyzer findings (warnings and errors only) for a compiled kernel,
    or the empty string when the linter has nothing to say."""
    from repro.analysis.lint import lint_kernel

    report = lint_kernel(kernel)
    notable = report.errors() + report.warnings()
    if not notable:
        return ""
    lines = ["analyzer findings:"]
    lines.extend(f"  {d.render()}" for d in notable)
    return "\n".join(lines)


def _explain_unit(unit, fmt_names: dict, verbose: bool, header: str) -> str:
    lines = [f"{header}: {unit.stmt!r}"]
    lines.append(_explain_plan(unit.plan, fmt_names, verbose))
    return "\n".join(lines)


def _explain_plan(plan, fmt_names: dict, verbose: bool) -> str:
    lines: list[str] = []
    q = plan.query
    lines.append(f"  query: {q!r}")
    lines.append(f"  sparsity predicate: {q.predicate!r}")
    if plan.noop:
        lines.append("  plan: noop — the predicate is FALSE, nothing executes")
        return "\n".join(lines)

    drv = plan.driver or "none (pure dense iteration)"
    if plan.driver and plan.driver in fmt_names:
        drv += f" ({fmt_names[plan.driver]})"
    lines.append(f"  driver: {drv}")

    order = " -> ".join(_step_order_label(s) for s in plan.steps)
    lines.append(f"  join order: {order}")

    lines.append("  join method per term:")
    step_methods = _methods_by_term(plan)
    for acc in plan.accesses:
        name = acc.term.array
        fmt = f" [{fmt_names[name]}]" if name in fmt_names else ""
        detail = step_methods.get(name)
        lines.append(
            f"    {acc.term!r}{fmt}: {_mode_label(acc.mode)}"
            + (f" — {detail}" if detail else "")
        )
    lines.append(f"  estimated cost: {plan.cost:g}")

    if verbose and plan.considered:
        lines.append("  alternatives considered:")
        for name, cost, verdict in plan.considered:
            cand = name if name is not None else "dense iteration"
            cost_txt = f"cost {cost:g}" if cost is not None else "no cost"
            lines.append(f"    driver={cand}: {verdict} ({cost_txt})")
    return "\n".join(lines)


def _step_order_label(step) -> str:
    if step.kind == "dense":
        return f"dense loop {step.var}"
    binds = ",".join(step.binds) or "∅"
    if step.kind == "enumerate":
        return f"{step.term}.L{step.level_index}→{binds}"
    if step.kind == "merge":
        return f"merge {step.term}.L{step.level_index} on {step.key}"
    return f"search {step.term}.L{step.level_index}"


def _methods_by_term(plan) -> dict[str, str]:
    """Per-array one-line description of how its levels are accessed."""
    out: dict[str, list[str]] = {}
    for s in plan.steps:
        if s.term is None:
            continue
        if s.kind == "enumerate":
            binds = ",".join(s.binds) or "internal index"
            txt = f"enumerate level {s.level_index} (binds {binds})"
            if s.guards:
                txt += f", filtered on {','.join(s.guards)}"
        elif s.kind == "merge":
            txt = (
                f"two-pointer merge on {s.key} riding the sorted loop of "
                f"step {s.anchor}"
            )
        else:
            txt = f"search level {s.level_index} from bound indices"
        out.setdefault(s.term, []).append(txt)
    return {k: "; ".join(v) for k, v in out.items()}


def _mode_label(mode: str) -> str:
    return {
        "driver": "driver (its level hierarchy fixes the loop structure)",
        "chained": "secondary enumeration (chained driver)",
        "searched": "searched once indices are bound",
        "dense": "dense O(1) loads, no join steps",
        "output": "output — dense accumulate in place",
    }.get(mode, mode)
