"""Metrics registry: counters, gauges, histograms — plus SPMD reports.

The registry is a process-global, label-aware instrument store in the
Prometheus style::

    from repro.observability import metrics

    metrics.enable_metrics()
    metrics.REGISTRY.counter("machine.bytes", kind="alltoallv").inc(4096)
    print(metrics.REGISTRY.render())

Instrumented library code records through the module helpers
(:func:`record`, :func:`observe`) which are no-ops unless
:func:`enable_metrics` was called — hot loops pay one flag check.

The SPMD-specific reports live here too:

* :func:`render_comm_matrix` — the rank×rank byte matrix of a run
  (``RunStats.comm_matrix()``) as an aligned table,
* :func:`phase_breakdown` — the inspector-vs-executor split of a run,
  mirroring the columns of the paper's Table 3 (per-phase estimated
  parallel time, messages, bytes, slowest-rank compute).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "scoped",
    "record",
    "observe",
    "render_comm_matrix",
    "phase_breakdown",
    "render_phase_breakdown",
]


@dataclass
class Counter:
    """Monotonically increasing count (calls, flops, bytes...)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move both ways (ghost count, cache size...)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: histogram sample buffer bound; beyond it the buffer decimates 2:1 and
#: doubles its keep-stride (deterministic systematic sampling, no RNG)
_SAMPLE_CAP = 8192


@dataclass
class Histogram:
    """Streaming summary: count / total / min / max plus percentiles.

    Percentiles come from a bounded, deterministic sample: every
    ``_stride``-th observation is kept, and when the buffer hits
    ``_SAMPLE_CAP`` it is decimated 2:1 and the stride doubles — so
    memory is O(1), replayed runs summarize identically, and quantile
    error stays small for the smooth distributions we observe
    (``comm.overlap_ratio``, schedule sizes, span durations)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    _samples: list[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)

    def observe(self, value: float) -> None:
        v = float(value)
        if self.count % self._stride == 0:
            self._samples.append(v)
            if len(self._samples) >= _SAMPLE_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """The q-th percentile (0..100) of the sampled observations, or
        None before the first observation."""
        if not self._samples:
            return None
        return float(np.percentile(self._samples, q))

    @property
    def p50(self) -> float | None:
        return self.percentile(50.0)

    @property
    def p95(self) -> float | None:
        return self.percentile(95.0)

    @property
    def p99(self) -> float | None:
        return self.percentile(99.0)


class MetricsRegistry:
    """Thread-safe store of labeled instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (cls.__name__, name, tuple(sorted(labels.items())))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, tuple(sorted(labels.items())))
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict[str, object]:
        """``{"name{k=v,...}": value-or-summary}`` for every instrument."""
        out: dict[str, object] = {}
        with self._lock:
            for (_kind, name, labels), inst in sorted(
                self._instruments.items(), key=lambda kv: kv[0][1:]
            ):
                label_txt = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{label_txt}}}" if label_txt else name
                if isinstance(inst, Histogram):
                    out[key] = {
                        "count": inst.count,
                        "total": inst.total,
                        "mean": inst.mean,
                        "min": inst.min if inst.count else None,
                        "max": inst.max if inst.count else None,
                        "p50": inst.p50,
                        "p95": inst.p95,
                        "p99": inst.p99,
                    }
                else:
                    out[key] = inst.value
        return out

    def render(self) -> str:
        lines = []
        for key, val in self.snapshot().items():
            if isinstance(val, dict):
                quant = (
                    f" p50={val['p50']:.6g} p95={val['p95']:.6g} "
                    f"p99={val['p99']:.6g}"
                    if val.get("p50") is not None
                    else ""
                )
                lines.append(
                    f"{key}  count={val['count']} total={val['total']:.6g} "
                    f"mean={val['mean']:.6g}" + quant
                )
            else:
                lines.append(f"{key}  {val:.6g}" if isinstance(val, float) else f"{key}  {val}")
        return "\n".join(lines)


#: default registry used by the instrumented library code
REGISTRY = MetricsRegistry()

_enabled = False


def enable_metrics(fresh: bool = True) -> MetricsRegistry:
    """Turn on library-side metric recording; optionally reset first."""
    global _enabled
    if fresh:
        REGISTRY.reset()
    _enabled = True
    return REGISTRY


def disable_metrics() -> None:
    global _enabled
    _enabled = False


def metrics_enabled() -> bool:
    return _enabled


@contextlib.contextmanager
def scoped(enabled: bool = True):
    """Hermetic metrics scope: swap in a fresh registry for the duration
    of the block and restore the previous registry *and* enabled flag on
    exit, success or error.

    Library code records through the module globals (:func:`record` /
    :func:`observe` / ``metrics.REGISTRY``), so everything recorded
    inside the block lands in the scoped registry — counters from other
    tests (e.g. an earlier ``compiler.cache_hits``) can neither leak in
    nor be clobbered::

        with metrics.scoped() as reg:
            run_workload()
            assert reg.snapshot()["compiler.cache_hits"] == 2

    Note: a ``from ... import REGISTRY`` binding taken *before* the block
    still points at the outer registry; read through ``metrics.REGISTRY``
    or the yielded handle inside the block.
    """
    global REGISTRY, _enabled
    prev_registry, prev_enabled = REGISTRY, _enabled
    fresh = MetricsRegistry()
    REGISTRY = fresh
    _enabled = enabled
    try:
        yield fresh
    finally:
        REGISTRY = prev_registry
        _enabled = prev_enabled


def record(name: str, amount: float = 1.0, **labels) -> None:
    """Increment counter ``name`` iff metrics are enabled (hot-path safe)."""
    if _enabled:
        REGISTRY.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels) -> None:
    """Observe into histogram ``name`` iff metrics are enabled."""
    if _enabled:
        REGISTRY.histogram(name, **labels).observe(value)


# ----------------------------------------------------------------------
# SPMD communication reports
# ----------------------------------------------------------------------
def render_comm_matrix(matrix: np.ndarray, title: str = "bytes sent, src rank → dst rank") -> str:
    """The rank×rank byte matrix as an aligned text table.

    Row p, column q holds the bytes rank p sent to rank q (allreduce bytes
    are attributed to the ring neighbor, allgather bytes to every peer —
    see ``Machine.run``); the grand total equals ``RunStats.total_nbytes()``.
    """
    m = np.asarray(matrix)
    P = m.shape[0]
    w = max(8, len(f"{int(m.max()) if m.size else 0}") + 2)
    lines = [title]
    lines.append(" " * 6 + "".join(f"→{q}".rjust(w) for q in range(P)) + "row Σ".rjust(w + 2))
    for p in range(P):
        row = "".join(f"{int(m[p, q])}".rjust(w) for q in range(P))
        lines.append(f"  {p:>3} " + row + f"{int(m[p].sum())}".rjust(w + 2))
    lines.append(f"  total bytes: {int(m.sum())}")
    return "\n".join(lines)


def phase_breakdown(stats, model=None) -> dict[str, dict[str, float]]:
    """Per-phase-label split of a run (the Table-3 quantities).

    Returns ``{label: {"parallel_seconds", "msgs", "nbytes",
    "max_compute_seconds", "supersteps"}}`` for every phase label that
    appears in ``stats`` (e.g. ``"inspector"`` and ``"executor"``).
    """
    from repro.runtime.machine import CommModel

    model = model or CommModel()
    out: dict[str, dict[str, float]] = {}
    for label in _phase_labels(stats):
        w = stats.phase(label)
        out[label] = {
            "parallel_seconds": w.parallel_time(model),
            "msgs": float(w.total_msgs()),
            "nbytes": float(w.total_nbytes()),
            "max_compute_seconds": float(np.max(w.total_compute())) if w.phases else 0.0,
            "supersteps": float(len(w.phases)),
        }
    return out


def render_phase_breakdown(stats, model=None) -> str:
    """Aligned table of :func:`phase_breakdown` (inspector vs executor)."""
    rows = phase_breakdown(stats, model)
    lines = [
        f"{'phase':<12} {'par time (s)':>13} {'msgs':>9} {'bytes':>12} "
        f"{'max compute (s)':>16} {'steps':>6}"
    ]
    for label, r in rows.items():
        lines.append(
            f"{label:<12} {r['parallel_seconds']:>13.5f} {int(r['msgs']):>9} "
            f"{int(r['nbytes']):>12} {r['max_compute_seconds']:>16.5f} "
            f"{int(r['supersteps']):>6}"
        )
    if "inspector" in rows and "executor" in rows and rows["executor"]["parallel_seconds"]:
        n = max(1.0, rows["executor"]["supersteps"])
        per_iter = rows["executor"]["parallel_seconds"] / n
        lines.append(
            "inspector / executor-superstep ratio: "
            f"{rows['inspector']['parallel_seconds'] / per_iter:.2f}"
        )
    return "\n".join(lines)


def _phase_labels(stats) -> list[str]:
    seen: list[str] = []
    for p in stats.phases:
        if p.kind == "phase" and p.label is not None and p.label not in seen:
            seen.append(p.label)
    return seen
