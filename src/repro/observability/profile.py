"""Critical-path profiling and cost-model auditing of SPMD runs.

The *performance observatory* half that answers "where did the time go?".
Input is a :class:`~repro.runtime.machine.RunStats` — either live from
``Machine.run`` or rebuilt from the ``run_stats`` event every traced run
embeds in its Chrome trace (``RunStats.from_dict``).  Three analyses:

* :func:`profile_run` — per-rank **compute / comm / idle attribution**,
  the **cross-rank critical path** (one segment per superstep, naming the
  rank that gated it), and a per-phase **load-imbalance index**.  The
  segment seconds follow exactly the overlap fold of
  ``RunStats.parallel_time``, so the critical-path total *is* the
  estimated wall time — the acceptance invariant.
* :func:`audit_cost_model` — replay a candidate α+β·n
  :class:`~repro.runtime.machine.CommModel` against the per-superstep
  traffic of a run and report the per-phase prediction error relative to
  the model the run was folded under, plus a least-squares (α̂, β̂) fit to
  the observed traffic→seconds relation and an overlap-fold audit (posted
  vs hidden vs exposed wire seconds).  This is the calibration signal an
  auto-planner needs before trusting the model to rank plans.
* :func:`render_flamegraph` — a text flamegraph of a span trace
  (inclusive time per span name, bar-proportional), for the compiler side
  of a run.

Renderers return plain text; ``python -m repro.observability.report
trace.json --critical-path --cost-audit`` drives them from a saved trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.machine import CommModel, RunStats

__all__ = [
    "PathSegment",
    "RankAttribution",
    "ProfileResult",
    "profile_run",
    "render_attribution",
    "render_critical_path",
    "render_timeline",
    "render_flamegraph",
    "PhaseAudit",
    "CostModelAudit",
    "audit_cost_model",
    "render_cost_audit",
]


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSegment:
    """One superstep's contribution to the cross-rank critical path."""

    step: int  # superstep index within the run
    kind: str  # collective kind ("alltoallv", "allreduce", "phase", "drain", ...)
    label: str | None  # enclosing phase label ("inspector", "executor", ...)
    rank: int  # the rank that gated this step (-1: pure comm drain)
    seconds: float  # what this step contributes to the parallel time
    compute: float  # the gating rank's compute share of `seconds`
    comm: float  # the gating rank's charged comm share (0 when hidden)
    overlapped: bool = False  # a nonblocking post (comm left in flight)
    stretched: bool = False  # step lasted longer than its own work: it was
    #                          held open by communication still in flight

    @property
    def category(self) -> str:
        """Dominant cost class: compute / comm / overlap / drain."""
        if self.kind == "drain":
            return "drain"
        if self.overlapped:
            return "overlap"
        if self.stretched and self.seconds > self.compute + self.comm:
            return "drain"
        return "comm" if self.comm > self.compute else "compute"


@dataclass
class RankAttribution:
    """Where one rank's share of the parallel time went."""

    rank: int
    compute: float  # seconds doing local work
    comm: float  # seconds charged for blocking communication
    wait: float  # seconds idle (barrier waits + comm drains)
    hidden_comm: float  # wire seconds posted nonblocking (not charged)

    @property
    def busy(self) -> float:
        return self.compute + self.comm


@dataclass
class ProfileResult:
    """Full attribution of one SPMD run."""

    nprocs: int
    parallel_time: float  # RunStats.parallel_time under the same model
    segments: list[PathSegment] = field(default_factory=list)
    ranks: list[RankAttribution] = field(default_factory=list)
    #: per-phase-label load-imbalance index: slowest rank's compute over
    #: the mean rank compute (1.0 = perfectly balanced); key None = whole run
    imbalance: dict[str | None, float] = field(default_factory=dict)

    @property
    def critical_path_total(self) -> float:
        return float(sum(s.seconds for s in self.segments))

    def top_segments(self, k: int = 10) -> list[PathSegment]:
        return sorted(self.segments, key=lambda s: -s.seconds)[:k]


def _step_labels(stats: RunStats) -> list[str | None]:
    """The enclosing phase label of every superstep (phase markers get the
    label they open)."""
    labels: list[str | None] = []
    current: str | None = None
    for p in stats.phases:
        if p.kind == "phase":
            current = p.label
        labels.append(current)
    return labels


def _imbalance(compute: np.ndarray) -> float:
    """Load-imbalance index of a per-rank compute vector: max/mean."""
    mean = float(compute.mean())
    if mean <= 0.0:
        return 1.0
    return float(compute.max()) / mean


def profile_run(stats: RunStats, model: CommModel | None = None) -> ProfileResult:
    """Attribute a run's estimated parallel time: per-rank compute / comm
    / idle, the cross-rank critical path, and load-imbalance indices.

    The segment seconds reproduce the arithmetic of
    ``RunStats.parallel_time`` step for step, so
    ``result.critical_path_total == result.parallel_time`` up to float
    summation order.
    """
    model = model or stats.model or CommModel()
    durations, busy, drain = stats.step_attribution(model)
    labels = _step_labels(stats)
    P = stats.nprocs

    segments: list[PathSegment] = []
    compute_p = np.zeros(P)
    comm_p = np.zeros(P)
    wait_p = np.zeros(P)
    hidden_p = np.zeros(P)
    per_label_compute: dict[str | None, np.ndarray] = {}

    for k, phase in enumerate(stats.phases):
        dur = float(durations[k])
        b = busy[k]
        crit = int(np.argmax(b)) if dur > 0 else 0
        rank_comm = phase.rank_comm(model)
        if phase.overlapped:
            hidden_p += rank_comm
            seg_comm = 0.0
        else:
            comm_p += rank_comm
            seg_comm = float(rank_comm[crit])
        compute_p += phase.compute
        wait_p += dur - b
        acc = per_label_compute.setdefault(labels[k], np.zeros(P))
        acc += phase.compute
        segments.append(
            PathSegment(
                step=k,
                kind=phase.kind,
                label=labels[k],
                rank=crit,
                seconds=dur,
                compute=float(phase.compute[crit]),
                comm=seg_comm,
                overlapped=phase.overlapped,
                stretched=dur > float(b[crit]) + 1e-15,
            )
        )
    if drain > 0.0:
        # trailing in-flight communication nobody's compute covered
        wait_p += drain
        segments.append(
            PathSegment(
                step=len(stats.phases),
                kind="drain",
                label=labels[-1] if labels else None,
                rank=-1,
                seconds=float(drain),
                compute=0.0,
                comm=float(drain),
            )
        )

    imbalance: dict[str | None, float] = {None: _imbalance(stats.total_compute())}
    for label, comp in per_label_compute.items():
        if label is not None:
            imbalance[label] = _imbalance(comp)

    ranks = [
        RankAttribution(
            rank=p,
            compute=float(compute_p[p]),
            comm=float(comm_p[p]),
            wait=float(wait_p[p]),
            hidden_comm=float(hidden_p[p]),
        )
        for p in range(P)
    ]
    return ProfileResult(
        nprocs=P,
        parallel_time=stats.parallel_time(model),
        segments=segments,
        ranks=ranks,
        imbalance=imbalance,
    )


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def _pct(x: float, total: float) -> str:
    return f"{100.0 * x / total:5.1f}%" if total > 0 else "    -"


def render_attribution(result: ProfileResult) -> str:
    """Per-rank compute/comm/idle table plus the imbalance indices."""
    T = result.parallel_time
    lines = [
        f"{'rank':>5} {'compute (s)':>14} {'comm (s)':>13} {'idle (s)':>13} "
        f"{'hidden comm (s)':>16}"
    ]
    for r in result.ranks:
        lines.append(
            f"{r.rank:>5} {r.compute:>9.5f} {_pct(r.compute, T)} "
            f"{r.comm:>8.5f} {_pct(r.comm, T)} {r.wait:>8.5f} {_pct(r.wait, T)} "
            f"{r.hidden_comm:>16.5f}"
        )
    lines.append(
        f"parallel time {T:.5f}s; critical path total "
        f"{result.critical_path_total:.5f}s"
        + (
            f" (diff {100.0 * abs(result.critical_path_total - T) / T:.3f}%)"
            if T > 0
            else ""
        )
    )
    for label, idx in sorted(result.imbalance.items(), key=lambda kv: str(kv[0])):
        name = "whole run" if label is None else f"phase {label!r}"
        lines.append(f"load imbalance ({name}): {idx:.2f}x  (slowest rank / mean rank)")
    return "\n".join(lines)


def render_critical_path(result: ProfileResult, top: int = 10) -> str:
    """The top-k critical-path segments, heaviest first."""
    T = result.critical_path_total
    lines = [
        f"{'#':>3} {'step':>5} {'phase':<11} {'collective':<16} {'rank':>4} "
        f"{'seconds':>11} {'share':>7}  cost"
    ]
    for i, s in enumerate(result.top_segments(top)):
        rank = "wire" if s.rank < 0 else str(s.rank)
        lines.append(
            f"{i + 1:>3} {s.step:>5} {str(s.label or '-'):<11} {s.kind:<16} "
            f"{rank:>4} {s.seconds:>11.6f} {_pct(s.seconds, T)}  {s.category}"
        )
    return "\n".join(lines)


#: timeline cell glyphs, by dominant cost of (rank, step); uppercase marks
#: the rank that gated the step (the critical path passes through it)
_TIMELINE_KEY = (
    "timeline key: c/C compute-bound, m/M comm-bound, o/O overlapped post, "
    "'.' idle (<50% busy), '|' phase marker, '>' comm drain; "
    "uppercase = on the critical path"
)


def render_timeline(
    stats: RunStats, model: CommModel | None = None, max_steps: int = 96
) -> str:
    """ASCII rank×step timeline of a run.

    One column per superstep, one row per rank.  A glyph classifies what
    the rank spent that step on; the uppercase cell is the rank the
    critical path ran through.  Runs longer than ``max_steps`` show the
    head and tail with an elision marker.
    """
    model = model or stats.model or CommModel()
    durations, busy, drain = stats.step_attribution(model)
    labels = _step_labels(stats)
    P = stats.nprocs
    S = len(stats.phases)

    steps = list(range(S))
    elided = False
    head = max_steps * 2 // 3
    if S > max_steps:
        tail = max_steps - head
        steps = list(range(head)) + list(range(S - tail, S))
        elided = True

    def cell(p: int, k: int) -> str:
        phase = stats.phases[k]
        if phase.kind == "phase":
            return "|"
        dur = float(durations[k])
        if dur <= 0:
            return "."
        crit = int(np.argmax(busy[k]))
        b = float(busy[k][p])
        if b < 0.5 * dur:
            return "."
        if phase.overlapped:
            ch = "o"
        else:
            ch = "m" if float(phase.rank_comm(model)[p]) > float(phase.compute[p]) else "c"
        return ch.upper() if p == crit else ch

    lines = []
    # phase-label ruler: first letter of the label at each phase marker
    ruler = []
    for k in steps:
        if stats.phases[k].kind == "phase" and labels[k]:
            ruler.append(str(labels[k])[0].upper())
        else:
            ruler.append(" ")
    for p in range(P):
        row = "".join(cell(p, k) for k in steps)
        if elided:
            row = row[:head] + "…" + row[head:]
        row += ">" if drain > 0 else ""
        lines.append(f"rank{p:<3} {row}")
    ruler_txt = "".join(ruler)
    if elided:
        ruler_txt = ruler_txt[:head] + " " + ruler_txt[head:]
    lines.append(f"phase  {ruler_txt}")
    if elided:
        lines.append(f"({S} supersteps; showing head and tail, '…' elides the middle)")
    lines.append(_TIMELINE_KEY)
    return "\n".join(lines)


def _span_depths(tracer) -> dict[str, list[int]]:
    """Nesting depth of every complete span, recomputed from timestamp
    containment per thread (loaded traces don't carry live depths)."""
    by_tid: dict[object, list] = {}
    for r in tracer.records:
        if r.dur is not None:
            by_tid.setdefault(r.tid, []).append(r)
    depths: dict[str, list[int]] = {}
    for spans in by_tid.values():
        spans.sort(key=lambda r: (r.ts, -(r.dur or 0.0)))
        stack: list[float] = []  # end timestamps of open ancestors
        for r in spans:
            while stack and r.ts >= stack[-1] - 1e-9:
                stack.pop()
            depths.setdefault(r.name, []).append(len(stack))
            stack.append(r.ts + r.dur)
    return depths


def render_flamegraph(tracer, width: int = 48, top: int = 24) -> str:
    """Text flamegraph of a span trace: inclusive seconds per span name,
    one bar per name, heaviest first; indentation follows the modal
    nesting depth the name was recorded at."""
    agg: dict[str, list[float]] = {}
    for r in tracer.records:
        if r.dur is None:
            continue
        agg.setdefault(r.name, []).append(r.dur)
    if not agg:
        return "(no spans)"
    depths = _span_depths(tracer)
    totals = {name: sum(d) for name, d in agg.items()}
    vmax = max(totals.values()) or 1.0
    lines = [f"{'span':<44} {'count':>6} {'total ms':>10}  flame"]
    for name, total in sorted(totals.items(), key=lambda kv: -kv[1])[:top]:
        depth = int(np.bincount(depths[name]).argmax())
        bar = "█" * max(1, int(round(width * total / vmax)))
        label = ("  " * depth + name)[:44]
        lines.append(f"{label:<44} {len(agg[name]):>6} {total / 1000.0:>10.3f}  {bar}")
    if len(totals) > top:
        lines.append(f"(… {len(totals) - top} more span names)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# cost-model audit
# ----------------------------------------------------------------------
@dataclass
class PhaseAudit:
    """Candidate-vs-reference α+β·n prediction for one phase label."""

    label: str | None
    supersteps: int
    msgs: int
    nbytes: int
    reference_seconds: float  # comm fold under the run's own model
    predicted_seconds: float  # comm fold under the candidate model

    @property
    def error_pct(self) -> float:
        """Signed prediction error of the candidate, % of reference."""
        if self.reference_seconds <= 0.0:
            return 0.0
        return (
            100.0
            * (self.predicted_seconds - self.reference_seconds)
            / self.reference_seconds
        )


@dataclass
class CostModelAudit:
    """Full audit: per-phase errors, fitted α̂/β̂, overlap-fold accounting."""

    phases: list[PhaseAudit]
    candidate: CommModel
    reference: CommModel
    fitted_latency: float | None  # α̂ from least squares (None: no traffic)
    fitted_inv_bandwidth: float | None  # β̂
    fit_r2: float | None
    posted_seconds: float  # wire seconds posted nonblocking
    hidden_seconds: float  # portion covered by interior compute
    exposed_seconds: float  # portion that stretched steps / drained at end

    @property
    def worst_phase_error_pct(self) -> float:
        return max((abs(p.error_pct) for p in self.phases), default=0.0)


def audit_cost_model(
    stats: RunStats,
    candidate: CommModel | None = None,
    reference: CommModel | None = None,
) -> CostModelAudit:
    """Replay a candidate α+β·n model against a run's measured traffic.

    ``reference`` defaults to the model the run itself was folded under
    (``stats.model``) — the calibrated ground truth of this simulation.
    ``candidate`` defaults to the uncalibrated paper :class:`CommModel`.
    Per phase label, both models price the *same* observed per-superstep
    (msgs, bytes) traffic; the per-phase error is the calibration gap.

    The least-squares section goes the other way: it *fits* (α̂, β̂) to the
    per-superstep slowest-rank traffic→seconds pairs, recovering the
    effective model from observations alone — the calibration signal a
    structure-aware auto-planner consumes.  ``fit_r2`` near 1 means the
    α+β·n form explains the fold; a poor fit means per-rank skew is
    breaking the single-model assumption.
    """
    reference = reference or stats.model or CommModel()
    candidate = candidate or CommModel()
    labels = _step_labels(stats)

    by_label: dict[str | None, PhaseAudit] = {}
    rows = []  # (msgs, bytes) of the reference-slowest rank, per superstep
    targets = []  # that rank's reference comm seconds
    posted = hidden = exposed = 0.0
    in_flight = 0.0
    for k, phase in enumerate(stats.phases):
        ref_rank = phase.rank_comm(reference)
        crit = int(np.argmax(ref_rank))
        ref_s = float(ref_rank[crit])
        cand_s = float(phase.rank_comm(candidate)[crit])
        pa = by_label.get(labels[k])
        if pa is None:
            pa = by_label[labels[k]] = PhaseAudit(labels[k], 0, 0, 0, 0.0, 0.0)
        pa.supersteps += 1
        pa.msgs += int(phase.msgs.sum())
        pa.nbytes += int(phase.nbytes.sum())
        pa.reference_seconds += ref_s
        pa.predicted_seconds += cand_s
        if ref_s > 0.0 or int(phase.msgs.sum()):
            rows.append((float(phase.msgs[crit]), float(phase.nbytes[crit])))
            targets.append(ref_s)
        # overlap-fold accounting, mirroring RunStats.parallel_time
        if phase.overlapped:
            posted += ref_s
            in_flight = max(in_flight, ref_s)
            continue
        if in_flight > 0.0:
            step = phase.step_time(reference)
            covered = min(in_flight, step)
            hidden += covered
            exposed += in_flight - covered
            in_flight = 0.0
    exposed += in_flight  # trailing drain: fully exposed

    fitted_a = fitted_b = r2 = None
    if rows:
        A = np.asarray(rows)
        y = np.asarray(targets)
        coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        fitted_a, fitted_b = float(coef[0]), float(coef[1])
        pred = A @ coef
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    return CostModelAudit(
        phases=list(by_label.values()),
        candidate=candidate,
        reference=reference,
        fitted_latency=fitted_a,
        fitted_inv_bandwidth=fitted_b,
        fit_r2=r2,
        posted_seconds=posted,
        hidden_seconds=hidden,
        exposed_seconds=exposed,
    )


def render_cost_audit(audit: CostModelAudit) -> str:
    """Aligned report of :func:`audit_cost_model`."""
    c, r = audit.candidate, audit.reference
    lines = [
        f"candidate model: α={c.latency:.3g}s  β={c.inv_bandwidth:.3g}s/B",
        f"reference model: α={r.latency:.3g}s  β={r.inv_bandwidth:.3g}s/B "
        "(the run's own fold)",
        f"{'phase':<12} {'steps':>6} {'msgs':>9} {'bytes':>12} "
        f"{'reference (s)':>14} {'predicted (s)':>14} {'error':>9}",
    ]
    for p in sorted(audit.phases, key=lambda p: str(p.label)):
        lines.append(
            f"{str(p.label or '-'):<12} {p.supersteps:>6} {p.msgs:>9} "
            f"{p.nbytes:>12} {p.reference_seconds:>14.6f} "
            f"{p.predicted_seconds:>14.6f} {p.error_pct:>+8.1f}%"
        )
    if audit.fitted_latency is not None:
        lines.append(
            f"least-squares fit over supersteps: α̂={audit.fitted_latency:.3g}s  "
            f"β̂={audit.fitted_inv_bandwidth:.3g}s/B  R²={audit.fit_r2:.4f}"
        )
    if audit.posted_seconds > 0:
        covered = 100.0 * audit.hidden_seconds / audit.posted_seconds
        lines.append(
            f"overlap fold: posted {audit.posted_seconds:.6f}s nonblocking, "
            f"hidden {audit.hidden_seconds:.6f}s ({covered:.1f}%), "
            f"exposed {audit.exposed_seconds:.6f}s"
        )
    return "\n".join(lines)
