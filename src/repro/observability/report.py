"""Pretty-print a saved trace: ``python -m repro.observability.report t.json``.

Renders from a Chrome-trace JSON written by ``Tracer.save`` (or any
``--trace out.json`` benchmark run):

* the per-thread span tree (compiler phases nested, per-rank runtime
  windows),
* a summary table aggregating span durations by name,
* every recorded rank×rank communication matrix,
* with ``--critical-path``: per-rank compute/comm/idle attribution, the
  cross-rank critical path, the load-imbalance index, a text flamegraph,
  and an ASCII rank×step timeline (from the embedded ``run_stats`` event
  every traced ``Machine.run`` records),
* with ``--cost-audit``: per-phase α+β·n prediction error of a candidate
  :class:`~repro.runtime.machine.CommModel` vs the run's own fold.

Exit status: 0 on success, 1 on unreadable/malformed traces or when the
requested analysis has no ``run_stats`` event to work from.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.errors import ObservabilityError
from repro.observability.metrics import render_comm_matrix
from repro.observability.trace import Tracer

__all__ = ["report", "load_trace", "run_stats_of", "main"]


def _summary(tracer: Tracer) -> str:
    agg: dict[str, list[float]] = {}
    for r in tracer.records:
        if r.dur is not None:
            agg.setdefault(r.name, []).append(r.dur)
    if not agg:
        return "(no spans)"
    lines = [f"{'span':<40} {'count':>6} {'total ms':>10} {'mean ms':>10}"]
    for name, durs in sorted(agg.items(), key=lambda kv: -sum(kv[1])):
        total = sum(durs)
        lines.append(
            f"{name:<40} {len(durs):>6} {total / 1000.0:>10.3f} "
            f"{total / len(durs) / 1000.0:>10.3f}"
        )
    return "\n".join(lines)


def _comm_matrices(tracer: Tracer) -> str:
    blocks = []
    for r in tracer.records:
        if r.name == "comm_matrix" and "matrix" in r.args:
            m = np.asarray(r.args["matrix"], dtype=np.int64)
            blocks.append(
                render_comm_matrix(
                    m,
                    title=(
                        f"comm matrix @ {r.ts / 1000.0:.3f} ms "
                        f"(total {r.args.get('total_bytes', int(m.sum()))} bytes)"
                    ),
                )
            )
    return "\n\n".join(blocks) if blocks else "(no communication matrices recorded)"


def load_trace(path: str) -> Tracer:
    """Load a Chrome-trace file, mapping every malformation — unreadable
    file, invalid JSON, a JSON document with no ``traceEvents`` — to
    :class:`ObservabilityError` (exit code 1 at the CLI)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ObservabilityError(f"cannot read trace {path!r}: {e}") from e
    if isinstance(doc, dict) and "traceEvents" not in doc:
        raise ObservabilityError(
            f"malformed trace {path!r}: no 'traceEvents' key"
        )
    if not isinstance(doc, (dict, list)):
        raise ObservabilityError(
            f"malformed trace {path!r}: expected an object or array, "
            f"got {type(doc).__name__}"
        )
    try:
        return Tracer.from_chrome(doc)
    except (KeyError, TypeError, ValueError, AttributeError) as e:
        raise ObservabilityError(f"malformed trace {path!r}: {e}") from e


def run_stats_of(tracer: Tracer):
    """The :class:`~repro.runtime.machine.RunStats` of the *last*
    ``run_stats`` instant in a trace, or None if the trace has none
    (e.g. a compiler-only trace)."""
    from repro.runtime.machine import RunStats

    doc = None
    for r in tracer.records:
        if r.name == "run_stats" and "phases" in r.args:
            doc = r.args
    return None if doc is None else RunStats.from_dict(doc)


def _critical_path_sections(tracer: Tracer, path: str, top: int) -> list[str]:
    from repro.observability.profile import (
        profile_run,
        render_attribution,
        render_critical_path,
        render_flamegraph,
        render_timeline,
    )

    stats = run_stats_of(tracer)
    if stats is None:
        raise ObservabilityError(
            f"trace {path!r} has no 'run_stats' event — was it recorded by a "
            "Machine run with collect_stats=True?"
        )
    result = profile_run(stats)
    return [
        "== per-rank attribution ==\n" + render_attribution(result),
        f"== critical path (top {top}) ==\n" + render_critical_path(result, top=top),
        "== rank×step timeline ==\n" + render_timeline(stats),
        "== flamegraph ==\n" + render_flamegraph(tracer),
    ]


def _cost_audit_section(tracer: Tracer, path: str, args) -> str:
    from repro.observability.profile import audit_cost_model, render_cost_audit
    from repro.runtime.machine import CommModel

    stats = run_stats_of(tracer)
    if stats is None:
        raise ObservabilityError(
            f"trace {path!r} has no 'run_stats' event — nothing to audit"
        )
    candidate = None
    if args.alpha is not None or args.beta is not None:
        candidate = CommModel(
            latency=args.alpha if args.alpha is not None else CommModel().latency,
            inv_bandwidth=args.beta if args.beta is not None else CommModel().inv_bandwidth,
        )
    return "== cost-model audit ==\n" + render_cost_audit(
        audit_cost_model(stats, candidate=candidate)
    )


def report(path: str, tree: bool = True, summary: bool = True, comm: bool = True) -> str:
    """The classic text report for one saved trace file (span tree,
    summary table, comm matrices)."""
    tracer = load_trace(path)
    sections = [f"trace: {path} ({len(tracer.records)} events)"]
    if summary:
        sections.append("== span summary ==\n" + _summary(tracer))
    if tree:
        sections.append("== span tree ==\n" + tracer.render_tree())
    if comm:
        sections.append("== communication ==\n" + _comm_matrices(tracer))
    return "\n\n".join(sections)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.observability.report", description=__doc__
    )
    ap.add_argument("trace", help="Chrome-trace JSON written by --trace / Tracer.save")
    ap.add_argument("--no-tree", action="store_true", help="skip the span tree")
    ap.add_argument("--no-summary", action="store_true", help="skip the summary table")
    ap.add_argument("--no-comm", action="store_true", help="skip comm matrices")
    ap.add_argument(
        "--critical-path",
        action="store_true",
        help="per-rank compute/comm/idle attribution, cross-rank critical "
        "path, load imbalance, timeline, and flamegraph (needs the "
        "embedded run_stats event)",
    )
    ap.add_argument(
        "--cost-audit",
        action="store_true",
        help="replay an α+β·n CommModel against the run's traffic and "
        "report per-phase prediction error",
    )
    ap.add_argument(
        "--top", type=int, default=10, help="critical-path segments to show"
    )
    ap.add_argument(
        "--alpha", type=float, default=None, help="candidate model latency α (s)"
    )
    ap.add_argument(
        "--beta",
        type=float,
        default=None,
        help="candidate model inverse bandwidth β (s/byte)",
    )
    args = ap.parse_args(argv)
    try:
        if args.critical_path or args.cost_audit:
            tracer = load_trace(args.trace)
            sections = [f"trace: {args.trace} ({len(tracer.records)} events)"]
            if args.critical_path:
                sections.extend(
                    _critical_path_sections(tracer, args.trace, args.top)
                )
            if args.cost_audit:
                sections.append(_cost_audit_section(tracer, args.trace, args))
            print("\n\n".join(sections))
        else:
            print(
                report(
                    args.trace,
                    tree=not args.no_tree,
                    summary=not args.no_summary,
                    comm=not args.no_comm,
                )
            )
    except ObservabilityError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error, but stdout
        # must be redirected or the interpreter complains on exit flush
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
