"""Pretty-print a saved trace: ``python -m repro.observability.report t.json``.

Renders three sections from a Chrome-trace JSON written by
``Tracer.save`` (or any ``--trace out.json`` benchmark run):

* the per-thread span tree (compiler phases nested, per-rank runtime
  windows),
* a summary table aggregating span durations by name,
* every recorded rank×rank communication matrix.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.errors import ObservabilityError
from repro.observability.metrics import render_comm_matrix
from repro.observability.trace import Tracer

__all__ = ["report", "main"]


def _summary(tracer: Tracer) -> str:
    agg: dict[str, list[float]] = {}
    for r in tracer.records:
        if r.dur is not None:
            agg.setdefault(r.name, []).append(r.dur)
    if not agg:
        return "(no spans)"
    lines = [f"{'span':<40} {'count':>6} {'total ms':>10} {'mean ms':>10}"]
    for name, durs in sorted(agg.items(), key=lambda kv: -sum(kv[1])):
        total = sum(durs)
        lines.append(
            f"{name:<40} {len(durs):>6} {total / 1000.0:>10.3f} "
            f"{total / len(durs) / 1000.0:>10.3f}"
        )
    return "\n".join(lines)


def _comm_matrices(tracer: Tracer) -> str:
    blocks = []
    for r in tracer.records:
        if r.name == "comm_matrix" and "matrix" in r.args:
            m = np.asarray(r.args["matrix"], dtype=np.int64)
            blocks.append(
                render_comm_matrix(
                    m,
                    title=(
                        f"comm matrix @ {r.ts / 1000.0:.3f} ms "
                        f"(total {r.args.get('total_bytes', int(m.sum()))} bytes)"
                    ),
                )
            )
    return "\n\n".join(blocks) if blocks else "(no communication matrices recorded)"


def report(path: str, tree: bool = True, summary: bool = True, comm: bool = True) -> str:
    """The full text report for one saved trace file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ObservabilityError(f"cannot read trace {path!r}: {e}") from e
    tracer = Tracer.from_chrome(doc)
    sections = [f"trace: {path} ({len(tracer.records)} events)"]
    if summary:
        sections.append("== span summary ==\n" + _summary(tracer))
    if tree:
        sections.append("== span tree ==\n" + tracer.render_tree())
    if comm:
        sections.append("== communication ==\n" + _comm_matrices(tracer))
    return "\n\n".join(sections)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.observability.report", description=__doc__
    )
    ap.add_argument("trace", help="Chrome-trace JSON written by --trace / Tracer.save")
    ap.add_argument("--no-tree", action="store_true", help="skip the span tree")
    ap.add_argument("--no-summary", action="store_true", help="skip the summary table")
    ap.add_argument("--no-comm", action="store_true", help="skip comm matrices")
    args = ap.parse_args(argv)
    try:
        print(
            report(
                args.trace,
                tree=not args.no_tree,
                summary=not args.no_summary,
                comm=not args.no_comm,
            )
        )
    except ObservabilityError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
