"""Span tracing for the compiler pipeline and the SPMD runtime.

A :class:`Tracer` records *spans* — named, timed intervals carrying
structured attributes — organized per thread (compiler phases) and per
simulated rank (runtime supersteps).  The design goals, in order:

1. **Near-zero overhead when disabled.**  Instrumented call sites go
   through the module-level :func:`span` helper; with no active tracer it
   returns a shared no-op context manager without allocating anything.
2. **Exception safety.**  A span closes (and is recorded) even when the
   traced code raises; nesting is tracked per thread so concurrent
   compilations do not interleave their trees.
3. **Standard export.**  :meth:`Tracer.to_chrome` emits the Chrome
   ``trace_event`` JSON object format (load it in ``chrome://tracing`` or
   Perfetto); :meth:`Tracer.from_chrome` round-trips it back so saved
   traces can be re-rendered by ``python -m repro.observability.report``.

Typical use::

    from repro.observability import enable_tracing, get_tracer

    tracer = enable_tracing()
    ... compile / run ...
    tracer.save("trace.json")
    print(tracer.render_tree())
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "instant",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]


@dataclass
class SpanRecord:
    """One completed span (or instant event when ``dur`` is None)."""

    name: str
    ts: float  # microseconds since the tracer's epoch
    dur: float | None  # microseconds; None for instant events
    tid: int | str
    depth: int = 0
    args: dict = field(default_factory=dict)
    error: str | None = None


class _NullSpan:
    """Shared no-op span: the entire disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one interval into its tracer."""

    __slots__ = ("tracer", "name", "args", "_t0", "_ts", "_depth", "_tid")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def set(self, **attrs):
        """Attach attributes to the span after it was opened."""
        self.args.update(attrs)
        return self

    def __enter__(self):
        tr = self.tracer
        local = tr._local
        self._tid = getattr(local, "tid", None)
        if self._tid is None:
            self._tid = local.tid = threading.get_ident() % 100000
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._ts = tr._now_us()
        return self

    def __exit__(self, exc_type, exc, tb):
        tr = self.tracer
        dur = tr._now_us() - self._ts
        tr._local.depth = self._depth
        tr._record(
            SpanRecord(
                name=self.name,
                ts=self._ts,
                dur=dur,
                tid=self._tid,
                depth=self._depth,
                args=self.args,
                error=None if exc is None else f"{type(exc).__name__}: {exc}",
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Thread-safe span collector with Chrome-trace import/export."""

    def __init__(self, process_name: str = "repro"):
        self.process_name = process_name
        self._epoch = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _record(self, rec: SpanRecord) -> None:
        with self._lock:
            self._records.append(rec)

    def span(self, name: str, **attrs) -> _Span:
        """Open a span; use as ``with tracer.span("phase", k=v) as s:``."""
        return _Span(self, name, attrs)

    def instant(self, name: str, tid: int | str = 0, **attrs) -> None:
        """Record a zero-duration marker event (e.g. a comm matrix dump)."""
        self._record(SpanRecord(name, self._now_us(), None, tid, 0, attrs))

    def add_complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: int | str = 0,
        depth: int = 0,
        **attrs,
    ) -> None:
        """Record an externally-timed complete span (used by the simulated
        machine, whose per-rank timings are not measured on this thread)."""
        self._record(SpanRecord(name, ts_us, dur_us, tid, depth, attrs))

    @property
    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------------
    # Chrome trace_event JSON
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` *object* form: a ``traceEvents`` list
        of complete ("X") and instant ("i") events."""
        events = []
        for r in self.records:
            ev = {
                "name": r.name,
                "cat": r.name.split(".")[0].split("/")[0],
                "pid": self.process_name,
                "tid": r.tid,
                "ts": r.ts,
                "args": _jsonable(r.args),
            }
            if r.dur is None:
                ev["ph"] = "i"
                ev["s"] = "p"
            else:
                ev["ph"] = "X"
                ev["dur"] = r.dur
            if r.error:
                ev["args"]["error"] = r.error
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f, indent=1)

    @classmethod
    def from_chrome(cls, doc: dict | list) -> "Tracer":
        """Rebuild a tracer from a Chrome-trace document (round-trip of
        :meth:`to_chrome`; also accepts the bare-list array form)."""
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        tr = cls(
            process_name=(
                str(events[0].get("pid", "repro")) if events else "repro"
            )
        )
        for ev in events:
            args = dict(ev.get("args", {}))
            err = args.pop("error", None)
            tr._records.append(
                SpanRecord(
                    name=ev.get("name", "?"),
                    ts=float(ev.get("ts", 0.0)),
                    dur=float(ev["dur"]) if ev.get("ph") == "X" else None,
                    tid=ev.get("tid", 0),
                    args=args,
                    error=err,
                )
            )
        return tr

    @classmethod
    def load(cls, path) -> "Tracer":
        with open(path) as f:
            return cls.from_chrome(json.load(f))

    # ------------------------------------------------------------------
    # human-readable rendering
    # ------------------------------------------------------------------
    def render_tree(self, max_attrs: int = 4) -> str:
        """Indented per-thread span tree: nesting inferred from interval
        containment within each tid, in start order."""
        by_tid: dict = {}
        for r in self.records:
            by_tid.setdefault(r.tid, []).append(r)
        lines: list[str] = []
        for tid in sorted(by_tid, key=str):
            recs = sorted(by_tid[tid], key=lambda r: (r.ts, -(r.dur or 0.0)))
            lines.append(f"[tid {tid}]")
            stack: list[SpanRecord] = []  # open ancestors
            for r in recs:
                while stack and not _contains(stack[-1], r):
                    stack.pop()
                indent = "  " * (len(stack) + 1)
                attrs = ", ".join(
                    f"{k}={_short(v)}" for k, v in list(r.args.items())[:max_attrs]
                )
                dur = "instant" if r.dur is None else f"{r.dur / 1000.0:.3f} ms"
                err = f"  !! {r.error}" if r.error else ""
                lines.append(
                    f"{indent}{r.name}  [{dur}]" + (f"  ({attrs})" if attrs else "") + err
                )
                if r.dur is not None:
                    stack.append(r)
        return "\n".join(lines)


def _contains(outer: SpanRecord, inner: SpanRecord) -> bool:
    if outer.dur is None:
        return False
    end = outer.ts + outer.dur
    return outer.ts <= inner.ts and (inner.ts + (inner.dur or 0.0)) <= end + 1e-6


def _short(v, limit: int = 48) -> str:
    s = str(v)
    return s if len(s) <= limit else s[: limit - 1] + "…"


def _jsonable(obj):
    """Coerce span attributes to JSON-safe values (numpy-aware)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return obj.item()
        except Exception:
            pass
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(obj)


# ----------------------------------------------------------------------
# module-level tracer (what instrumented call sites consult)
# ----------------------------------------------------------------------
_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or, with None, remove) the active tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def enable_tracing(process_name: str = "repro") -> Tracer:
    """Create and install a fresh tracer; returns it."""
    return set_tracer(Tracer(process_name))


def disable_tracing() -> None:
    set_tracer(None)


def tracing_enabled() -> bool:
    return _tracer is not None


def span(name: str, **attrs):
    """Open a span on the active tracer — or a shared no-op when disabled.

    This is the only call instrumented code pays for when tracing is off:
    one global read and the return of a preallocated null object.
    """
    t = _tracer
    if t is None:
        return _NULL_SPAN
    return t.span(name, **attrs)


def instant(name: str, tid: int | str = 0, **attrs) -> None:
    t = _tracer
    if t is not None:
        t.instant(name, tid, **attrs)
