"""Parallel sparse code generation (paper Section 3).

Distributed arrays are distributed relations defined by the fragmentation
equation (Eq. 15); distributed loop execution is distributed query
evaluation: localize the iteration relation under owner-computes (Eq. 16),
exploit collocation (aligned joins need no communication, Eq. 19–20), and
turn the remaining global references into inspector queries (Eq. 21–22).

This package provides the three CG/SpMV strategies the evaluation
compares:

* ``bernoulli`` — the naive fully-global specification (paper Eq. 23):
  the inspector discovers locality it was not told about, translating
  *every* x reference; the executor pays one extra indirection per access,
* ``bernoulli-mixed`` — the mixed local/global specification (Eq. 24):
  the products against locally-addressed data are node-level programs; only
  the non-local part goes through the inspector,
* ``blocksolve`` — the hand-written library path over BlockSolve
  structures (dense clique blocks + i-nodes, packed neighbor exchange),

plus the two Chaos-style inspectors (``indirect`` / ``indirect-mixed``)
that pay for a distributed translation table (Table 3's last columns).
"""

from repro.parallel.fragment import RowFragment, partition_rows
from repro.parallel.spmd_spmv import (
    SPMV_VARIANTS,
    make_spmv_setup,
    spmv_executor_step,
)

__all__ = [
    "RowFragment",
    "partition_rows",
    "SPMV_VARIANTS",
    "make_spmv_setup",
    "spmv_executor_step",
]
