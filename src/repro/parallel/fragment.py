"""Fragmentation: distributed relations as unions of local fragments.

The fragmentation equation (paper Eq. 15)

    R(a) = ⋃_p π_a ( IND(a, p, a') ⋈ R^(p)(a') )

says a distributed array is the union of per-processor fragments joined
with the index-translation relation.  :func:`partition_rows` materializes
the row-partitioned fragments of a matrix: rows are renumbered to local
offsets (the a' of the equation); columns keep *global* numbering — how
each strategy localizes column references is exactly what distinguishes
the naive, mixed and hand-written paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import DistributionError
from repro.formats.coo import COOMatrix
from repro.relational import Relation

__all__ = ["RowFragment", "partition_rows"]


@dataclass
class RowFragment:
    """Processor p's fragment A^(p): local rows × global columns."""

    rank: int
    dist: Distribution
    matrix: COOMatrix  # shape (nlocal, nglobal_cols), rows local, cols global
    rows_global: np.ndarray  # local row offset -> global row index

    @property
    def nlocal(self) -> int:
        return len(self.rows_global)

    def used_columns(self) -> np.ndarray:
        """π_j σ_NZ(A^(p)) — the Used set of paper Eq. 21 (sorted, unique)."""
        return np.unique(self.matrix.col)

    def as_relation(self) -> Relation:
        """The fragment as the relation A^(p)(i', j, a)."""
        return Relation(
            ["ip", "j", "a"],
            {"ip": self.matrix.row, "j": self.matrix.col, "a": self.matrix.vals},
        )


def partition_rows(coo: COOMatrix, dist: Distribution) -> list[RowFragment]:
    """Split a matrix row-wise per the distribution (owner-computes on y).

    Returns one fragment per processor; together they reconstruct the
    global matrix through the fragmentation equation.
    """
    if dist.nglobal != coo.shape[0]:
        raise DistributionError(
            f"distribution covers {dist.nglobal} rows, matrix has {coo.shape[0]}"
        )
    coo = coo.canonicalized()
    frags = []
    for p in range(dist.nprocs):
        mine = dist.owned_by(p)
        local = coo.select_rows(mine)
        local = COOMatrix(
            (len(mine), coo.shape[1]), local.row, local.col, local.vals, canonical=True
        )
        frags.append(RowFragment(p, dist, local, mine))
    return frags
