"""The Table-2/3 trio: three executors over the SAME BlockSolve structures.

The paper's parallel evaluation compares, on one matrix stored in the
BlockSolve format (dense clique blocks A_D + off-diagonal i-nodes split
into A_SL / A_SNL by column locality):

* **BlockSolve** — the hand-written library kernels,
* **Bernoulli-Mixed** — compiler-generated kernels from the mixed
  local/global specification (Eq. 24): A_D and A_SL products are node
  programs addressing x directly; A_SNL goes through the inspector,
* **Bernoulli** — compiler-generated from the fully global specification
  (Eq. 23): every product is global, so the inspector translates *every*
  referenced column and the executor reads all of x through the ghost
  indirection.

Local structure carving happens at construction (it corresponds to matrix
assembly, which the library also does outside the inspector); ``setup()``
times exactly what the paper calls the inspector — communication-set
computation and index translation.
"""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_kernel
from repro.distribution.multiblock import MultiBlockDistribution
from repro.formats.blockdiag import BlockDiagonalMatrix
from repro.formats.blocksolve import BlockSolveMatrix
from repro.formats.dense import DenseVector
from repro.formats.inode import InodeMatrix
from repro.formats.translated import TranslatedVector
from repro.kernels.spmv import SPMV_SRC
from repro.runtime.comm import (
    CommOptions,
    exchange_finish,
    exchange_opt,
    exchange_start,
)
from repro.runtime.faults import ensure_valid_schedule
from repro.runtime.inspector import build_schedule_replicated, exchange  # noqa: F401
from repro.runtime.schedule_cache import ScheduleCache, cached_schedule

__all__ = ["BSFragments", "BlockSolveSpMV", "BernoulliMixedBS", "BernoulliGlobalBS"]


class BSFragments:
    """Per-rank carving of BlockSolve structures (assembly-time work).

    All index spaces are the *reordered* one of the BlockSolveMatrix.
    Carved pieces:

    * ``A_D``      — my dense clique blocks, local index space,
    * ``A_D_ino``  — the same blocks viewed as i-nodes with *global*
      columns (what the naive global specification sees),
    * ``A_SL``     — off-diagonal i-nodes touching locally-owned columns,
      columns renumbered to local x offsets,
    * ``A_SNL``    — off-diagonal i-nodes touching non-local columns,
      columns still global (``setup`` renumbers them to ghost slots),
    * ``off_global`` — all my off-diagonal i-nodes, columns global.
    """

    def __init__(
        self,
        rank: int,
        dist: MultiBlockDistribution,
        bs: BlockSolveMatrix,
        opts: CommOptions | None = None,
    ):
        self.rank = rank
        self.dist = dist
        self.bs = bs
        self.opts = opts or CommOptions()
        n = bs.shape[0]
        mine_rows = dist.owned_by(rank)
        self.nlocal = len(mine_rows)
        self.mine_rows = mine_rows
        mine_mask = np.zeros(n, dtype=bool)
        mine_mask[mine_rows] = True
        self.mine_mask = mine_mask
        row_map = -np.ones(n, dtype=np.int64)
        row_map[mine_rows] = np.arange(self.nlocal)

        # ---- dense clique blocks (cliques are never split across ranks)
        widths = np.diff(bs.clique_ptr)
        my_cliques = [
            b for b in range(len(widths)) if self.nlocal and mine_mask[bs.clique_ptr[b]]
        ]
        blockptr = [0]
        vals_parts: list[np.ndarray] = []
        voff = [0]
        ino_rows, ino_ptr, ino_cols, ino_colptr = [], [0], [], [0]
        for b in my_cliques:
            w = int(widths[b])
            lo = int(bs.clique_ptr[b])
            blk = bs.dense_blocks.vals[
                bs.dense_blocks.voff[b] : bs.dense_blocks.voff[b + 1]
            ]
            blockptr.append(blockptr[-1] + w)
            vals_parts.append(blk)
            voff.append(voff[-1] + w * w)
            # i-node view: rows local, columns GLOBAL (the clique's range)
            ino_rows.extend(row_map[np.arange(lo, lo + w)].tolist())
            ino_ptr.append(len(ino_rows))
            ino_cols.extend(range(lo, lo + w))
            ino_colptr.append(len(ino_cols))
        flat = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        if self.nlocal:
            self.A_D = BlockDiagonalMatrix(
                self.nlocal,
                np.asarray(blockptr, dtype=np.int64),
                flat,
                np.asarray(voff, dtype=np.int64),
            )
        else:
            self.A_D = None
        self.A_D_ino = InodeMatrix(
            (self.nlocal, n),
            np.asarray(ino_rows, dtype=np.int64),
            np.asarray(ino_ptr, dtype=np.int64),
            np.asarray(ino_cols, dtype=np.int64),
            np.asarray(ino_colptr, dtype=np.int64),
            flat,
            np.asarray(voff, dtype=np.int64),
        )

        # ---- off-diagonal i-nodes
        self.off_global = bs.offdiag.select_rows(mine_mask, row_map, self.nlocal)
        local_part, nonlocal_part = self.off_global.split_by_columns(mine_mask)
        col_local = np.zeros(n, dtype=np.int64)
        col_local[mine_rows] = np.arange(self.nlocal)
        self.A_SL = local_part.remap_columns(col_local, max(1, self.nlocal))
        self.A_SNL_global = nonlocal_part

    def _ghost_remap(self, ino: InodeMatrix, sched) -> InodeMatrix:
        """Renumber an i-node matrix's global columns to ghost slots."""
        n = self.bs.shape[0]
        ghost_map = np.zeros(n, dtype=np.int64)
        used = ino.column_support()
        if len(used):
            slots = sched.ghost_slot_of(used)
            ghost_map[used] = slots
        return ino.remap_columns(ghost_map, max(1, sched.nghost))

    def _inspect(self, used):
        """Inspector entry shared by the trio: build (or reuse from the
        schedule cache) the replicated-IND gather schedule for ``used``."""
        cache = self.opts.resolved_cache()
        key = ScheduleCache.key_replicated(self.rank, self.dist, used) if cache is not None else None
        sched = yield from cached_schedule(
            cache,
            key,
            self.dist.nprocs,
            lambda: build_schedule_replicated(self.rank, self.dist, used),
        )
        self._sched_cache = cache
        self._sched_cache_key = key
        return sched

    def _remember_schedule(self, used) -> None:
        """Store what the fault-recovery path needs: the Used set (to
        re-run the inspector) and the schedule fingerprint (to detect
        corruption and to verify the rebuilt schedule)."""
        self._used = used
        self._sched_sum = self.sched.checksum()

    def rebuild_schedule(self):
        """Fault-recovery re-inspection: rebuild from the same Used set.

        Deterministic, so the rebuilt schedule carries the original
        fingerprint and every ghost-slot-dependent structure built at
        ``setup()`` (remapped A_SNL, translation maps) stays valid."""
        sched = yield from build_schedule_replicated(self.rank, self.dist, self._used)
        return sched


class BlockSolveSpMV(BSFragments):
    """Hand-written library path: batched dense kernels, boundary-only
    inspector against the replicated multi-block distribution."""

    def setup(self):
        used = self.A_SNL_global.column_support()
        self.sched = yield from self._inspect(used)
        self.A_SNL = self._ghost_remap(self.A_SNL_global, self.sched)
        self._remember_schedule(used)
        return None

    def step(self, xlocal: np.ndarray):
        yield from ensure_valid_schedule(self)
        y = np.zeros(self.nlocal)
        if self.opts.overlap:
            # the library's own pipeline: exchange in flight while the
            # clique blocks and local i-nodes multiply
            pending = yield from exchange_start(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            if self.A_D is not None:
                self.A_D.matvec(xlocal, out=y)
            self.A_SL.matvec(xlocal, out=y)
            ghost = yield from exchange_finish(
                self.sched, xlocal, pending, owner=type(self).__name__
            )
        else:
            if self.A_D is not None:
                self.A_D.matvec(xlocal, out=y)
            self.A_SL.matvec(xlocal, out=y)
            ghost = yield from exchange_opt(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
        self.A_SNL.matvec(ghost, out=y)
        return y


class BernoulliMixedBS(BSFragments):
    """Compiler-generated executor from the mixed specification (Eq. 24):

        local:  y^(p)  = A_D^(p) · x^(p)
        local:  y^(p) += A_SL^(p) · x^(p)
        global: y     += A_SNL · x
    """

    def setup(self):
        used = self.A_SNL_global.column_support()
        self.sched = yield from self._inspect(used)
        self.A_SNL = self._ghost_remap(self.A_SNL_global, self.sched)
        self._xbuf = DenseVector.zeros(max(1, self.nlocal))
        self._gbuf = DenseVector.zeros(max(1, self.sched.nghost))
        self._ybuf = DenseVector.zeros(self.nlocal)
        if self.A_D is not None:
            kD = compile_kernel(SPMV_SRC, {"A": self.A_D, "X": self._xbuf, "Y": self._ybuf})
            self._runD = kD.bind(A=self.A_D, X=self._xbuf, Y=self._ybuf)
        else:
            self._runD = None
        kSL = compile_kernel(SPMV_SRC, {"A": self.A_SL, "X": self._xbuf, "Y": self._ybuf})
        kSNL = compile_kernel(SPMV_SRC, {"A": self.A_SNL, "X": self._gbuf, "Y": self._ybuf})
        self._runSL = kSL.bind(A=self.A_SL, X=self._xbuf, Y=self._ybuf)
        self._runSNL = kSNL.bind(A=self.A_SNL, X=self._gbuf, Y=self._ybuf)
        self._remember_schedule(used)
        return None

    def step(self, xlocal: np.ndarray):
        yield from ensure_valid_schedule(self)
        self._ybuf.vals[:] = 0.0
        if self.nlocal:
            self._xbuf.vals[:] = xlocal
        if self.opts.overlap:
            # Eq. 24's declared split makes the pipeline free: the two
            # local statements need no ghost values, so they run inside
            # the exchange window
            pending = yield from exchange_start(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            if self._runD is not None:
                self._runD()
            self._runSL()
            ghost = yield from exchange_finish(
                self.sched, xlocal, pending, owner=type(self).__name__
            )
        else:
            if self._runD is not None:
                self._runD()
            self._runSL()
            ghost = yield from exchange_opt(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
        if self.sched.nghost:
            self._gbuf.vals[:] = ghost
        self._runSNL()
        return self._ybuf.vals.copy()


class BernoulliGlobalBS(BSFragments):
    """Compiler-generated executor from the fully global specification
    (Eq. 23): both products reference x through global indices, so the
    inspector must translate *every* referenced column (work proportional
    to the local problem size) and the executor reads every x value
    through one extra level of indirection (the gathered ghost buffer)."""

    def setup(self):
        n = self.bs.shape[0]
        used = np.union1d(
            self.A_D_ino.column_support(), self.off_global.column_support()
        )
        self.sched = yield from self._inspect(used)
        # the problem-size translation structure the naive spec forces:
        # a full global-to-ghost map, applied at *runtime* on every access
        xmap = np.zeros(n, dtype=np.int64)
        if len(used):
            xmap[used] = self.sched.ghost_slot_of(used)
        gbuf = np.zeros(max(1, self.sched.nghost))
        self._gbuf = gbuf
        self._xview = TranslatedVector(n, gbuf, xmap)
        self._ybuf = DenseVector.zeros(self.nlocal)
        kD = compile_kernel(SPMV_SRC, {"A": self.A_D_ino, "X": self._xview, "Y": self._ybuf})
        kOff = compile_kernel(SPMV_SRC, {"A": self.off_global, "X": self._xview, "Y": self._ybuf})
        self._runD = kD.bind(A=self.A_D_ino, X=self._xview, Y=self._ybuf)
        self._runOff = kOff.bind(A=self.off_global, X=self._xview, Y=self._ybuf)
        self._remember_schedule(used)
        return None

    def step(self, xlocal: np.ndarray):
        yield from ensure_valid_schedule(self)
        if self.opts.overlap:
            # the global spec leaves NOTHING to hide behind the wire:
            # both products read x through the ghost buffer, so the
            # window closes immediately — the cost of Eq. 23's missing
            # locality declaration, visible in ``comm.overlap_ratio``
            pending = yield from exchange_start(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            self._ybuf.vals[:] = 0.0
            ghost = yield from exchange_finish(
                self.sched, xlocal, pending, owner=type(self).__name__
            )
        else:
            ghost = yield from exchange_opt(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            self._ybuf.vals[:] = 0.0
        if self.sched.nghost:
            self._gbuf[: self.sched.nghost] = ghost
        self._runD()
        self._runOff()
        return self._ybuf.vals.copy()
