"""The distributed SpMV strategies of the evaluation (paper Sec. 3.3 & 4).

Each strategy is a per-rank object with two SPMD generator methods:

* ``setup()``   — the *inspector*: build whatever communication schedule
  and localized data structures the strategy needs,
* ``step(x)``   — the *executor*: one y = A·x over the local rows, given
  the local piece of x.

The five strategies:

===============  ====================================================
``blocksolve``   hand-written library code over BlockSolve structures
                 (dense clique blocks A_D + local i-nodes A_SL + ghost
                 i-nodes A_SNL); ownership from the replicated
                 multi-block distribution
``mixed``        Bernoulli-Mixed (paper Eq. 24): compiled kernels; the
                 local/non-local split is declared, so the inspector
                 only touches boundary columns
``global``       Bernoulli naive (paper Eq. 23): fully data-parallel
                 spec; the inspector translates *every* referenced
                 column (work ∝ problem size) and the executor reads x
                 through one extra indirection everywhere
``indirect-mixed``  like ``mixed`` but ownership goes through a Chaos
                 distributed translation table (inspector only)
``indirect``     like ``global`` with the translation table
                 (inspector only)
===============  ====================================================
"""

from __future__ import annotations

import numpy as np

from repro.compiler import compile_kernel
from repro.distribution.base import Distribution
from repro.distribution.translation import build_translation_table
from repro.errors import InspectorError
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseVector
from repro.formats.translated import TranslatedVector
from repro.kernels.spmv import SPMV_SRC
from repro.parallel.fragment import RowFragment
from repro.parallel.spmd_blocksolve import BlockSolveSpMV  # noqa: F401 (re-export)
from repro.runtime.comm import (
    CommOptions,
    exchange_finish,
    exchange_opt,
    exchange_start,
)
from repro.runtime.faults import ensure_valid_schedule
from repro.runtime.inspector import (
    build_schedule_replicated,
    build_schedule_translated,
    exchange,  # noqa: F401 (re-export; executors now go through exchange_opt)
)
from repro.runtime.schedule_cache import ScheduleCache, cached_schedule

__all__ = [
    "GlobalSpMV",
    "BlockSolveSpMV",
    "MixedSpMV",
    "IndirectInspector",
    "SPMV_VARIANTS",
    "make_spmv_setup",
    "spmv_executor_step",
]


def _crs_from_parts(nrows, ncols, row, col, vals) -> CRSMatrix:
    return CRSMatrix.from_coo(
        COOMatrix((nrows, ncols), row, col, vals).canonicalized()
    )


class GlobalSpMV:
    """Bernoulli naive: fully-global specification (paper Eq. 23).

    The inspector cannot know that most references are local: it builds a
    global-to-ghost translation for *every* referenced column, and the
    executor reads every x value through the ghost indirection — the
    redundant level of indirection the paper measures at ~10% executor
    slowdown and ~10× inspector cost.
    """

    def __init__(
        self,
        rank: int,
        dist: Distribution,
        frag: RowFragment,
        opts: CommOptions | None = None,
    ):
        self.rank = rank
        self.dist = dist
        self.frag = frag
        self.nlocal = frag.nlocal
        self.opts = opts or CommOptions()

    def setup(self):
        nglobal = self.frag.matrix.shape[1]
        used = self.frag.used_columns()  # ∝ local problem size
        cache = self.opts.resolved_cache()
        key = ScheduleCache.key_replicated(self.rank, self.dist, used) if cache is not None else None
        self.sched = yield from cached_schedule(
            cache,
            key,
            self.dist.nprocs,
            lambda: build_schedule_replicated(self.rank, self.dist, used),
        )
        self._sched_cache = cache
        self._sched_cache_key = key
        # the fragment keeps GLOBAL columns; x is accessed through a
        # problem-size global-to-ghost map at runtime — the redundant
        # indirection of the naive specification
        xmap = np.zeros(nglobal, dtype=np.int64)
        if len(used):
            slots = self.sched.ghost_slot_of(used)
            if np.any(slots < 0):
                raise InspectorError("ghost translation missed a used column")
            xmap[used] = slots
        self.A = _crs_from_parts(
            self.nlocal,
            nglobal,
            self.frag.matrix.row,
            self.frag.matrix.col,
            self.frag.matrix.vals,
        )
        gbuf = np.zeros(max(1, self.sched.nghost))
        self._gbuf = gbuf
        self._xview = TranslatedVector(nglobal, gbuf, xmap)
        self._ybuf = DenseVector.zeros(self.nlocal)
        kernel = compile_kernel(SPMV_SRC, {"A": self.A, "X": self._xview, "Y": self._ybuf})
        self._run = kernel.bind(A=self.A, X=self._xview, Y=self._ybuf)
        self._used = used
        self._sched_sum = self.sched.checksum()
        return None

    def rebuild_schedule(self):
        """Fault-recovery re-inspection: rebuild from the same Used set."""
        sched = yield from build_schedule_replicated(self.rank, self.dist, self._used)
        return sched

    def step(self, xlocal: np.ndarray):
        yield from ensure_valid_schedule(self)
        if self.opts.overlap:
            # the naive spec has NO interior rows — every reference goes
            # through the ghost indirection — so the only work that can
            # hide behind the wire is the output clear.  The window still
            # opens/closes so the collective pattern matches the mixed
            # executors rank-for-rank.
            pending = yield from exchange_start(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            self._ybuf.vals[:] = 0.0
            ghost = yield from exchange_finish(
                self.sched, xlocal, pending, owner=type(self).__name__
            )
        else:
            ghost = yield from exchange_opt(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            self._ybuf.vals[:] = 0.0
        if self.sched.nghost:
            self._gbuf[: self.sched.nghost] = ghost
        self._run()
        return self._ybuf.vals.copy()


class MixedSpMV:
    """Bernoulli-Mixed: the mixed local/global specification (paper Eq. 24).

    The products against locally-owned columns are node-level compiled
    kernels addressing x directly; only the non-local part goes through
    the inspector, whose Used set is just the boundary.
    """

    def __init__(
        self,
        rank: int,
        dist: Distribution,
        frag: RowFragment,
        opts: CommOptions | None = None,
    ):
        self.rank = rank
        self.dist = dist
        self.frag = frag
        self.nlocal = frag.nlocal
        self.opts = opts or CommOptions()

    def setup(self):
        m = self.frag.matrix
        mine = self.dist.owner(m.col) == self.rank  # local lookup: replicated IND
        # local part: columns renumbered straight to local x offsets
        self.A_local = _crs_from_parts(
            self.nlocal,
            max(1, self.nlocal),
            m.row[mine],
            self.dist.local_index(m.col[mine]),
            m.vals[mine],
        )
        used = np.unique(m.col[~mine])  # boundary only
        cache = self.opts.resolved_cache()
        key = ScheduleCache.key_replicated(self.rank, self.dist, used) if cache is not None else None
        self.sched = yield from cached_schedule(
            cache,
            key,
            self.dist.nprocs,
            lambda: build_schedule_replicated(self.rank, self.dist, used),
        )
        self._sched_cache = cache
        self._sched_cache_key = key
        ghost_cols = self.sched.ghost_slot_of(m.col[~mine])
        self.A_ghost = _crs_from_parts(
            self.nlocal,
            max(1, self.sched.nghost),
            m.row[~mine],
            ghost_cols,
            m.vals[~mine],
        )
        self._xbuf = DenseVector.zeros(max(1, self.nlocal))
        self._gbuf = DenseVector.zeros(max(1, self.sched.nghost))
        self._ybuf = DenseVector.zeros(self.nlocal)
        k_local = compile_kernel(SPMV_SRC, {"A": self.A_local, "X": self._xbuf, "Y": self._ybuf})
        k_ghost = compile_kernel(SPMV_SRC, {"A": self.A_ghost, "X": self._gbuf, "Y": self._ybuf})
        self._run_local = k_local.bind(A=self.A_local, X=self._xbuf, Y=self._ybuf)
        self._run_ghost = k_ghost.bind(A=self.A_ghost, X=self._gbuf, Y=self._ybuf)
        self._used = used
        self._sched_sum = self.sched.checksum()
        return None

    def rebuild_schedule(self):
        """Fault-recovery re-inspection: rebuild from the same Used set."""
        sched = yield from build_schedule_replicated(self.rank, self.dist, self._used)
        return sched

    def step(self, xlocal: np.ndarray):
        yield from ensure_valid_schedule(self)
        self._ybuf.vals[:] = 0.0
        if self.nlocal:
            self._xbuf.vals[:] = xlocal
        if self.opts.overlap:
            # BlockSolve95-style pipeline: post the boundary exchange,
            # multiply the interior (A_local needs no ghost values) while
            # packets fly, then close the window and finish the boundary.
            pending = yield from exchange_start(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
            self._run_local()
            ghost = yield from exchange_finish(
                self.sched, xlocal, pending, owner=type(self).__name__
            )
        else:
            self._run_local()
            ghost = yield from exchange_opt(
                self.sched, xlocal, coalesce=self.opts.coalesce, owner=type(self).__name__
            )
        if self.sched.nghost:
            self._gbuf.vals[:] = ghost
        self._run_ghost()
        return self._ybuf.vals.copy()


class IndirectInspector:
    """Chaos-style inspectors for the HPF-2 INDIRECT distribution.

    The distribution relation is NOT replicated: ownership must be
    resolved through a distributed translation table (build: all-to-all
    with volume ∝ problem size; query: another all-to-all round).  The
    executor would be identical to the Bernoulli ones, so — like the
    paper — only the inspector is materialized and measured.

    ``used_cols`` is the Used set to translate: for the mixed spec, the
    non-local references only; for the naive spec, every referenced
    column.
    """

    def __init__(
        self,
        rank: int,
        nglobal: int,
        nprocs: int,
        owned_global,
        used_cols,
        opts: CommOptions | None = None,
    ):
        self.rank = rank
        self.nglobal = int(nglobal)
        self.nprocs = int(nprocs)
        self.owned_global = np.asarray(owned_global, dtype=np.int64)
        self.used_cols = np.asarray(used_cols, dtype=np.int64)
        self.opts = opts or CommOptions()

    @classmethod
    def from_fragment(
        cls,
        rank: int,
        dist: Distribution,
        frag: RowFragment,
        mixed: bool,
        opts: CommOptions | None = None,
    ):
        """Build from a row fragment: naive Used = all referenced columns;
        mixed Used = columns outside my own index list (local knowledge)."""
        owned = frag.rows_global
        cols = frag.matrix.col
        if mixed:
            mine = np.zeros(dist.nglobal, dtype=bool)
            mine[owned] = True
            used = np.unique(cols[~mine[cols]])
        else:
            used = np.unique(cols)
        return cls(rank, dist.nglobal, dist.nprocs, owned, used, opts=opts)

    def _build(self):
        table = yield from build_translation_table(
            self.rank, self.nglobal, self.nprocs, self.owned_global
        )
        sched = yield from build_schedule_translated(self.rank, table, self.used_cols)
        return sched

    def setup(self):
        # A cache hit skips the WHOLE Chaos inspection — translation-table
        # build (volume ∝ problem size) AND the dereference rounds — which
        # is exactly the cost Table 3 shows dominating the indirect paths.
        cache = self.opts.resolved_cache()
        key = (
            ScheduleCache.key_translated(
                self.rank, self.nglobal, self.nprocs, self.owned_global, self.used_cols
            )
            if cache is not None
            else None
        )
        self.sched = yield from cached_schedule(
            cache, key, self.nprocs, self._build
        )
        self._sched_cache = cache
        self._sched_cache_key = key
        return None

    def step(self, xlocal):  # pragma: no cover - not used in the evaluation
        raise InspectorError("Indirect variants materialize the inspector only")
        yield


SPMV_VARIANTS = {
    "mixed": MixedSpMV,
    "global": GlobalSpMV,
    "indirect-mixed": lambda rank, dist, frag, opts=None: IndirectInspector.from_fragment(
        rank, dist, frag, True, opts=opts
    ),
    "indirect": lambda rank, dist, frag, opts=None: IndirectInspector.from_fragment(
        rank, dist, frag, False, opts=opts
    ),
}


def make_spmv_setup(variant: str, rank: int, dist, frag_or_bs, opts=None):
    """Construct the per-rank strategy object for ``variant``."""
    try:
        cls = SPMV_VARIANTS[variant]
    except KeyError:
        raise KeyError(f"unknown variant {variant!r}; known: {sorted(SPMV_VARIANTS)}") from None
    return cls(rank, dist, frag_or_bs, opts=opts)


def spmv_executor_step(strategy, xlocal):
    """One executor iteration of any strategy (SPMD subroutine)."""
    y = yield from strategy.step(xlocal)
    return y
