"""Relational algebra substrate (paper Section 2, Appendix B).

Arrays — sparse and dense — are modelled as relations of index/value tuples,
and loop execution is modelled as relational query evaluation.  This package
provides:

* :class:`~repro.relational.schema.Schema` — ordered field names,
* :class:`~repro.relational.relation.Relation` — a materialized,
  column-oriented relation backed by numpy arrays, with selection,
  projection, renaming, union and equi-joins,
* :mod:`~repro.relational.joins` — merge, hash and index-nested-loop join
  algorithms used both by the interpreted evaluator and (as templates) by
  the compiler's code generator,
* :mod:`~repro.relational.predicates` — the sparsity-predicate IR
  (NZ literals combined with AND/OR, normalized to DNF),
* :mod:`~repro.relational.query` — the query IR the compiler extracts from a
  loop nest (Eq. 4 / Eq. 6 of the paper).

The interpreted evaluator here is the semantic reference: the compiler's
generated kernels are tested against it.
"""

from repro.relational.schema import Schema
from repro.relational.relation import Relation
from repro.relational.predicates import (
    NZ,
    And,
    Or,
    TruePred,
    FalsePred,
    Predicate,
    to_dnf,
)
from repro.relational.query import RelTerm, Query

__all__ = [
    "Schema",
    "Relation",
    "NZ",
    "And",
    "Or",
    "TruePred",
    "FalsePred",
    "Predicate",
    "to_dnf",
    "RelTerm",
    "Query",
]
