"""Equi-join algorithms over column-oriented relations.

Each algorithm returns a pair of integer index arrays ``(left_idx,
right_idx)`` such that row ``left_idx[k]`` of the left input matches row
``right_idx[k]`` of the right input on all key fields.  The caller gathers
output columns from these.

Three classic implementations are provided — the same menu the compiler's
planner chooses from when scheduling a query (paper Section 2: "determining
how each of the joins should be implemented"):

* :func:`nested_loop_join` — O(n·m), no preconditions; the oracle used in
  tests.
* :func:`hash_join` — O(n+m) expected; build on the smaller input.
* :func:`merge_join` — O(n+m); requires both inputs sorted on the keys and
  produces output sorted on the keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.relation import Relation

__all__ = ["nested_loop_join", "hash_join", "merge_join", "is_sorted_by"]


def _key_columns(rel: "Relation", keys: Sequence[str]) -> list[np.ndarray]:
    return [rel.column(k) for k in keys]


def _key_tuple(cols: list[np.ndarray], i: int) -> tuple:
    return tuple(c[i].item() for c in cols)


def nested_loop_join(left: "Relation", right: "Relation", keys: Sequence[str]):
    """Brute-force O(n·m) join; the correctness oracle."""
    lc, rc = _key_columns(left, keys), _key_columns(right, keys)
    li, ri = [], []
    for i in range(len(left)):
        ki = _key_tuple(lc, i)
        for j in range(len(right)):
            if _key_tuple(rc, j) == ki:
                li.append(i)
                ri.append(j)
    return np.asarray(li, dtype=np.int64), np.asarray(ri, dtype=np.int64)


def hash_join(left: "Relation", right: "Relation", keys: Sequence[str]):
    """Hash join: build a table on the smaller side, probe with the larger.

    Output order follows the probe side (then build-side insertion order
    within a key group), which matches the nested-loop result as a bag.
    """
    swap = len(left) < len(right)
    build, probe = (left, right) if swap else (right, left)
    bc, pc = _key_columns(build, keys), _key_columns(probe, keys)
    table: dict[tuple, list[int]] = {}
    for j in range(len(build)):
        table.setdefault(_key_tuple(bc, j), []).append(j)
    pi, bi = [], []
    for i in range(len(probe)):
        matches = table.get(_key_tuple(pc, i))
        if matches:
            for j in matches:
                pi.append(i)
                bi.append(j)
    pi_a = np.asarray(pi, dtype=np.int64)
    bi_a = np.asarray(bi, dtype=np.int64)
    if swap:
        return bi_a, pi_a  # build side was 'left'
    return pi_a, bi_a


def is_sorted_by(rel: "Relation", keys: Sequence[str]) -> bool:
    """True iff the rows are lexicographically non-decreasing on ``keys``."""
    if len(rel) <= 1:
        return True
    cols = _key_columns(rel, keys)
    prev = _key_tuple(cols, 0)
    for i in range(1, len(rel)):
        cur = _key_tuple(cols, i)
        if cur < prev:
            return False
        prev = cur
    return True


def merge_join(left: "Relation", right: "Relation", keys: Sequence[str]):
    """Sort-merge join.  Both inputs must already be sorted on ``keys``.

    Raises ``ValueError`` if an input is not sorted — the planner is
    responsible for only selecting a merge join when the access methods
    guarantee sorted enumeration (the ``sorted`` access-method property).
    """
    if not is_sorted_by(left, keys):
        raise ValueError("merge_join: left input not sorted on keys")
    if not is_sorted_by(right, keys):
        raise ValueError("merge_join: right input not sorted on keys")
    lc, rc = _key_columns(left, keys), _key_columns(right, keys)
    n, m = len(left), len(right)
    li, ri = [], []
    i = j = 0
    while i < n and j < m:
        ki, kj = _key_tuple(lc, i), _key_tuple(rc, j)
        if ki < kj:
            i += 1
        elif ki > kj:
            j += 1
        else:
            # emit the full cross product of the equal-key groups
            i2 = i
            while i2 < n and _key_tuple(lc, i2) == ki:
                i2 += 1
            j2 = j
            while j2 < m and _key_tuple(rc, j2) == ki:
                j2 += 1
            for a in range(i, i2):
                for b in range(j, j2):
                    li.append(a)
                    ri.append(b)
            i, j = i2, j2
    return np.asarray(li, dtype=np.int64), np.asarray(ri, dtype=np.int64)
