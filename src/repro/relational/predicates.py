"""Sparsity predicates (paper Eq. 3): guards of the form NZ(A(i,j)).

The compiler derives, for each statement, a predicate over ``NZ(array(idx))``
literals that is true exactly on the iterations that must be executed.
Products give conjunctions (a*b ≠ 0 requires both nonzero); sums give
disjunctions (a+b may be nonzero if either is).  The planner consumes the
predicate in *disjunctive normal form*: each disjunct is a conjunctive query
that can be scheduled independently (union of enumerations).

Predicates are immutable and hashable so they can key the kernel cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "Predicate",
    "TruePred",
    "FalsePred",
    "NZ",
    "And",
    "Or",
    "conj",
    "disj",
    "to_dnf",
]


class Predicate:
    """Base class for sparsity predicates."""

    def evaluate(self, nz: Callable[[str, tuple], bool]) -> bool:
        """Evaluate with ``nz(array_name, index_tuple) -> bool``."""
        raise NotImplementedError

    def arrays(self) -> frozenset[str]:
        """Names of all arrays mentioned by NZ literals."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePred(Predicate):
    """Always true (all iterations run — fully dense statement)."""

    def evaluate(self, nz):
        return True

    def arrays(self):
        return frozenset()

    def __repr__(self):
        return "TRUE"


@dataclass(frozen=True)
class FalsePred(Predicate):
    """Never true (statement provably has no effect)."""

    def evaluate(self, nz):
        return False

    def arrays(self):
        return frozenset()

    def __repr__(self):
        return "FALSE"


@dataclass(frozen=True)
class NZ(Predicate):
    """The literal NZ(array(indices)): the element is (structurally) nonzero.

    ``indices`` is a tuple of loop-index names, e.g. ``NZ("A", ("i", "j"))``
    for the predicate NZ(A(i,j)).
    """

    array: str
    indices: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))

    def evaluate(self, nz):
        return bool(nz(self.array, self.indices))

    def arrays(self):
        return frozenset({self.array})

    def __repr__(self):
        return f"NZ({self.array}({','.join(self.indices)}))"


def _flatten(cls, children: Iterable[Predicate]) -> tuple[Predicate, ...]:
    out: list[Predicate] = []
    for c in children:
        if isinstance(c, cls):
            out.extend(c.children)
        else:
            out.append(c)
    # deduplicate while preserving order
    seen: set[Predicate] = set()
    uniq = []
    for c in out:
        if c not in seen:
            seen.add(c)
            uniq.append(c)
    return tuple(uniq)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction.  Simplification is done by :func:`conj`."""

    children: tuple[Predicate, ...]

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))

    def evaluate(self, nz):
        return all(c.evaluate(nz) for c in self.children)

    def arrays(self):
        return frozenset().union(*(c.arrays() for c in self.children)) if self.children else frozenset()

    def __repr__(self):
        return "(" + " & ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction.  Simplification is done by :func:`disj`."""

    children: tuple[Predicate, ...]

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))

    def evaluate(self, nz):
        return any(c.evaluate(nz) for c in self.children)

    def arrays(self):
        return frozenset().union(*(c.arrays() for c in self.children)) if self.children else frozenset()

    def __repr__(self):
        return "(" + " | ".join(map(repr, self.children)) + ")"


def conj(*ps: Predicate) -> Predicate:
    """Smart AND: flattens, drops TRUE, short-circuits FALSE."""
    kept: list[Predicate] = []
    for p in _flatten(And, ps):
        if isinstance(p, FalsePred):
            return FalsePred()
        if not isinstance(p, TruePred):
            kept.append(p)
    if not kept:
        return TruePred()
    if len(kept) == 1:
        return kept[0]
    return And(tuple(kept))


def disj(*ps: Predicate) -> Predicate:
    """Smart OR: flattens, drops FALSE, short-circuits TRUE."""
    kept: list[Predicate] = []
    for p in _flatten(Or, ps):
        if isinstance(p, TruePred):
            return TruePred()
        if not isinstance(p, FalsePred):
            kept.append(p)
    if not kept:
        return FalsePred()
    if len(kept) == 1:
        return kept[0]
    return Or(tuple(kept))


def to_dnf(p: Predicate) -> list[tuple[NZ, ...]]:
    """Normalize to DNF: a list of conjunctions, each a tuple of NZ literals.

    * ``TRUE``  → ``[()]``        (one disjunct with no constraints)
    * ``FALSE`` → ``[]``          (no disjuncts at all)

    Duplicate literals within a conjunct are removed; conjuncts subsumed by
    a weaker conjunct (a subset of its literals) are dropped, so e.g.
    ``NZ(A) | (NZ(A) & NZ(B))`` normalizes to ``[NZ(A)]``.
    """
    disjuncts = _dnf(p)
    # canonicalize each conjunct: dedupe + stable order
    canon: list[tuple[NZ, ...]] = []
    seen: set[frozenset] = set()
    for con in disjuncts:
        lits = []
        s: set[NZ] = set()
        for lit in con:
            if lit not in s:
                s.add(lit)
                lits.append(lit)
        key = frozenset(s)
        if key not in seen:
            seen.add(key)
            canon.append(tuple(lits))
    # drop subsumed conjuncts (a superset conjunct is implied by its subset)
    sets = [frozenset(c) for c in canon]
    kept = []
    for k, c in enumerate(canon):
        if any(sets[m] < sets[k] for m in range(len(canon))):
            continue
        kept.append(c)
    return kept


def _dnf(p: Predicate) -> list[tuple[NZ, ...]]:
    if isinstance(p, TruePred):
        return [()]
    if isinstance(p, FalsePred):
        return []
    if isinstance(p, NZ):
        return [(p,)]
    if isinstance(p, Or):
        out: list[tuple[NZ, ...]] = []
        for c in p.children:
            out.extend(_dnf(c))
        return out
    if isinstance(p, And):
        parts = [_dnf(c) for c in p.children]
        acc: list[tuple[NZ, ...]] = [()]
        for part in parts:
            acc = [a + b for a in acc for b in part]
        return acc
    raise TypeError(f"not a predicate: {p!r}")
