"""Query IR: what the compiler extracts from a dense loop nest (Eq. 4/6).

A :class:`Query` is the relational form of one DOANY statement:

    Q_sparse = σ_P ( I(i,j,...) ⋈ A(i,j,a) ⋈ X(j,x) ⋈ Y(i,y) ⋈ P(i,i') ... )

* the *iteration term* covers the loop bounds (the relation I),
* one *array term* per distinct array reference, carrying which loop
  indices address each dimension and the name of its value field,
* optional *translation terms* for permutations (paper Sec 2.2),
* the sparsity predicate σ_P.

The IR is deliberately independent of storage formats: the planner combines
it with per-array access-method descriptions to produce an executable plan.
All nodes are immutable and hashable (they key the kernel cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchemaError
from repro.relational.predicates import Predicate, TruePred

__all__ = ["RelTerm", "IndexVar", "Query"]


@dataclass(frozen=True)
class IndexVar:
    """A loop index with its half-open dense bounds ``lo <= v < hi``.

    Bounds are symbolic strings (e.g. ``"0"``, ``"n"``); they are resolved
    to integers at kernel-bind time from the arrays' shapes or explicit
    arguments.
    """

    name: str
    lo: str = "0"
    hi: str = "n"

    def __repr__(self):
        return f"{self.name}∈[{self.lo},{self.hi})"


@dataclass(frozen=True)
class RelTerm:
    """One relation in the join: an array viewed as index/value tuples.

    Parameters
    ----------
    array:
        The program-level array name (``"A"``).
    indices:
        Loop-index names addressing each dimension, in dimension order
        (``("i", "j")`` for ``A[i,j]``).
    value:
        Name of the value field (``"a"``), or ``None`` for index-translation
        relations that carry no value.
    kind:
        ``"array"`` for data arrays, ``"translation"`` for permutations /
        index-translation relations.
    """

    array: str
    indices: tuple[str, ...]
    value: str | None = None
    kind: str = "array"

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))
        if self.kind not in ("array", "translation"):
            raise SchemaError(f"bad term kind {self.kind!r}")

    def fields(self) -> tuple[str, ...]:
        """All fields of the relation this term denotes."""
        return self.indices + ((self.value,) if self.value else ())

    def __repr__(self):
        v = f",{self.value}" if self.value else ""
        return f"{self.array}({','.join(self.indices)}{v})"


@dataclass(frozen=True)
class Query:
    """σ_P ( I ⋈ term_1 ⋈ ... ⋈ term_k ), plus which term is written.

    ``output`` names the array term that the statement stores into (the
    reduction target for ``+=`` statements); every other term is read-only.
    """

    index_vars: tuple[IndexVar, ...]
    terms: tuple[RelTerm, ...]
    predicate: Predicate = field(default_factory=TruePred)
    output: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "index_vars", tuple(self.index_vars))
        object.__setattr__(self, "terms", tuple(self.terms))
        names = [v.name for v in self.index_vars]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate index vars {names}")
        known = set(names)
        for t in self.terms:
            for ix in t.indices:
                if ix not in known:
                    raise SchemaError(
                        f"term {t} uses index {ix!r} not bound by a loop"
                    )
        if self.output is not None and self.output not in {t.array for t in self.terms}:
            raise SchemaError(f"output {self.output!r} is not a term")

    def term_for(self, array: str) -> RelTerm:
        """The (first) term referencing ``array``."""
        for t in self.terms:
            if t.array == array:
                return t
        raise SchemaError(f"no term for array {array!r}")

    def terms_using(self, index: str) -> tuple[RelTerm, ...]:
        """All terms whose relation constrains ``index``."""
        return tuple(t for t in self.terms if index in t.indices)

    def index_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.index_vars)

    def __repr__(self):
        joins = " ⋈ ".join(map(repr, self.terms))
        return f"σ_{self.predicate!r}( I({','.join(self.index_names())}) ⋈ {joins} )"
