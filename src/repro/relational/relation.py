"""Materialized, column-oriented relations.

A :class:`Relation` stores one numpy array per field (all of equal length).
Bag semantics: duplicate tuples are allowed and preserved; ``project``
removes duplicates (set semantics, as in the paper's π operator) unless
asked not to, and ``distinct`` is available explicitly.

This is the *interpreted* evaluator — the semantic reference against which
the compiler's generated kernels are tested, and the engine the parallel
inspector uses to compute Used / RecvInd sets (paper Eq. 21–22).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational import joins as _joins

__all__ = ["Relation"]


def _as_column(values) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise SchemaError(f"relation columns must be 1-D, got shape {arr.shape}")
    return arr


class Relation:
    """A relation with named, typed columns.

    Parameters
    ----------
    schema:
        Field names (a :class:`Schema` or an iterable of names).
    columns:
        Mapping from field name to a 1-D array-like.  All columns must have
        the same length and exactly cover the schema.
    """

    __slots__ = ("schema", "_cols")

    def __init__(self, schema: Schema | Iterable[str], columns: Mapping[str, Sequence]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        cols: dict[str, np.ndarray] = {}
        n = None
        for f in schema:
            if f not in columns:
                raise SchemaError(f"missing column {f!r}")
            c = _as_column(columns[f])
            if n is None:
                n = len(c)
            elif len(c) != n:
                raise SchemaError(
                    f"column {f!r} has length {len(c)}, expected {n}"
                )
            cols[f] = c
        extra = set(columns) - set(schema.fields)
        if extra:
            raise SchemaError(f"columns {sorted(extra)} not in schema {schema}")
        self._cols = cols

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(cls, schema: Schema | Iterable[str], rows: Iterable[tuple]) -> "Relation":
        """Build a relation from an iterable of tuples (row-major input)."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = list(rows)
        if rows:
            transposed = list(zip(*rows))
            if len(transposed) != len(schema):
                raise SchemaError(
                    f"rows have arity {len(transposed)}, schema has {len(schema)}"
                )
            cols = {f: np.asarray(col) for f, col in zip(schema, transposed)}
        else:
            cols = {f: np.empty(0, dtype=np.int64) for f in schema}
        return cls(schema, cols)

    @classmethod
    def empty(cls, schema: Schema | Iterable[str], dtypes: Mapping[str, np.dtype] | None = None) -> "Relation":
        """An empty relation over ``schema`` (int64 columns by default)."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        dtypes = dtypes or {}
        cols = {
            f: np.empty(0, dtype=dtypes.get(f, np.int64)) for f in schema
        }
        return cls(schema, cols)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def column(self, field: str) -> np.ndarray:
        """The column for ``field`` (a view; treat as read-only)."""
        try:
            return self._cols[field]
        except KeyError:
            raise SchemaError(f"no column {field!r} in {self.schema}") from None

    def __len__(self) -> int:
        return len(self._cols[self.schema.fields[0]])

    def to_tuples(self) -> list[tuple]:
        """Materialize as a list of Python tuples (row-major)."""
        cols = [self._cols[f] for f in self.schema]
        return [tuple(c[i].item() for c in cols) for i in range(len(self))]

    def to_set(self) -> set[tuple]:
        """Materialize as a set of tuples (ignores multiplicity/order)."""
        return set(self.to_tuples())

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema, same tuples with same multiplicities."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        return sorted(self.to_tuples()) == sorted(other.to_tuples())

    def __hash__(self):  # relations are mutable-ish containers
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:
        return f"Relation({list(self.schema.fields)}, n={len(self)})"

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def select_mask(self, mask: np.ndarray) -> "Relation":
        """σ by a boolean mask aligned with the rows."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise SchemaError(f"mask shape {mask.shape} != ({len(self)},)")
        return Relation(self.schema, {f: c[mask] for f, c in self._cols.items()})

    def select(self, pred: Callable[..., np.ndarray]) -> "Relation":
        """σ by a vectorized predicate over the columns (in schema order)."""
        mask = pred(*(self._cols[f] for f in self.schema))
        return self.select_mask(np.asarray(mask, dtype=bool))

    def project(self, fields: Sequence[str], distinct: bool = True) -> "Relation":
        """π onto ``fields``; removes duplicates by default (paper Eq. 28)."""
        sub = Schema(fields)
        out = Relation(sub, {f: self.column(f) for f in fields})
        return out.distinct() if distinct else out

    def distinct(self) -> "Relation":
        """Remove duplicate tuples (order not preserved: sorted output)."""
        if len(self) == 0:
            return self
        stacked = np.stack([self._cols[f] for f in self.schema], axis=1)
        uniq = np.unique(stacked, axis=0)
        return Relation(
            self.schema, {f: uniq[:, k] for k, f in enumerate(self.schema)}
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """ρ: rename fields via ``mapping`` (absent fields kept)."""
        new_schema = self.schema.renamed(mapping)
        cols = {mapping.get(f, f): c for f, c in self._cols.items()}
        return Relation(new_schema, cols)

    def union(self, other: "Relation") -> "Relation":
        """Bag union with an identically-schema'd relation."""
        if self.schema != other.schema:
            raise SchemaError(
                f"union schema mismatch: {self.schema} vs {other.schema}"
            )
        cols = {}
        for f in self.schema:
            a, b = self._cols[f], other._cols[f]
            dtype = np.result_type(a.dtype, b.dtype) if len(a) and len(b) else (a.dtype if len(a) else b.dtype)
            cols[f] = np.concatenate([a.astype(dtype, copy=False), b.astype(dtype, copy=False)])
        return Relation(self.schema, cols)

    def sort_by(self, fields: Sequence[str]) -> "Relation":
        """Stable sort of the rows by ``fields`` (last field least significant
        per numpy.lexsort convention reversed: first field most significant)."""
        if len(self) == 0:
            return self
        keys = tuple(self.column(f) for f in reversed(list(fields)))
        order = np.lexsort(keys)
        return Relation(self.schema, {f: c[order] for f, c in self._cols.items()})

    def join(self, other: "Relation", on: Sequence[str] | None = None, algorithm: str = "auto") -> "Relation":
        """Equi-join ⋈ on the shared fields (or explicit ``on`` list).

        ``algorithm`` selects the implementation: ``"hash"``, ``"merge"``
        (requires both inputs sorted by the keys — the caller asserts this),
        ``"nested"``, or ``"auto"`` (hash).  The output schema is this
        relation's fields followed by the other's non-key fields.
        """
        keys = tuple(on) if on is not None else self.schema.common(other.schema)
        if not keys:
            raise SchemaError("equi-join requires at least one common field")
        for k in keys:
            if k not in self.schema or k not in other.schema:
                raise SchemaError(f"join key {k!r} missing from an input schema")
        if algorithm == "auto":
            algorithm = "hash"
        if algorithm == "hash":
            li, ri = _joins.hash_join(self, other, keys)
        elif algorithm == "merge":
            li, ri = _joins.merge_join(self, other, keys)
        elif algorithm == "nested":
            li, ri = _joins.nested_loop_join(self, other, keys)
        else:
            raise ValueError(f"unknown join algorithm {algorithm!r}")
        out_fields = list(self.schema.fields) + [
            f for f in other.schema.fields if f not in keys
        ]
        cols: dict[str, np.ndarray] = {}
        for f in self.schema:
            cols[f] = self._cols[f][li]
        for f in other.schema:
            if f not in keys:
                if f in cols:
                    raise SchemaError(
                        f"non-key field {f!r} appears in both join inputs; rename first"
                    )
                cols[f] = other._cols[f][ri]
        return Relation(out_fields, cols)

    def semijoin(self, other: "Relation", on: Sequence[str] | None = None) -> "Relation":
        """⋉: rows of self whose key appears in other."""
        keys = tuple(on) if on is not None else self.schema.common(other.schema)
        if not keys:
            raise SchemaError("semi-join requires at least one common field")
        li, _ = _joins.hash_join(self, other.project(list(keys)), keys)
        mask = np.zeros(len(self), dtype=bool)
        mask[li] = True
        return self.select_mask(mask)

    def difference_keys(self, other: "Relation", on: Sequence[str]) -> "Relation":
        """Rows of self whose key tuple does NOT appear in other (anti-join)."""
        li, _ = _joins.hash_join(self, other.project(list(on)), tuple(on))
        mask = np.ones(len(self), dtype=bool)
        mask[li] = False
        return self.select_mask(mask)
