"""Schemas: ordered, named fields of a relation.

A schema is an ordered tuple of distinct field names.  Order matters for
tuple layout and for merge joins (sortedness is declared per field order);
name lookup is O(1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An ordered collection of distinct field names.

    Parameters
    ----------
    fields:
        Iterable of field-name strings.  Names must be non-empty, unique,
        and valid Python identifiers (they become variable names in
        generated code).
    """

    __slots__ = ("_fields", "_index")

    def __init__(self, fields: Iterable[str]):
        fs = tuple(fields)
        if not fs:
            raise SchemaError("schema must have at least one field")
        for f in fs:
            if not isinstance(f, str) or not f.isidentifier():
                raise SchemaError(f"field name {f!r} is not a valid identifier")
        if len(set(fs)) != len(fs):
            raise SchemaError(f"duplicate field names in {fs}")
        self._fields = fs
        self._index = {f: i for i, f in enumerate(fs)}

    @property
    def fields(self) -> tuple[str, ...]:
        """The field names in declaration order."""
        return self._fields

    def position(self, field: str) -> int:
        """Return the 0-based position of ``field``.

        Raises :class:`~repro.errors.SchemaError` if absent.
        """
        try:
            return self._index[field]
        except KeyError:
            raise SchemaError(f"field {field!r} not in schema {self._fields}") from None

    def __contains__(self, field: object) -> bool:
        return field in self._index

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._fields == other._fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        return f"Schema({list(self._fields)!r})"

    def common(self, other: "Schema") -> tuple[str, ...]:
        """Fields present in both schemas, in *this* schema's order."""
        return tuple(f for f in self._fields if f in other)

    def renamed(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with fields renamed via ``mapping`` (others kept)."""
        return Schema(mapping.get(f, f) for f in self._fields)

    def project(self, fields: Sequence[str]) -> "Schema":
        """A new schema with only ``fields``, in the given order."""
        for f in fields:
            if f not in self:
                raise SchemaError(f"cannot project on absent field {f!r}")
        return Schema(fields)
