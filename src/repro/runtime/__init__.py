"""Simulated SPMD runtime: the stand-in for the paper's IBM SP-2 + MPI.

* :class:`~repro.runtime.machine.Machine` — a deterministic BSP-style
  multiprocessor: every rank is a Python generator that yields collectives
  (``alltoallv``, ``allreduce``, ``allgather``, ``barrier``, ``phase``)
  and resumes with the result.  The machine runs ranks in lockstep,
  measures each rank's compute time between collectives, and counts every
  message and byte.
* :class:`~repro.runtime.machine.CommModel` — an α–β (latency/bandwidth)
  model used to convert counted traffic into estimated communication time
  when reporting parallel times (absolute numbers are not the claim; the
  relative inspector/executor shapes are).
* :mod:`~repro.runtime.inspector` — the inspector/executor machinery
  (paper Sec. 3.2.3 and the Chaos comparison of Sec. 4).

See DESIGN.md ("Substitutions") for why a simulator preserves the paper's
claims: the quantities compared — index-translation work, translation-table
construction, request/exchange volume — are real computation and real data
movement here too.
"""

from repro.runtime.faults import (
    DeliveryConfig,
    FaultInjector,
    FaultPlan,
)
from repro.runtime.machine import (
    Machine,
    CommModel,
    RunStats,
    PhaseStats,
    Fragmented,
)
from repro.runtime.inspector import (
    GatherSchedule,
    build_schedule_replicated,
    build_schedule_translated,
    exchange,
)
from repro.runtime.schedule_cache import (
    DEFAULT_SCHEDULE_CACHE,
    ScheduleCache,
    schedule_cache_stats,
)
from repro.runtime.comm import CommOptions

__all__ = [
    "Machine",
    "CommModel",
    "RunStats",
    "PhaseStats",
    "Fragmented",
    "FaultPlan",
    "FaultInjector",
    "DeliveryConfig",
    "GatherSchedule",
    "build_schedule_replicated",
    "build_schedule_translated",
    "exchange",
    "ScheduleCache",
    "DEFAULT_SCHEDULE_CACHE",
    "schedule_cache_stats",
    "CommOptions",
]
