"""Communication-optimizing executor layer: coalescing + overlap knobs.

The per-iteration hot path of every parallel executor is one ghost
exchange against a :class:`~repro.runtime.inspector.GatherSchedule`.  This
module supplies the two optimizations BlockSolve95 applies by hand and the
compiled executors were missing, behind explicit knobs:

* **coalescing** (``coalesce=True``, the default): all ghost values bound
  for one destination rank travel as a single contiguous envelope — one α
  charge, one checksum, one retry unit — and *no slot indices travel at
  all* because the schedule fixes the packet order.  ``coalesce=False``
  is the measurable baseline: one ``(slot, value)`` envelope per value
  (:class:`~repro.runtime.machine.Fragmented`), paying α per value plus
  the index word.  Both modes deliver bitwise-identical ghost arrays.
* **overlap** (``overlap=True``, the default): the exchange is posted
  nonblocking (``alltoallv_async``); the executor computes its interior
  rows — the work with no ghost dependence — while packets are in flight,
  then closes the window (``commwait``) and finishes the boundary rows.
  Mirrors BlockSolve95's boundary-exchange/interior-compute pipeline; the
  α–β model credits the hidden time (see ``RunStats.parallel_time``), and
  ``comm.overlap_ratio`` records how much of the wire time the interior
  compute actually covered.

:class:`CommOptions` carries both knobs plus the ``schedule_cache``
handle (see :mod:`~repro.runtime.schedule_cache`) through ``parallel_cg``
and the strategy constructors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InspectorError
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace
from repro.runtime.inspector import GatherSchedule
from repro.runtime.machine import Fragmented
from repro.runtime.schedule_cache import DEFAULT_SCHEDULE_CACHE, ScheduleCache

__all__ = [
    "CommOptions",
    "pack_ghost_sends",
    "assemble_ghost",
    "exchange_opt",
    "exchange_start",
    "exchange_finish",
]


@dataclass(frozen=True)
class CommOptions:
    """Executor communication knobs (uniform across ranks — SPMD).

    ``schedule_cache`` accepts ``True`` (the process-global
    :data:`~repro.runtime.schedule_cache.DEFAULT_SCHEDULE_CACHE`), a
    :class:`~repro.runtime.schedule_cache.ScheduleCache` instance (an
    explicit reuse scope with an explicit invalidation story), or
    ``None``/``False`` (re-inspect every ``setup()``, the pre-cache
    behavior and the default).
    """

    overlap: bool = True
    coalesce: bool = True
    schedule_cache: "ScheduleCache | bool | None" = None

    def resolved_cache(self) -> ScheduleCache | None:
        if self.schedule_cache is True:
            return DEFAULT_SCHEDULE_CACHE
        # identity checks, not truthiness: an EMPTY ScheduleCache has
        # len() == 0 and must still be used (that's the cold start)
        if self.schedule_cache is None or self.schedule_cache is False:
            return None
        return self.schedule_cache


def pack_ghost_sends(sched: GatherSchedule, xlocal: np.ndarray, coalesce: bool) -> dict:
    """The per-destination send dict of one ghost exchange.

    Coalesced: one packed contiguous array per peer (packet order is the
    schedule's, so it carries no indices).  Uncoalesced: one
    ``(slot, value)`` envelope per value.
    """
    xlocal = np.asarray(xlocal)
    if coalesce:
        send = {q: xlocal[loc] for q, loc in sched.send_locals.items()}
        if _metrics.metrics_enabled() and send:
            _metrics.record("comm.coalesced_msgs", len(send))
            _metrics.record(
                "comm.coalesced_values", sum(len(v) for v in send.values())
            )
        return send
    send = {q: Fragmented.pack(xlocal[loc]) for q, loc in sched.send_locals.items()}
    if _metrics.metrics_enabled() and send:
        _metrics.record("comm.pervalue_msgs", sum(len(v) for v in send.values()))
    return send


def assemble_ghost(sched: GatherSchedule, xlocal: np.ndarray, recv: dict) -> np.ndarray:
    """Ghost array (aligned with ``sched.ghost_global``) from one
    exchange's arrivals plus the self-resolved slots."""
    xlocal = np.asarray(xlocal)
    ghost = np.zeros(sched.nghost)
    if len(sched.self_slots):
        ghost[sched.self_slots] = xlocal[sched.self_locals]
    for src, vals in recv.items():
        slots = sched.recv_slots.get(src)
        if slots is None or len(slots) != len(vals):
            raise InspectorError(
                f"rank {sched.rank}: packet from {src} does not match schedule"
            )
        ghost[slots] = vals
    return ghost


def _mark_window(name: str, sched: GatherSchedule, owner: str | None, **attrs) -> None:
    """Trace instant on the rank's own timeline for one exchange window
    (post / wait / blocking), so the critical-path report can line span
    traffic up against the modeled supersteps."""
    tracer = _trace.get_tracer()
    if tracer is None:
        return
    tracer.instant(
        name,
        tid=f"rank{sched.rank}",
        owner=owner,
        peers=len(sched.send_locals),
        **attrs,
    )


def exchange_opt(
    sched: GatherSchedule,
    xlocal: np.ndarray,
    coalesce: bool = True,
    owner: str | None = None,
):
    """Blocking ghost exchange with a coalescing knob (SPMD subroutine)."""
    send = pack_ghost_sends(sched, xlocal, coalesce)
    if _metrics.metrics_enabled():
        _metrics.record("executor.exchanges", 1)
        _metrics.record(
            "executor.gathered_values",
            sum(len(loc) for loc in sched.send_locals.values()),
        )
    _mark_window("comm.exchange", sched, owner, coalesce=coalesce)
    recv = yield ("alltoallv", send)
    return assemble_ghost(sched, xlocal, recv)


def exchange_start(
    sched: GatherSchedule,
    xlocal: np.ndarray,
    coalesce: bool = True,
    owner: str | None = None,
):
    """Post the ghost exchange nonblocking; returns the pending arrivals.

    The caller computes interior rows next, then closes the window with
    :func:`exchange_finish` — ghost values must not be read before that.
    """
    send = pack_ghost_sends(sched, xlocal, coalesce)
    if _metrics.metrics_enabled():
        _metrics.record("executor.exchanges", 1)
        _metrics.record(
            "executor.gathered_values",
            sum(len(loc) for loc in sched.send_locals.values()),
        )
    _mark_window("comm.overlap.post", sched, owner, coalesce=coalesce)
    recv = yield ("alltoallv_async", send)
    return recv


def exchange_finish(
    sched: GatherSchedule,
    xlocal: np.ndarray,
    pending: dict,
    owner: str | None = None,
):
    """Close a nonblocking exchange window and assemble the ghost array."""
    _mark_window("comm.overlap.wait", sched, owner, pending=len(pending))
    yield ("commwait", None)
    return assemble_ghost(sched, xlocal, pending)
