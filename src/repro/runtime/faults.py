"""Deterministic fault injection for the simulated SPMD machine.

The happy-path :class:`~repro.runtime.machine.Machine` delivers every
message exactly once, intact and in order.  Real message-passing machines
do not, and the inspector/executor protocol (paper Sec. 3.2.3) trusts its
communication schedules forever once built — so we need evidence that the
executors stay correct under imperfect delivery.  This module supplies the
adversary:

* :class:`FaultPlan` — a *seeded, declarative* description of what can go
  wrong: per-message drop / duplication / corruption probabilities, a
  per-destination reorder probability, per-rank stall probability, and an
  explicit list of ``(rank, executor step)`` schedule-corruption events.
  Plans serialize to/from JSON so a failing run's plan can be uploaded as
  a CI artifact and replayed bit-for-bit.
* :class:`DeliveryConfig` — the hardened protocol's knobs: bounded
  retries with a modeled timeout and exponential backoff.
* :class:`FaultInjector` — the runtime object the machine's delivery
  layer consults once per delivery attempt.  Every decision is drawn from
  a :class:`numpy.random.SeedSequence` keyed on
  ``(plan seed, kind, src, dst, seq, attempt)`` — *not* from a shared
  stream — so decisions are independent of iteration order and a replay
  with the same plan makes identical choices.

Determinism contract: with the same plan (and the same rank programs),
two runs produce byte-identical results, communication matrices, retry
counts and fault-event logs.  Wall-clock span durations are the only
nondeterministic quantity.

The module also hosts the *schedule validation* half of the recovery
story: :func:`schedule_checksum` fingerprints a gather schedule (the
materialized ``RecvInd`` of paper Eq. 22) and :func:`ensure_valid_schedule`
is an SPMD subroutine executors run each step under fault injection —
ranks agree (one allreduce) on whether anyone's schedule is corrupt and,
if so, collectively re-run the inspector (``inspector.rebuild`` span,
``runtime.reinspections`` metric).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import CommFailureError
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace

__all__ = [
    "FaultPlan",
    "DeliveryConfig",
    "Fate",
    "FaultEvent",
    "FaultInjector",
    "active_injector",
    "payload_checksum",
    "corrupt_payload",
    "schedule_checksum",
    "corrupt_schedule",
    "ensure_valid_schedule",
]

# Entropy domain tags keep the decision streams of different fault kinds
# disjoint even when (src, dst, seq, attempt) coincide.
_TAG_FATE = 1
_TAG_REORDER = 2
_TAG_STALL = 3
_TAG_CORRUPT_DATA = 4
_TAG_CORRUPT_SCHED = 5


@dataclass(frozen=True)
class FaultPlan:
    """Seeded declarative fault model (all probabilities per *attempt*).

    ``corrupt_schedule`` lists explicit ``(rank, executor_step)`` events:
    before that rank's step of that index, its gather schedule is damaged
    in place (simulating memory corruption of ``RecvInd``), exercising the
    checksum/re-inspection recovery path.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    stall: float = 0.0
    stall_seconds: float = 1e-4
    corrupt_schedule: tuple[tuple[int, int], ...] = ()

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "corrupt", "stall"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} probability {v} outside [0, 1]")
        # normalize for hashability/serialization regardless of caller type
        object.__setattr__(
            self,
            "corrupt_schedule",
            tuple((int(r), int(s)) for r, s in self.corrupt_schedule),
        )

    @property
    def quiet(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.drop == self.duplicate == self.reorder == 0.0
            and self.corrupt == self.stall == 0.0
            and not self.corrupt_schedule
        )

    # -- replay / artifact support -------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = dict(json.loads(text))
        doc["corrupt_schedule"] = tuple(
            (int(r), int(s)) for r, s in doc.get("corrupt_schedule", ())
        )
        return cls(**doc)

    def describe(self) -> str:
        on = [
            f"{k}={getattr(self, k)}"
            for k in ("drop", "duplicate", "reorder", "corrupt", "stall")
            if getattr(self, k) > 0
        ]
        if self.corrupt_schedule:
            on.append(f"corrupt_schedule={list(self.corrupt_schedule)}")
        return f"FaultPlan(seed={self.seed}" + (
            ", " + ", ".join(on) + ")" if on else ", quiet)"
        )


@dataclass(frozen=True)
class DeliveryConfig:
    """Hardened delivery protocol parameters.

    A message is retransmitted until acknowledged, at most ``max_retries``
    times beyond the first attempt; retry k charges the *sender* a modeled
    wait of ``timeout * backoff**(k-1)`` seconds (the ack timeout) which
    shows up in that superstep's compute column.  Exhausting the budget
    raises :class:`~repro.errors.CommFailureError` — the protocol never
    hands corrupt or missing data to the application.
    """

    max_retries: int = 8
    timeout: float = 1e-4
    backoff: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout < 0 or self.backoff < 1.0:
            raise ValueError("need timeout >= 0 and backoff >= 1")

    def retry_wait(self, attempt: int) -> float:
        """Modeled sender wait before retransmission number ``attempt``."""
        return self.timeout * self.backoff ** max(0, attempt - 1)


@dataclass(frozen=True)
class Fate:
    """The injector's verdict for one delivery attempt."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or protocol reaction), in deterministic order."""

    kind: str  # drop|duplicate|corrupt|reorder|stall|dup_suppressed|...
    step: int  # machine superstep counter
    src: int = -1
    dst: int = -1
    seq: int = -1
    attempt: int = 0

    def as_tuple(self) -> tuple:
        return (self.kind, self.step, self.src, self.dst, self.seq, self.attempt)


class FaultInjector:
    """Stateful per-run adversary; consulted by the machine's delivery layer.

    All randomness is derived per-decision from ``SeedSequence`` entropy
    ``[seed, tag, *coordinates]`` so outcomes do not depend on the order
    in which the machine happens to ask.  Mutable state (sequence-number
    counters, delivered-set, event log) is cleared by :meth:`reset`, which
    ``Machine.run`` calls at run start — two runs on the same machine are
    therefore identical.
    """

    def __init__(self, plan: FaultPlan, delivery: DeliveryConfig | None = None):
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.delivery = delivery or DeliveryConfig()
        self._seed = int(plan.seed) & (2**63 - 1)
        self._sched_events = set(plan.corrupt_schedule)
        self.reset()

    # -- per-run state --------------------------------------------------
    def reset(self) -> None:
        self._seq: dict[tuple[int, int], int] = {}
        self.events: list[FaultEvent] = []
        self.retries_total = 0

    def next_seq(self, src: int, dst: int) -> int:
        key = (src, dst)
        s = self._seq.get(key, 0)
        self._seq[key] = s + 1
        return s

    # -- seeded decisions ------------------------------------------------
    def _rng(self, tag: int, *coords: int) -> np.random.Generator:
        entropy = [self._seed, tag] + [int(c) & (2**63 - 1) for c in coords]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def fate(self, src: int, dst: int, seq: int, attempt: int) -> Fate:
        """Verdict for delivery attempt ``attempt`` of message (src,dst,seq)."""
        p = self.plan
        if p.drop == p.duplicate == p.corrupt == 0.0:
            return Fate()
        u = self._rng(_TAG_FATE, src, dst, seq, attempt).random(3)
        return Fate(
            drop=bool(u[0] < p.drop),
            duplicate=bool(u[1] < p.duplicate),
            corrupt=bool(u[2] < p.corrupt),
        )

    def reorder_perm(self, dst: int, step: int, n: int) -> np.ndarray | None:
        """Arrival-order permutation of rank ``dst``'s inbox this superstep
        (None when arrivals stay in send order)."""
        if n < 2 or self.plan.reorder <= 0.0:
            return None
        rng = self._rng(_TAG_REORDER, dst, step)
        if rng.random() >= self.plan.reorder:
            return None
        perm = rng.permutation(n)
        if np.array_equal(perm, np.arange(n)):
            return None
        return perm

    def stall_seconds(self, rank: int, step: int) -> float:
        """Modeled stall of ``rank`` at superstep ``step`` (0.0 = none)."""
        if self.plan.stall <= 0.0:
            return 0.0
        if self._rng(_TAG_STALL, rank, step).random() < self.plan.stall:
            return float(self.plan.stall_seconds)
        return 0.0

    def corrupt_schedule_now(self, rank: int, exec_step: int) -> bool:
        return (int(rank), int(exec_step)) in self._sched_events

    def corruption_rng(self, *coords: int) -> np.random.Generator:
        return self._rng(_TAG_CORRUPT_DATA, *coords)

    # -- event log / observability --------------------------------------
    def record(
        self,
        kind: str,
        step: int,
        src: int = -1,
        dst: int = -1,
        seq: int = -1,
        attempt: int = 0,
    ) -> None:
        self.events.append(FaultEvent(kind, step, src, dst, seq, attempt))
        _metrics.record("runtime.faults", 1, kind=kind)
        _trace.instant(
            f"fault.{kind}",
            tid="faults",
            step=step,
            src=src,
            dst=dst,
            seq=seq,
            attempt=attempt,
        )

    def event_log(self) -> list[tuple]:
        """Canonical (hashable, timestamp-free) view of the event log."""
        return [e.as_tuple() for e in self.events]


# ----------------------------------------------------------------------
# payload checksums & corruption
# ----------------------------------------------------------------------
def _canonical_bytes(obj, out: list[bytes]) -> None:
    """Canonical byte serialization for checksumming (numpy-aware).

    Covers every payload shape the rank programs exchange: numpy arrays,
    scalars, ints/floats/bools, bytes/str, None, and dicts/tuples/lists of
    those.  Dict items are serialized sorted by key repr so the checksum
    does not depend on insertion order.
    """
    if obj is None:
        out.append(b"\x00N")
    elif isinstance(obj, np.ndarray):
        out.append(b"\x01A" + str(obj.dtype).encode() + str(obj.shape).encode())
        out.append(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        out.append(b"\x02S" + str(obj.dtype).encode() + obj.tobytes())
    elif isinstance(obj, (bool, int, float)):
        out.append(b"\x03P" + repr(obj).encode())
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        out.append(b"\x04B" + bytes(obj))
    elif isinstance(obj, str):
        out.append(b"\x05T" + obj.encode())
    elif isinstance(obj, dict):
        out.append(b"\x06D%d" % len(obj))
        for k in sorted(obj, key=repr):
            _canonical_bytes(k, out)
            _canonical_bytes(obj[k], out)
    elif isinstance(obj, (tuple, list)):
        out.append(b"\x07L%d" % len(obj))
        for x in obj:
            _canonical_bytes(x, out)
    else:  # opaque: identity-free type fingerprint
        out.append(b"\x08O" + type(obj).__name__.encode() + repr(obj).encode())


def payload_checksum(obj) -> int:
    """CRC32 over the canonical serialization of a payload.

    This is the integrity check the hardened delivery protocol attaches to
    every message envelope: a corrupted payload fails the compare at the
    receiver and is NACKed (retried) instead of delivered.
    """
    parts: list[bytes] = []
    _canonical_bytes(obj, parts)
    crc = 0
    for p in parts:
        crc = zlib.crc32(p, crc)
    return crc


def corrupt_payload(obj, rng: np.random.Generator):
    """A deterministically damaged copy of ``obj`` — or None when the
    payload has no mutable numeric content to damage (empty arrays, empty
    containers); the delivery layer then lets the original through."""
    if isinstance(obj, np.ndarray):
        if obj.size == 0:
            return None
        bad = np.array(obj, copy=True)
        flat = bad.reshape(-1)
        k = int(rng.integers(flat.size))
        if bad.dtype.kind in "fc":
            flat[k] = flat[k] * 3.0 + 1.0 if flat[k] != 0 else 1.0
        elif bad.dtype.kind in "iu":
            flat[k] = flat[k] + 1
        elif bad.dtype.kind == "b":
            flat[k] = ~flat[k]
        else:
            return None
        return bad
    if isinstance(obj, (bool, np.bool_)):
        return not bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj) + 1
    if isinstance(obj, (float, np.floating)):
        f = float(obj)
        return f * 3.0 + 1.0 if f != 0.0 else 1.0
    if isinstance(obj, (bytes, bytearray)):
        if len(obj) == 0:
            return None
        b = bytearray(obj)
        k = int(rng.integers(len(b)))
        b[k] ^= 0xFF
        return bytes(b) if isinstance(obj, bytes) else b
    if isinstance(obj, tuple):
        return _corrupt_sequence(list(obj), rng, tuple)
    if isinstance(obj, list):
        return _corrupt_sequence(list(obj), rng, list)
    if isinstance(obj, dict):
        for k in sorted(obj, key=repr):
            bad = corrupt_payload(obj[k], rng)
            if bad is not None:
                out = dict(obj)
                out[k] = bad
                return out
        return None
    return None


def _corrupt_sequence(items: list, rng, ctor):
    for i, x in enumerate(items):
        bad = corrupt_payload(x, rng)
        if bad is not None:
            items[i] = bad
            return ctor(items)
    return None


# ----------------------------------------------------------------------
# the machine-global injector (set by Machine.run for its duration)
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The injector of the currently-running machine, if any.

    The machine runs all ranks in lockstep on one thread, so a module
    global is unambiguous; rank programs use this to decide whether to run
    the (collective) schedule-validation protocol.
    """
    return _ACTIVE


class _activation:
    """Context manager installing an injector for the span of one run."""

    def __init__(self, injector: FaultInjector | None):
        self.injector = injector

    def __enter__(self):
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self.injector
        return self.injector

    def __exit__(self, *exc):
        global _ACTIVE
        _ACTIVE = self._prev
        return False


# ----------------------------------------------------------------------
# schedule validation & recovery (the RecvInd checksum path)
# ----------------------------------------------------------------------
def schedule_checksum(sched) -> int:
    """CRC32 fingerprint of a gather schedule's index structures.

    Covers everything the executor trusts: the ghost directory
    (``ghost_global``), per-peer send/recv index lists, and the
    self-resolution arrays.  Any single-element corruption changes it.
    """
    parts: list[bytes] = []
    _canonical_bytes(np.asarray(sched.ghost_global), parts)
    for name in ("send_locals", "recv_slots"):
        d = getattr(sched, name)
        parts.append(name.encode())
        for q in sorted(d):
            parts.append(b"%d:" % q)
            _canonical_bytes(np.asarray(d[q]), parts)
    _canonical_bytes(np.asarray(sched.self_slots), parts)
    _canonical_bytes(np.asarray(sched.self_locals), parts)
    crc = 0
    for p in parts:
        crc = zlib.crc32(p, crc)
    return crc


def corrupt_schedule(sched, rng: np.random.Generator) -> bool:
    """Damage one index of the schedule in place (memory-corruption model).

    Picks the first nonempty structure among the ghost directory, the
    per-peer recv slots and the per-peer send lists.  Returns False when
    the schedule is entirely empty (nothing to corrupt).
    """
    if sched.nghost:
        k = int(rng.integers(sched.nghost))
        sched.ghost_global[k] = sched.ghost_global[k] + 1
        return True
    for d in (sched.recv_slots, sched.send_locals):
        for q in sorted(d):
            if len(d[q]):
                arr = np.array(d[q], copy=True)
                arr[int(rng.integers(len(arr)))] += 1
                d[q] = arr
                return True
    return False


def ensure_valid_schedule(strategy):
    """SPMD subroutine: validate this rank's schedule, recover collectively.

    No-op (and, crucially, *no collective*) when no fault injector is
    active — the happy path is byte-identical to pre-fault-layer behavior.
    Under injection every executor step starts with:

    1. apply any planned schedule corruption for (rank, step),
    2. recompute the schedule checksum, compare against the value stored
       at the end of ``setup()``,
    3. one allreduce: do *all* ranks still hold valid schedules?
    4. if not, every rank re-runs its inspector (``rebuild_schedule``) —
       re-inspection is collective, exactly like the original inspection —
       and verifies the rebuilt schedule matches the original fingerprint.

    Returns True when a re-inspection happened.  Raises
    :class:`~repro.errors.CommFailureError` if re-inspection does not
    restore the expected schedule.
    """
    inj = active_injector()
    if inj is None:
        return False
    step = getattr(strategy, "_exec_step", -1) + 1
    strategy._exec_step = step
    rank = strategy.rank
    if inj.corrupt_schedule_now(rank, step):
        if corrupt_schedule(strategy.sched, inj._rng(_TAG_CORRUPT_SCHED, rank, step)):
            inj.record("schedule_corrupt", step=step, src=rank, dst=rank)
    ok = int(schedule_checksum(strategy.sched) == strategy._sched_sum)
    n_ok = yield ("allreduce", ok)
    if n_ok == strategy.sched.nprocs:
        return False
    if not ok:
        inj.record("schedule_invalid", step=step, src=rank, dst=rank)
    # a corrupt schedule disqualifies its cache entry: drop it BEFORE
    # re-inspecting so the rebuild can never be served from the cache and
    # later setups can never reuse an entry whose integrity was questioned
    cache = getattr(strategy, "_sched_cache", None)
    cache_key = getattr(strategy, "_sched_cache_key", None)
    if cache is not None and cache_key is not None:
        cache.invalidate(cache_key)
    with _trace.span("inspector.rebuild", rank=rank, step=step):
        _metrics.record("runtime.reinspections", 1)
        new_sched = yield from strategy.rebuild_schedule()
    if schedule_checksum(new_sched) != strategy._sched_sum:
        raise CommFailureError(
            f"rank {rank}: re-inspection did not restore the communication "
            f"schedule (step {step}); refusing to run on corrupt RecvInd"
        )
    # the fingerprint proves the rebuild matches the original bytes; the
    # structural checker additionally proves the original was well-formed
    # (covered ghost slots, sorted directory, in-range send offsets)
    from repro.analysis.schedule import verify_rebuilt_schedule

    rebuilt_report = verify_rebuilt_schedule(strategy, new_sched)
    if not rebuilt_report.ok:
        raise CommFailureError(
            f"rank {rank}: rebuilt schedule failed verification (step "
            f"{step}):\n{rebuilt_report.render('error')}"
        )
    if cache is not None and cache_key is not None:
        # re-install the verified rebuild (fingerprint-checked above)
        cache.put(cache_key, new_sched)
    strategy.sched = new_sched
    return True
