"""Inspector/executor machinery (paper Sec. 3.2.3 and Sec. 4).

The *inspector* turns the communication-set queries

    Used^(p)(j)    = π_j ( σ_NZ(A^(p)) A^(p) ⋈ Y^(p) )          (Eq. 21)
    RecvInd^(p)    = Used^(p) ⋈ IND(j, q, j')                    (Eq. 22)

into a :class:`GatherSchedule`: who sends me which of their local x
values, and into which ghost slot each lands.  The join with IND is where
distribution structure pays off:

* **replicated IND** (:func:`build_schedule_replicated`) — ownership is a
  local computation; one all-to-all of requests suffices,
* **distributed IND** (:func:`build_schedule_translated`, the Chaos path)
  — Eq. 22 itself becomes a distributed query: the dereference costs two
  extra all-to-all rounds against the translation table (the paper's
  "evaluation of the query (22) might itself require communication").

The *executor* step (:func:`exchange`) ships the actual values each
iteration.

All three are SPMD generator subroutines (``yield from`` them inside a
rank program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distribution.base import Distribution
from repro.distribution.translation import DistributedTranslationTable, dereference
from repro.observability import metrics as _metrics

__all__ = [
    "GatherSchedule",
    "build_schedule_replicated",
    "build_schedule_translated",
    "exchange",
]


@dataclass
class GatherSchedule:
    """A materialized communication schedule for gathering ghost values.

    ``ghost_global[g]`` is the global index whose value lands in ghost
    slot g.  ``send_locals[q]`` are *my* local offsets to pack for rank q;
    ``recv_slots[q]`` are the ghost slots filled by rank q's packet, in
    packet order.
    """

    rank: int
    nprocs: int
    ghost_global: np.ndarray
    send_locals: dict[int, np.ndarray] = field(default_factory=dict)
    recv_slots: dict[int, np.ndarray] = field(default_factory=dict)
    #: ghost slots resolved locally (self-owned requests), and their local offsets
    self_slots: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    self_locals: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def nghost(self) -> int:
        return len(self.ghost_global)

    def ghost_slot_of(self, global_idx) -> np.ndarray:
        """Ghost slot of each (requested) global index; -1 if absent."""
        g = np.asarray(global_idx)
        pos = np.searchsorted(self.ghost_global, g)
        pos = np.clip(pos, 0, max(0, self.nghost - 1))
        ok = (self.nghost > 0) & (self.ghost_global[pos] == g)
        return np.where(ok, pos, -1)

    def checksum(self) -> int:
        """CRC32 fingerprint of every index structure the executor trusts
        (the ``RecvInd`` integrity check of the fault-recovery protocol)."""
        from repro.runtime.faults import schedule_checksum

        return schedule_checksum(self)


def _group_requests(owners: np.ndarray, payload_builder):
    send = {}
    for q in np.unique(owners):
        mask = owners == q
        send[int(q)] = payload_builder(mask)
    return send


def build_schedule_replicated(rank: int, dist: Distribution, needed_global):
    """Inspector against a *replicated* distribution relation.

    Ownership (the ⋈ IND of Eq. 22) is a local lookup; one all-to-all
    carries the requests.  ``yield from`` this inside a rank program.
    """
    needed = np.unique(np.asarray(needed_global, dtype=np.int64))
    owners = dist.owner(needed) if len(needed) else np.empty(0, dtype=np.int64)
    sched = GatherSchedule(rank, dist.nprocs, needed)
    self_mask = owners == rank
    sched.self_slots = np.flatnonzero(self_mask)
    sched.self_locals = (
        np.asarray(dist.local_index(needed[self_mask]), dtype=np.int64)
        if self_mask.any()
        else np.empty(0, dtype=np.int64)
    )
    remote = ~self_mask
    send = {}
    slots = {}
    for q in np.unique(owners[remote]):
        mask = (owners == q) & remote
        # send LOCAL offsets: the owner packs directly, no translation there
        send[int(q)] = np.asarray(dist.local_index(needed[mask]), dtype=np.int64)
        slots[int(q)] = np.flatnonzero(mask)
    recv = yield ("alltoallv", send)
    for src, loc in recv.items():
        sched.send_locals[src] = np.asarray(loc, dtype=np.int64)
    sched.recv_slots = slots
    _record_schedule(sched, needed, path="replicated")
    return sched


def _record_schedule(sched: GatherSchedule, needed: np.ndarray, path: str) -> None:
    """Inspector metrics: request volume, ghost count, peer fan-out."""
    if not _metrics.metrics_enabled():
        return
    _metrics.record("inspector.schedules", 1, path=path)
    _metrics.observe("inspector.requested_indices", len(needed), path=path)
    _metrics.observe("inspector.ghosts", sched.nghost, path=path)
    _metrics.observe(
        "inspector.peers",
        len(set(sched.send_locals) | set(sched.recv_slots)),
        path=path,
    )


def build_schedule_translated(
    rank: int, table: DistributedTranslationTable, needed_global
):
    """Inspector against a *distributed* (Chaos) translation table.

    Eq. 22 becomes a distributed query: dereference every needed index
    through the table (two all-to-alls), then ship the requests (a third).
    """
    needed = np.unique(np.asarray(needed_global, dtype=np.int64))
    owners, locals_ = yield from dereference(table, needed)
    sched = GatherSchedule(rank, table.nprocs, needed)
    self_mask = owners == rank
    sched.self_slots = np.flatnonzero(self_mask)
    sched.self_locals = locals_[self_mask]
    send = {}
    slots = {}
    remote = ~self_mask
    for q in np.unique(owners[remote]):
        mask = (owners == q) & remote
        send[int(q)] = locals_[mask]
        slots[int(q)] = np.flatnonzero(mask)
    recv = yield ("alltoallv", send)
    for src, loc in recv.items():
        sched.send_locals[src] = np.asarray(loc, dtype=np.int64)
    sched.recv_slots = slots
    _record_schedule(sched, needed, path="translated")
    return sched


def exchange(sched: GatherSchedule, xlocal: np.ndarray, coalesce: bool = True):
    """Executor communication: gather ghost values per the schedule.

    Returns the ghost array (aligned with ``sched.ghost_global``).
    ``yield from`` this once per executor iteration.  ``coalesce`` and the
    overlapped split variant live in :mod:`repro.runtime.comm`; this
    blocking form delegates there.
    """
    from repro.runtime.comm import exchange_opt

    ghost = yield from exchange_opt(sched, xlocal, coalesce=coalesce)
    return ghost
