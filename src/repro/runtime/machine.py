"""The BSP machine: lockstep execution of SPMD rank programs.

A *rank program* is a Python generator.  It computes locally, and whenever
it needs communication it yields a collective request::

    recv = yield ("alltoallv", {dest: payload, ...})   # -> {src: payload}
    recv = yield ("alltoallv_async", {dest: payload})   # nonblocking variant
    _ = yield ("commwait", None)                        # close async window
    total = yield ("allreduce", local_value)            # -> sum over ranks
    vals = yield ("allgather", local_value)             # -> [v0, v1, ...]
    _ = yield ("barrier", None)
    _ = yield ("phase", "executor")                     # named timing mark

An ``alltoallv_async`` routes identically to ``alltoallv`` (the simulation
delivers immediately) but models a *nonblocking* post: its α–β time
overlaps with the compute done before the matching ``commwait`` — see
:meth:`RunStats.parallel_time`.  A payload wrapped in :class:`Fragmented`
ships one envelope per value (the uncoalesced baseline) and is reassembled
into a packed array at the receiver.

The machine advances all ranks to their next yield, checks they agree on
the collective (SPMD discipline), routes the data, and resumes them.  Per
rank, wall-clock compute time between collectives is measured; per
collective, messages and bytes are counted.  ``RunStats`` aggregates both
and converts them into an estimated parallel time under an α–β
:class:`CommModel`.

Helper subroutines compose with ``result = yield from helper(...)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable

import numpy as np

from repro.errors import CommFailureError, PhaseNotFoundError, RuntimeMachineError
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace
from repro.runtime import faults as _faults

__all__ = [
    "CommModel",
    "PhaseStats",
    "RunStats",
    "Machine",
    "payload_nbytes",
    "Fragmented",
    "assemble_fragments",
]


class Fragmented(list):
    """A per-value (uncoalesced) point-to-point payload.

    Each element is a ``(slot, value)`` pair and ships as its *own*
    envelope: its own message count, its own α charge, its own checksum
    and its own retry unit under fault injection.  This is the baseline
    the coalesced path (one contiguous packed array per destination, whose
    packet order the gather schedule fixes so no slot indices travel at
    all) is measured against.  The machine reassembles arrivals into the
    packed ``ndarray`` the receiver would have gotten from a coalesced
    send — the two modes are bitwise interchangeable.
    """

    @classmethod
    def pack(cls, values) -> "Fragmented":
        return cls((int(i), float(v)) for i, v in enumerate(np.asarray(values)))


def assemble_fragments(parts) -> np.ndarray:
    """Packed array from ``(slot, value)`` parts, in slot order (arrival
    order independent — reordered or duplicated-then-suppressed deliveries
    assemble identically)."""
    out = np.empty(len(parts), dtype=np.float64)
    for i, v in parts:
        out[i] = v
    return out


def payload_nbytes(obj) -> int:
    """Approximate wire size of a payload (numpy-aware).

    Branches, in order:

    * ``None`` carries nothing (a pure synchronization payload),
    * ``bool`` is one byte on the wire, not a machine word,
    * numpy scalars (including structured ``np.void`` records) know their
      own width — a ``float32`` costs 4, not a flat 8,
    * numpy arrays cost their *logical* element bytes
      (``size * itemsize``), which is stride-independent: a non-contiguous
      view or a 0-d array is sized by what crosses the wire, not by its
      backing buffer; object-dtype arrays recurse into their elements
      instead of counting pointer words,
    * Python ``int``/``float`` cost one 8-byte word,
    * ``bytes``/``bytearray``/``str``/``memoryview`` cost their length,
    * mappings cost the sum over keys and values,
    * any other sequence/iterable-like (tuple, list, range, ...) costs the
      sum over its elements,
    * everything else gets a flat 64-byte opaque-object estimate.
    """
    if obj is None:
        return 0
    if isinstance(obj, (bool, np.bool_)):
        return 1
    if isinstance(obj, np.generic):  # any numpy scalar, incl. structured void
        return int(obj.nbytes)
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            # pointer words say nothing about wire size; price the elements
            # (works for 0-d object arrays too — .flat iterates them)
            return sum(payload_nbytes(x) for x in obj.flat)
        # logical element bytes: correct for 0-d arrays, non-contiguous
        # views, and broadcast views alike (nbytes is too, but only by
        # definition — this makes the stride-independence explicit)
        return int(obj.size) * int(obj.itemsize)
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, memoryview):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, range, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj)
    return 64  # opaque object: flat estimate


@dataclass(frozen=True)
class CommModel:
    """α–β communication cost: per-message latency + per-byte transfer.

    Defaults approximate the paper's IBM SP-2 (≈40 µs latency, ≈40 MB/s).
    """

    latency: float = 40e-6
    inv_bandwidth: float = 25e-9

    def time(self, msgs: int, nbytes: int) -> float:
        return msgs * self.latency + nbytes * self.inv_bandwidth


@dataclass
class PhaseStats:
    """One superstep: per-rank compute seconds and traffic counts."""

    kind: str
    label: str | None
    compute: np.ndarray  # seconds per rank since the previous superstep
    msgs: np.ndarray  # messages sent per rank
    nbytes: np.ndarray  # bytes sent per rank
    #: rank×rank byte matrix of this superstep: entry [p, q] is what rank p
    #: sent to rank q (allreduce bytes attributed to the ring neighbor,
    #: allgather bytes to every peer, so the total matches ``nbytes``)
    bytes_matrix: np.ndarray | None = None
    #: retransmissions per rank under fault injection (None on the happy
    #: path — the field exists only when a fault injector was installed)
    retries: np.ndarray | None = None
    #: True for a nonblocking exchange (``alltoallv_async``): its modeled
    #: communication time overlaps with the compute of the following
    #: superstep (the interior work done before the matching ``commwait``)
    overlapped: bool = False

    def comm_time(self, model: CommModel) -> float:
        """Modeled α–β communication seconds of the slowest rank."""
        return float(np.max(self.msgs * model.latency + self.nbytes * model.inv_bandwidth))

    def rank_comm(self, model: CommModel) -> np.ndarray:
        """Per-rank modeled α–β communication seconds of this superstep."""
        return self.msgs * model.latency + self.nbytes * model.inv_bandwidth

    def busy_time(self, model: CommModel) -> np.ndarray:
        """Per-rank busy seconds: compute plus *charged* communication.

        An overlapped superstep charges compute only — its wire time is in
        flight under later compute (see ``RunStats.parallel_time``)."""
        if self.overlapped:
            return self.compute.copy()
        return self.compute + self.rank_comm(model)

    def step_time(self, model: CommModel) -> float:
        """Estimated parallel duration of this superstep: slowest rank's
        compute plus its modeled communication."""
        comm = self.msgs * model.latency + self.nbytes * model.inv_bandwidth
        return float(np.max(self.compute + comm))


@dataclass
class RunStats:
    """Aggregated statistics of one ``Machine.run``."""

    nprocs: int
    phases: list[PhaseStats] = field(default_factory=list)
    #: canonical fault-event log of the run (empty without fault injection):
    #: ``(kind, superstep, src, dst, seq, attempt)`` tuples in injection order
    fault_events: list = field(default_factory=list)
    #: the cost model of the machine that produced this run (the default
    #: for :meth:`parallel_time` / :meth:`comm_time` when none is passed)
    model: "CommModel | None" = None

    def total_compute(self) -> np.ndarray:
        """Per-rank compute seconds over the whole run."""
        if not self.phases:
            return np.zeros(self.nprocs)
        return np.sum([p.compute for p in self.phases], axis=0)

    def total_msgs(self) -> int:
        return int(sum(p.msgs.sum() for p in self.phases))

    def total_retries(self) -> int:
        """Retransmissions over the whole run (0 without fault injection).

        Composes with :meth:`phase`: ``stats.phase("executor").total_retries()``
        is the per-phase retry count of the executor window."""
        return int(
            sum(p.retries.sum() for p in self.phases if p.retries is not None)
        )

    def total_nbytes(self) -> int:
        return int(sum(p.nbytes.sum() for p in self.phases))

    def parallel_time(self, model: CommModel | None = None) -> float:
        """Estimated wall time: Σ over supersteps of the slowest rank.

        A superstep marked ``overlapped`` (nonblocking ghost exchange)
        contributes only its compute; its modeled communication time is
        carried forward and finishes *under* the next superstep's compute
        — ``max(comm in flight, interior compute)`` instead of their sum,
        the BlockSolve95 overlap model.  Runs without overlapped phases
        fold exactly as before.
        """
        model = model or self.model or CommModel()
        total = 0.0
        in_flight = 0.0
        for p in self.phases:
            if p.overlapped:
                total += float(np.max(p.compute))
                in_flight = max(in_flight, p.comm_time(model))
                continue
            t = p.step_time(model)
            if in_flight > 0.0:
                t = max(t, in_flight)
                in_flight = 0.0
            total += t
        return total + in_flight

    def comm_time(self, model: CommModel | None = None) -> float:
        """Modeled α–β communication seconds over the whole run (slowest
        rank per superstep, no overlap credit — the raw wire cost)."""
        model = model or self.model or CommModel()
        return sum(p.comm_time(model) for p in self.phases)

    def step_attribution(
        self, model: CommModel | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Per-superstep durations and per-rank busy seconds under the
        overlap fold of :meth:`parallel_time`.

        Returns ``(durations, busy, drain)``: ``durations[k]`` is what
        superstep k contributes to the estimated wall time (an overlapped
        exchange contributes its compute only; the step that closes an
        overlap window is stretched to cover any communication still in
        flight), ``busy[k, p]`` is rank p's busy seconds in that step
        (compute plus charged communication), and ``drain`` is trailing
        in-flight communication no compute ever covered.  The fold
        invariant: ``durations.sum() + drain == parallel_time(model)``.

        ``durations[k] - busy[k, p]`` is rank p's *wait* in superstep k —
        the per-step idle exposure the critical-path profiler consumes.
        """
        model = model or self.model or CommModel()
        durations: list[float] = []
        busy: list[np.ndarray] = []
        in_flight = 0.0
        for p in self.phases:
            if p.overlapped:
                durations.append(float(np.max(p.compute)))
                busy.append(p.compute.copy())
                in_flight = max(in_flight, p.comm_time(model))
                continue
            t = p.step_time(model)
            if in_flight > 0.0:
                t = max(t, in_flight)
                in_flight = 0.0
            durations.append(t)
            busy.append(p.busy_time(model))
        if not durations:
            return np.zeros(0), np.zeros((0, self.nprocs)), in_flight
        return np.asarray(durations), np.stack(busy), in_flight

    def step_waits(self, model: CommModel | None = None) -> np.ndarray:
        """Per-superstep, per-rank wait seconds (shape ``(S, P)``): how
        long each rank sat idle in each superstep while the slowest rank
        (or in-flight communication) finished."""
        durations, busy, _drain = self.step_attribution(model)
        if not len(durations):
            return np.zeros((0, self.nprocs))
        return durations[:, None] - busy

    def total_wait(self, model: CommModel | None = None) -> np.ndarray:
        """Per-rank idle seconds over the whole run, including the
        trailing communication drain (charged to every rank — everyone is
        waiting on the wire)."""
        durations, busy, drain = self.step_attribution(model)
        out = np.full(self.nprocs, drain)
        if len(durations):
            out += (durations[:, None] - busy).sum(axis=0)
        return out

    # ------------------------------------------------------------------
    # serialization (the ``run_stats`` trace event)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form carrying everything the offline profiler needs
        (per-superstep kinds, labels, per-rank compute/traffic, overlap
        flags, the α–β model); ``comm_matrix`` data stays in its own trace
        event."""
        return {
            "nprocs": self.nprocs,
            "model": (
                {
                    "latency": self.model.latency,
                    "inv_bandwidth": self.model.inv_bandwidth,
                }
                if self.model is not None
                else None
            ),
            "phases": [
                {
                    "kind": p.kind,
                    "label": p.label,
                    "compute": p.compute.tolist(),
                    "msgs": p.msgs.tolist(),
                    "nbytes": p.nbytes.tolist(),
                    "overlapped": bool(p.overlapped),
                    "retries": None if p.retries is None else p.retries.tolist(),
                }
                for p in self.phases
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunStats":
        """Rebuild from :meth:`to_dict` (e.g. a ``run_stats`` trace event)."""
        model = None
        if doc.get("model"):
            model = CommModel(
                latency=float(doc["model"]["latency"]),
                inv_bandwidth=float(doc["model"]["inv_bandwidth"]),
            )
        out = cls(int(doc["nprocs"]), model=model)
        for ph in doc.get("phases", []):
            out.phases.append(
                PhaseStats(
                    kind=str(ph["kind"]),
                    label=ph.get("label"),
                    compute=np.asarray(ph["compute"], dtype=np.float64),
                    msgs=np.asarray(ph["msgs"], dtype=np.int64),
                    nbytes=np.asarray(ph["nbytes"], dtype=np.int64),
                    overlapped=bool(ph.get("overlapped", False)),
                    retries=(
                        None
                        if ph.get("retries") is None
                        else np.asarray(ph["retries"], dtype=np.int64)
                    ),
                )
            )
        return out

    def comm_matrix(self) -> np.ndarray:
        """Rank×rank byte matrix over the whole run: entry [p, q] is what
        rank p sent to rank q; the grand total equals ``total_nbytes()``."""
        out = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        for p in self.phases:
            if p.bytes_matrix is not None:
                out += p.bytes_matrix
        return out

    def phase_labels(self) -> list[str]:
        """Phase-marker labels in first-appearance order."""
        seen: list[str] = []
        for p in self.phases:
            if p.kind == "phase" and p.label is not None and p.label not in seen:
                seen.append(p.label)
        return seen

    def phase(self, label: str) -> "RunStats":
        """The sub-run between consecutive ``("phase", label)`` markers
        named ``label`` and the next phase marker (or end of run).

        Raises :class:`~repro.errors.PhaseNotFoundError` when no marker
        with that label exists — an empty result here almost always means
        a typo in the label, not a phase that did no work.
        """
        out = RunStats(self.nprocs, model=self.model)
        active = False
        found = False
        for p in self.phases:
            if p.kind == "phase":
                active = p.label == label
                found = found or active
                continue
            if active:
                out.phases.append(p)
        if not found:
            known = self.phase_labels()
            raise PhaseNotFoundError(
                f"no phase marker named {label!r} in this run; "
                + (f"known phases: {known}" if known else "the run has no phase markers")
            )
        return out

    def window(self, label: str) -> "RunStats":
        """Alias of :meth:`phase` (historical name)."""
        return self.phase(label)


class Machine:
    """A simulated P-processor message-passing machine.

    ``faults`` (a :class:`~repro.runtime.faults.FaultPlan` or a prebuilt
    :class:`~repro.runtime.faults.FaultInjector`) installs the
    fault-injecting delivery layer: every remote message then travels as a
    sequence-numbered, checksummed envelope through a drop / duplicate /
    reorder / corrupt / stall adversary, with bounded retransmission per
    ``delivery`` (a :class:`~repro.runtime.faults.DeliveryConfig`).  The
    protocol either delivers exactly the sent bytes or raises
    :class:`~repro.errors.CommFailureError`.  Without ``faults`` the
    original zero-overhead delivery path runs, byte-for-byte unchanged.
    """

    def __init__(self, nprocs: int, faults=None, delivery=None, model=None):
        if nprocs < 1:
            raise RuntimeMachineError("need at least one processor")
        self.nprocs = int(nprocs)
        #: α–β cost model used for modeled-time metrics during the run and
        #: as the default model of the produced RunStats
        self.model = model or CommModel()
        if faults is None:
            self.injector = None
        elif isinstance(faults, _faults.FaultInjector):
            self.injector = faults
        else:
            self.injector = _faults.FaultInjector(
                faults, delivery or _faults.DeliveryConfig()
            )
        self.delivery = (
            delivery
            or (self.injector.delivery if self.injector else None)
            or _faults.DeliveryConfig()
        )

    # ------------------------------------------------------------------
    # fault-injecting point-to-point delivery (remote messages only)
    # ------------------------------------------------------------------
    def _deliver(self, src, dst, payload, step, msgs, nbytes, bmat, retries, penalty):
        """Ship one message through the adversary with bounded retry.

        Returns the list of arrival envelopes ``(src, seq, payload)`` —
        usually one, two when duplicated, never carrying corrupt data
        (corruption is detected by the envelope checksum and NACKed).
        Every attempt counts as wire traffic; retry k charges the sender
        the modeled ack-timeout wait.  Raises CommFailureError when the
        retry budget is exhausted.
        """
        inj = self.injector
        cfg = self.delivery
        seq = inj.next_seq(src, dst)
        checksum = _faults.payload_checksum(payload)
        nb = payload_nbytes(payload)
        attempt = 0
        while True:
            attempt += 1
            msgs[src] += 1
            nbytes[src] += nb
            if bmat is not None:
                bmat[src, dst] += nb
            fate = inj.fate(src, dst, seq, attempt)
            failed = False
            if fate.drop:
                inj.record("drop", step, src, dst, seq, attempt)
                failed = True
            elif fate.corrupt:
                bad = _faults.corrupt_payload(
                    payload, inj.corruption_rng(src, dst, seq, attempt)
                )
                if bad is not None and _faults.payload_checksum(bad) != checksum:
                    # receiver sees the checksum mismatch and NACKs
                    inj.record("corrupt", step, src, dst, seq, attempt)
                    failed = True
                # else: nothing corruptible in the payload — arrives intact
            if not failed:
                out = [(src, seq, payload)]
                if fate.duplicate:
                    inj.record("duplicate", step, src, dst, seq, attempt)
                    out.append((src, seq, payload))
                retries[src] += attempt - 1
                if attempt > 1:
                    _metrics.record("runtime.retries", attempt - 1)
                return out
            if attempt > cfg.max_retries:
                raise CommFailureError(
                    f"message {src}->{dst} seq={seq} undeliverable after "
                    f"{attempt} attempts (retry budget {cfg.max_retries}); "
                    f"plan: {inj.plan.describe()}",
                    plan=inj.plan,
                    src=src,
                    dst=dst,
                    seq=seq,
                    attempts=attempt,
                )
            penalty[src] += cfg.retry_wait(attempt)

    def _faulty_alltoallv(
        self, alive, requests, inbox, step, msgs, nbytes, bmat, retries, extra
    ):
        """All-to-all through the adversary: sequence-numbered envelopes,
        per-destination arrival reordering, duplicate suppression.

        Self-messages never touch the network (exactly like the happy
        path, where they are routed without being counted)."""
        P = self.nprocs
        inj = self.injector
        arrivals: list[list] = [[] for _ in range(P)]
        selfmsg: list[dict] = [dict() for _ in range(P)]
        frag_pairs: set[tuple[int, int]] = set()
        for p in alive:
            send = requests[p][1] or {}
            for q, payload in send.items():
                q = int(q)
                if not (0 <= q < P):
                    raise RuntimeMachineError(f"bad destination {q}")
                if q == p:
                    selfmsg[p][p] = (
                        assemble_fragments(payload)
                        if isinstance(payload, Fragmented)
                        else payload
                    )
                    continue
                if isinstance(payload, Fragmented):
                    # per-value mode: every (slot, value) pair is its own
                    # envelope — own seq, own checksum, own retry budget
                    frag_pairs.add((p, q))
                    for part in payload:
                        arrivals[q].extend(
                            self._deliver(p, q, part, step, msgs, nbytes, bmat, retries, extra)
                        )
                    continue
                arrivals[q].extend(
                    self._deliver(p, q, payload, step, msgs, nbytes, bmat, retries, extra)
                )
        for q in alive:
            envs = arrivals[q]
            perm = inj.reorder_perm(q, step, len(envs))
            if perm is not None:
                envs = [envs[int(k)] for k in perm]
                inj.record("reorder", step, src=-1, dst=q)
            recv = dict(selfmsg[q])
            seen: set[tuple[int, int]] = set()
            frag_parts: dict[int, list] = {}
            for src, seq, payload in envs:
                if (src, seq) in seen:
                    inj.record("dup_suppressed", step, src, q, seq)
                    continue
                seen.add((src, seq))
                if (src, q) in frag_pairs:
                    frag_parts.setdefault(src, []).append(payload)
                else:
                    recv[src] = payload
            for src, parts in frag_parts.items():
                # slot-addressed assembly: immune to reordering
                recv[src] = assemble_fragments(parts)
            inbox[q] = recv

    # ------------------------------------------------------------------
    def run(
        self,
        make_program: Callable[[int], Generator],
        collect_stats: bool = True,
    ) -> tuple[list, RunStats]:
        """Run one rank program per processor to completion.

        ``make_program(p)`` builds rank p's generator.  Returns each
        rank's return value and the run statistics.  All ranks must issue
        the same sequence of collectives (checked) — the SPMD contract.

        While the run is in flight the machine's fault injector (if any)
        is visible to rank programs through
        :func:`repro.runtime.faults.active_injector`, which is how the
        executors know to run the schedule-validation protocol.
        """
        with _faults._activation(self.injector):
            return self._run(make_program, collect_stats)

    def _run(
        self,
        make_program: Callable[[int], Generator],
        collect_stats: bool = True,
    ) -> tuple[list, RunStats]:
        P = self.nprocs
        gens = [make_program(p) for p in range(P)]
        inbox: list = [None] * P
        done = [False] * P
        results: list = [None] * P
        stats = RunStats(P, model=self.model)
        inj = self.injector
        if inj is not None:
            inj.reset()  # same-plan replays are bit-identical
        step_no = 0  # superstep counter (stall / reorder entropy coordinate)
        pending_comm = None  # (msgs, nbytes) of an in-flight async exchange

        # observability: per-rank spans per phase window + comm counters
        tracer = _trace.get_tracer()
        win_label = "startup"
        win_start = tracer._now_us() if tracer is not None else 0.0
        win_compute = np.zeros(P)
        win_msgs = np.zeros(P, dtype=np.int64)
        win_bytes = np.zeros(P, dtype=np.int64)

        def _flush_window() -> None:
            if tracer is None or not win_compute.any() and not win_msgs.any():
                return
            for p in range(P):
                tracer.add_complete(
                    f"rank{p}/{win_label}",
                    win_start,
                    win_compute[p] * 1e6,
                    tid=f"rank{p}",
                    phase=win_label,
                    msgs=int(win_msgs[p]),
                    nbytes=int(win_bytes[p]),
                )

        try:
            while not all(done):
                requests: list = [None] * P
                compute = np.zeros(P)
                for p in range(P):
                    if done[p]:
                        continue
                    t0 = time.perf_counter()
                    try:
                        requests[p] = gens[p].send(inbox[p])
                    except StopIteration as stop:
                        results[p] = stop.value
                        done[p] = True
                    compute[p] = time.perf_counter() - t0
                    inbox[p] = None
                win_compute += compute
                if all(done):
                    if collect_stats:
                        stats.phases.append(
                            PhaseStats("finish", None, compute, np.zeros(P, np.int64), np.zeros(P, np.int64))
                        )
                    break
                alive = [p for p in range(P) if not done[p]]
                if any(done[p] for p in range(P)):
                    raise RuntimeMachineError(
                        "SPMD violation: some ranks finished while others are "
                        "still communicating"
                    )
                kinds = {requests[p][0] for p in alive}
                if len(kinds) != 1:
                    raise RuntimeMachineError(
                        f"SPMD violation: mismatched collectives {sorted(kinds)}"
                    )
                kind = kinds.pop()
                msgs = np.zeros(P, dtype=np.int64)
                nbytes = np.zeros(P, dtype=np.int64)
                bmat = np.zeros((P, P), dtype=np.int64) if collect_stats else None
                retries = np.zeros(P, dtype=np.int64) if inj is not None else None
                # modeled extra seconds this superstep: stalls + retry waits
                extra = np.zeros(P) if inj is not None else None
                label = None
                if inj is not None and kind != "phase":
                    for p in alive:
                        st = inj.stall_seconds(p, step_no)
                        if st > 0.0:
                            extra[p] += st
                            inj.record("stall", step_no, src=p, dst=p)

                if kind in ("alltoallv", "alltoallv_async"):
                    if inj is not None:
                        self._faulty_alltoallv(
                            alive, requests, inbox, step_no, msgs, nbytes, bmat, retries, extra
                        )
                    else:
                        recv: list[dict] = [dict() for _ in range(P)]
                        for p in alive:
                            send = requests[p][1] or {}
                            for q, payload in send.items():
                                if not (0 <= q < P):
                                    raise RuntimeMachineError(f"bad destination {q}")
                                fragmented = isinstance(payload, Fragmented)
                                recv[q][p] = (
                                    assemble_fragments(payload) if fragmented else payload
                                )
                                if q != p:
                                    # a fragmented payload costs one α per part
                                    msgs[p] += len(payload) if fragmented else 1
                                    nb = payload_nbytes(payload)
                                    nbytes[p] += nb
                                    if bmat is not None:
                                        bmat[p, q] += nb
                        for p in alive:
                            inbox[p] = recv[p]
                    if kind == "alltoallv_async":
                        # nonblocking: packets fly while the ranks compute their
                        # interior rows; the matching "commwait" closes the window
                        pending_comm = (msgs.copy(), nbytes.copy())
                elif kind == "commwait":
                    for p in alive:
                        inbox[p] = None
                    if pending_comm is not None and _metrics.metrics_enabled():
                        pm, pb = pending_comm
                        hidden = float(
                            np.max(pm * self.model.latency + pb * self.model.inv_bandwidth)
                        )
                        if hidden > 0.0:
                            _metrics.observe(
                                "comm.overlap_ratio",
                                min(hidden, float(compute.max())) / hidden,
                            )
                    pending_comm = None
                elif kind == "allreduce":
                    vals = [requests[p][1] for p in alive]
                    if inj is not None:
                        # each contribution must survive delivery (ring model:
                        # it travels to the next rank); corrupt/dropped
                        # contributions are retransmitted, never reduced
                        for p in alive:
                            self._deliver(
                                p, (p + 1) % P, requests[p][1], step_no,
                                msgs, nbytes, bmat, retries, extra,
                            )
                    total = vals[0]
                    for v in vals[1:]:
                        total = total + v
                    for p in alive:
                        inbox[p] = total
                        if inj is None:
                            msgs[p] += 1
                            nb = payload_nbytes(requests[p][1])
                            nbytes[p] += nb
                            if bmat is not None:
                                # ring model: the reduction contribution travels
                                # to the next rank (keeps matrix total == bytes)
                                bmat[p, (p + 1) % P] += nb
                elif kind == "allgather":
                    gathered = [requests[p][1] for p in alive]
                    for p in alive:
                        inbox[p] = list(gathered)
                        if inj is not None:
                            # one faultable copy per peer
                            for q in range(P):
                                if q != p:
                                    self._deliver(
                                        p, q, requests[p][1], step_no,
                                        msgs, nbytes, bmat, retries, extra,
                                    )
                        else:
                            msgs[p] += P - 1
                            nb = payload_nbytes(requests[p][1])
                            nbytes[p] += nb * (P - 1)
                            if bmat is not None:
                                for q in range(P):
                                    if q != p:
                                        bmat[p, q] += nb
                elif kind == "barrier":
                    for p in alive:
                        inbox[p] = None
                elif kind == "phase":
                    labels = {requests[p][1] for p in alive}
                    if len(labels) != 1:
                        raise RuntimeMachineError(
                            f"SPMD violation: mismatched phase labels {labels}"
                        )
                    label = labels.pop()
                    for p in alive:
                        inbox[p] = None
                    _flush_window()
                    win_label = str(label)
                    win_start = tracer._now_us() if tracer is not None else 0.0
                    win_compute = np.zeros(P)
                    win_msgs = np.zeros(P, dtype=np.int64)
                    win_bytes = np.zeros(P, dtype=np.int64)
                else:
                    raise RuntimeMachineError(f"unknown collective {kind!r}")

                win_msgs += msgs
                win_bytes += nbytes
                if inj is not None and extra.any():
                    compute = compute + extra
                    win_compute += extra
                if _metrics.metrics_enabled() and kind != "phase":
                    _metrics.record("machine.collectives", 1, kind=kind)
                    _metrics.record("machine.msgs", int(msgs.sum()), kind=kind)
                    _metrics.record("machine.bytes", int(nbytes.sum()), kind=kind)
                    _metrics.observe(
                        "machine.superstep_compute_seconds",
                        float(compute.max()),
                        phase=win_label,
                    )
                if collect_stats:
                    stats.phases.append(
                        PhaseStats(
                            kind, label, compute, msgs, nbytes,
                            bytes_matrix=bmat, retries=retries,
                            overlapped=(kind == "alltoallv_async"),
                        )
                    )
                step_no += 1
        except BaseException as exc:
            # the trace must stay parseable when a solve dies mid-flight
            # (e.g. CommFailureError after retry exhaustion): mark the
            # abort, then let the finally block flush the open window
            if tracer is not None:
                tracer.instant(
                    "machine.abort",
                    tid="machine",
                    step=step_no,
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        finally:
            if inj is not None:
                stats.fault_events = inj.event_log()
            _flush_window()
            if tracer is not None and collect_stats:
                tracer.instant(
                    "comm_matrix",
                    tid="machine",
                    nprocs=P,
                    matrix=stats.comm_matrix().tolist(),
                    total_bytes=stats.total_nbytes(),
                )
                tracer.instant("run_stats", tid="machine", **stats.to_dict())
        return results, stats
