"""The BSP machine: lockstep execution of SPMD rank programs.

A *rank program* is a Python generator.  It computes locally, and whenever
it needs communication it yields a collective request::

    recv = yield ("alltoallv", {dest: payload, ...})   # -> {src: payload}
    total = yield ("allreduce", local_value)            # -> sum over ranks
    vals = yield ("allgather", local_value)             # -> [v0, v1, ...]
    _ = yield ("barrier", None)
    _ = yield ("phase", "executor")                     # named timing mark

The machine advances all ranks to their next yield, checks they agree on
the collective (SPMD discipline), routes the data, and resumes them.  Per
rank, wall-clock compute time between collectives is measured; per
collective, messages and bytes are counted.  ``RunStats`` aggregates both
and converts them into an estimated parallel time under an α–β
:class:`CommModel`.

Helper subroutines compose with ``result = yield from helper(...)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable

import numpy as np

from repro.errors import RuntimeMachineError

__all__ = ["CommModel", "PhaseStats", "RunStats", "Machine", "payload_nbytes"]


def payload_nbytes(obj) -> int:
    """Approximate wire size of a payload (numpy-aware)."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    return 64  # opaque object: flat estimate


@dataclass(frozen=True)
class CommModel:
    """α–β communication cost: per-message latency + per-byte transfer.

    Defaults approximate the paper's IBM SP-2 (≈40 µs latency, ≈40 MB/s).
    """

    latency: float = 40e-6
    inv_bandwidth: float = 25e-9

    def time(self, msgs: int, nbytes: int) -> float:
        return msgs * self.latency + nbytes * self.inv_bandwidth


@dataclass
class PhaseStats:
    """One superstep: per-rank compute seconds and traffic counts."""

    kind: str
    label: str | None
    compute: np.ndarray  # seconds per rank since the previous superstep
    msgs: np.ndarray  # messages sent per rank
    nbytes: np.ndarray  # bytes sent per rank

    def step_time(self, model: CommModel) -> float:
        """Estimated parallel duration of this superstep: slowest rank's
        compute plus its modeled communication."""
        comm = self.msgs * model.latency + self.nbytes * model.inv_bandwidth
        return float(np.max(self.compute + comm))


@dataclass
class RunStats:
    """Aggregated statistics of one ``Machine.run``."""

    nprocs: int
    phases: list[PhaseStats] = field(default_factory=list)

    def total_compute(self) -> np.ndarray:
        """Per-rank compute seconds over the whole run."""
        if not self.phases:
            return np.zeros(self.nprocs)
        return np.sum([p.compute for p in self.phases], axis=0)

    def total_msgs(self) -> int:
        return int(sum(p.msgs.sum() for p in self.phases))

    def total_nbytes(self) -> int:
        return int(sum(p.nbytes.sum() for p in self.phases))

    def parallel_time(self, model: CommModel | None = None) -> float:
        """Estimated wall time: Σ over supersteps of the slowest rank."""
        model = model or CommModel()
        return sum(p.step_time(model) for p in self.phases)

    def window(self, label: str) -> "RunStats":
        """The sub-run between consecutive ``("phase", label)`` markers
        named ``label`` and the next phase marker (or end of run)."""
        out = RunStats(self.nprocs)
        active = False
        for p in self.phases:
            if p.kind == "phase":
                active = p.label == label
                continue
            if active:
                out.phases.append(p)
        return out


class Machine:
    """A simulated P-processor message-passing machine."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise RuntimeMachineError("need at least one processor")
        self.nprocs = int(nprocs)

    # ------------------------------------------------------------------
    def run(
        self,
        make_program: Callable[[int], Generator],
        collect_stats: bool = True,
    ) -> tuple[list, RunStats]:
        """Run one rank program per processor to completion.

        ``make_program(p)`` builds rank p's generator.  Returns each
        rank's return value and the run statistics.  All ranks must issue
        the same sequence of collectives (checked) — the SPMD contract.
        """
        P = self.nprocs
        gens = [make_program(p) for p in range(P)]
        inbox: list = [None] * P
        done = [False] * P
        results: list = [None] * P
        stats = RunStats(P)

        while not all(done):
            requests: list = [None] * P
            compute = np.zeros(P)
            for p in range(P):
                if done[p]:
                    continue
                t0 = time.perf_counter()
                try:
                    requests[p] = gens[p].send(inbox[p])
                except StopIteration as stop:
                    results[p] = stop.value
                    done[p] = True
                compute[p] = time.perf_counter() - t0
                inbox[p] = None
            if all(done):
                if collect_stats:
                    stats.phases.append(
                        PhaseStats("finish", None, compute, np.zeros(P, np.int64), np.zeros(P, np.int64))
                    )
                break
            alive = [p for p in range(P) if not done[p]]
            if any(done[p] for p in range(P)):
                raise RuntimeMachineError(
                    "SPMD violation: some ranks finished while others are "
                    "still communicating"
                )
            kinds = {requests[p][0] for p in alive}
            if len(kinds) != 1:
                raise RuntimeMachineError(
                    f"SPMD violation: mismatched collectives {sorted(kinds)}"
                )
            kind = kinds.pop()
            msgs = np.zeros(P, dtype=np.int64)
            nbytes = np.zeros(P, dtype=np.int64)
            label = None

            if kind == "alltoallv":
                recv: list[dict] = [dict() for _ in range(P)]
                for p in alive:
                    send = requests[p][1] or {}
                    for q, payload in send.items():
                        if not (0 <= q < P):
                            raise RuntimeMachineError(f"bad destination {q}")
                        recv[q][p] = payload
                        if q != p:
                            msgs[p] += 1
                            nbytes[p] += payload_nbytes(payload)
                for p in alive:
                    inbox[p] = recv[p]
            elif kind == "allreduce":
                vals = [requests[p][1] for p in alive]
                total = vals[0]
                for v in vals[1:]:
                    total = total + v
                for p in alive:
                    inbox[p] = total
                    msgs[p] += 1
                    nbytes[p] += payload_nbytes(requests[p][1])
            elif kind == "allgather":
                gathered = [requests[p][1] for p in alive]
                for p in alive:
                    inbox[p] = list(gathered)
                    msgs[p] += P - 1
                    nbytes[p] += payload_nbytes(requests[p][1]) * (P - 1)
            elif kind == "barrier":
                for p in alive:
                    inbox[p] = None
            elif kind == "phase":
                labels = {requests[p][1] for p in alive}
                if len(labels) != 1:
                    raise RuntimeMachineError(
                        f"SPMD violation: mismatched phase labels {labels}"
                    )
                label = labels.pop()
                for p in alive:
                    inbox[p] = None
            else:
                raise RuntimeMachineError(f"unknown collective {kind!r}")

            if collect_stats:
                stats.phases.append(PhaseStats(kind, label, compute, msgs, nbytes))
        return results, stats
