"""Cross-call reuse of gather schedules (inspector amortization).

The paper's whole argument for the inspector/executor split (Sec. 4,
Tables 2–3) is that the communication sets ``Used``/``RecvInd`` are
computed *once* and amortized over every executor iteration.  Within one
solve that already happens — ``setup()`` runs once — but across solves and
across kernels the runtime used to re-run the full collective inspection
(including, on the Chaos path, rebuilding the distributed translation
table) even when nothing structural changed.

:class:`ScheduleCache` closes that gap.  A cache entry is keyed on
everything the resulting :class:`~repro.runtime.inspector.GatherSchedule`
depends on:

* the **structure fingerprint** — CRC of the rank's ``Used`` set (the
  requested global indices, paper Eq. 21),
* the **distribution fingerprint** — CRC of the materialized IND relation
  (:meth:`~repro.distribution.base.Distribution.fingerprint`); two
  distributions with the same mapping share schedules,
* the **translation coordinates** on the Chaos path — the owned-index
  list the distributed table would be built from,
* the rank and processor count.

SPMD discipline: inspection is collective, so a cache hit must be
*collective* too — if one rank skipped the inspector's all-to-alls while
another ran them, the machine would (rightly) abort with an SPMD
violation.  :func:`cached_schedule` therefore confirms the hit with one
scalar allreduce before anyone skips anything; the α cost of that single
agreement message is what a warm solve pays instead of the full
inspection rounds.

Corruption safety: entries are stored and served as deep copies, so a
fault-injected run that damages its working schedule in place can never
poison the cache.  The fault-recovery path
(:func:`~repro.runtime.faults.ensure_valid_schedule`) still explicitly
invalidates the owning entry before re-inspection and re-installs the
verified rebuild — the cache is never allowed to serve a schedule whose
integrity was ever in question.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.observability import metrics as _metrics
from repro.runtime.inspector import GatherSchedule

__all__ = [
    "ScheduleCache",
    "ScheduleCacheStats",
    "DEFAULT_SCHEDULE_CACHE",
    "cached_schedule",
    "copy_schedule",
    "schedule_cache_stats",
]


def _array_fp(arr) -> tuple[int, int]:
    """(length, CRC32) fingerprint of an index array."""
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.int64))
    return len(a), zlib.crc32(a.tobytes())


def copy_schedule(sched: GatherSchedule) -> GatherSchedule:
    """Deep copy of a gather schedule (all index arrays owned)."""
    out = GatherSchedule(
        sched.rank,
        sched.nprocs,
        np.array(sched.ghost_global, copy=True),
        {q: np.array(v, copy=True) for q, v in sched.send_locals.items()},
        {q: np.array(v, copy=True) for q, v in sched.recv_slots.items()},
        np.array(sched.self_slots, copy=True),
        np.array(sched.self_locals, copy=True),
    )
    return out


@dataclass
class ScheduleCacheStats:
    """Hit/miss/rejection/invalidation counters of one cache.

    ``rejected`` counts lost collective agreements: this rank *had* a
    valid cached entry, but the hit/miss allreduce came back short of
    unanimous so the entry could not be used.  Recording those separately
    from plain misses keeps warm-cache hit-rate reports honest — a
    rejected hit says nothing about this rank's cache temperature.
    """

    hits: int = 0
    misses: int = 0
    rejected: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "invalidations": self.invalidations,
        }


class ScheduleCache:
    """Keyed store of inspected gather schedules.

    Bounded LRU-ish (FIFO eviction at ``max_entries``); entries are deep
    copies both on the way in and on the way out, so neither the producer
    nor a consumer mutating its working schedule can corrupt the cache.

    Thread-safe: the entry map and the stats counters are guarded by one
    lock, so a shared cache (the service layer hands one instance to every
    worker thread) cannot lose updates or tear an eviction mid-flight.
    The copies are taken inside the lock; the returned schedule is private
    to the caller.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: dict[tuple, GatherSchedule] = {}
        self.stats = ScheduleCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- keys ------------------------------------------------------------
    @staticmethod
    def key_replicated(rank: int, dist, used) -> tuple:
        """Key of a replicated-IND inspection (Eq. 21/22, local ownership)."""
        return ("replicated", int(rank), dist.fingerprint(), _array_fp(used))

    @staticmethod
    def key_translated(rank: int, nglobal: int, nprocs: int, owned_global, used) -> tuple:
        """Key of a Chaos inspection: the distributed table is determined
        by (nglobal, nprocs, owned index list), so a hit skips both the
        table build and the dereference rounds."""
        return (
            "translated",
            int(rank),
            int(nglobal),
            int(nprocs),
            _array_fp(owned_global),
            _array_fp(used),
        )

    # -- store -----------------------------------------------------------
    def get(self, key: tuple) -> GatherSchedule | None:
        """A private copy of the cached schedule, or None."""
        with self._lock:
            sched = self._entries.get(key)
            return None if sched is None else copy_schedule(sched)

    def put(self, key: tuple, sched: GatherSchedule) -> None:
        copy = copy_schedule(sched)  # copy outside the lock; it's the slow part
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = copy

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (the ``rebuild_schedule`` recovery hook)."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.stats.invalidations += 1
        if present:
            _metrics.record("inspector.cache_invalidations", 1)
        return present

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = ScheduleCacheStats()

    # -- stats (used by cached_schedule; counters live under the lock) ----
    def record_hit(self) -> None:
        with self._lock:
            self.stats.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.stats.misses += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.stats.rejected += 1


#: The process-global cache used when callers pass ``schedule_cache=True``.
DEFAULT_SCHEDULE_CACHE = ScheduleCache()


def schedule_cache_stats() -> dict:
    """Counters of the process-global schedule cache."""
    return DEFAULT_SCHEDULE_CACHE.stats.as_dict()


def cached_schedule(cache: ScheduleCache | None, key: tuple, nprocs: int, build):
    """SPMD subroutine: serve ``key`` from ``cache`` or run ``build``.

    ``build`` is a zero-argument callable returning the inspector
    generator (e.g. ``lambda: build_schedule_replicated(...)``).  The
    hit/miss decision is confirmed collectively with one scalar allreduce
    — every rank must agree before the inspection collectives are skipped,
    which keeps the machine's SPMD contract intact under any pattern of
    per-rank invalidation.  With ``cache=None`` this is exactly
    ``yield from build()`` (no agreement round, zero overhead).
    """
    if cache is None:
        sched = yield from build()
        return sched
    hit = cache.get(key)
    n_hit = yield ("allreduce", 1 if hit is not None else 0)
    if hit is not None and n_hit == nprocs:
        cache.record_hit()
        _metrics.record("inspector.cache_hits", 1)
        return hit
    if hit is not None:
        # this rank's entry was valid but the agreement came back short of
        # unanimous: a *rejection*, not a miss — the cache was warm here
        cache.record_rejected()
        _metrics.record("inspector.cache_rejected", 1)
    else:
        cache.record_miss()
        _metrics.record("inspector.cache_misses", 1)
    sched = yield from build()
    cache.put(key, sched)
    return sched
