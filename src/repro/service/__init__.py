"""Multi-tenant compile-and-solve service layer (DESIGN.md §13).

The "millions of users" front end over the compiler and solvers: a
long-running :class:`CompileSolveService` accepting concurrent kernel
compilation and solve requests through an asyncio-friendly surface,
backed by a worker thread pool, a bounded admission queue with shed and
timeout behavior, per-tenant quotas, and single-flight batched
compilation over the shared structural-key caches — so any number of
concurrent requests for one kernel structure pay for exactly one
compilation, and a warm structure costs a dict probe.

    from repro.service import CompileSolveService, ServiceConfig, TenantQuota

    with CompileSolveService(ServiceConfig(workers=8)) as svc:
        resp = svc.solve_cg(A, b, tenant="alice")
        x = resp.value["x"]
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantQuota,
)
from repro.service.handlers import (
    BUILTIN_HANDLERS,
    ServiceContext,
    handle_compile,
    handle_solve_cg,
    handle_solve_jacobi,
)
from repro.service.service import (
    CompileSolveService,
    ServiceConfig,
    ServiceResponse,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantQuota",
    "ServiceContext",
    "BUILTIN_HANDLERS",
    "handle_compile",
    "handle_solve_cg",
    "handle_solve_jacobi",
    "CompileSolveService",
    "ServiceConfig",
    "ServiceResponse",
]
