"""Request admission for the compile-and-solve service.

Admission is the service's first line of defense: every request passes
through one :class:`AdmissionController` *before* it is allowed to occupy
a queue slot or a worker.  The controller enforces two bounds under a
single lock:

* a **global queue bound** (``max_queue``) — requests arriving while the
  backlog is full are *shed* immediately (the caller gets a ``"shed"``
  response in microseconds instead of a slow failure after a long wait;
  classic load-shedding, cheaper for everyone than queueing to death),
* **per-tenant quotas** (:class:`TenantQuota`) — a tenant may not hold
  more than ``max_inflight`` admitted-but-unfinished requests, so one
  noisy tenant cannot starve the rest of the fleet.

A third bound, the **queue timeout**, is enforced at dequeue time by the
worker (see :mod:`repro.service.service`): a request that waited longer
than its deadline is answered ``"timed_out"`` without being run — work
nobody is waiting for anymore is work not worth doing.

Every admission decision is counted in the metrics registry
(``service.admitted`` / ``service.shed{reason=...}``) and the live queue
depth / in-flight occupancy are published as gauges, so a dashboard can
watch the backlog breathe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.observability import metrics as _metrics

__all__ = [
    "TenantQuota",
    "AdmissionController",
    "AdmissionDecision",
]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_inflight`` bounds the tenant's admitted-but-unfinished requests
    (queued + running).  The default is deliberately generous — quotas
    exist to stop a runaway tenant, not to ration a healthy one.
    """

    max_inflight: int = 1 << 16

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``admitted`` is True when the request may enter the queue; otherwise
    ``reason`` names the bound that rejected it (``"queue_full"`` or
    ``"quota"``) — it becomes the response status verbatim.
    """

    admitted: bool
    reason: str | None = None


class AdmissionController:
    """Shared admission state: queue depth + per-tenant in-flight counts.

    Thread-safe; the three transitions mirror a request's life:

    ``try_admit(tenant)``   caller thread, before enqueue
    ``dequeued()``          worker thread, after pulling from the queue
    ``finished(tenant)``    worker thread, after the response is resolved
    """

    def __init__(
        self,
        max_queue: int = 1024,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._inflight: dict[str, int] = {}

    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def try_admit(self, tenant: str) -> AdmissionDecision:
        """Admit one request for ``tenant``, or say why not."""
        with self._lock:
            if self._queue_depth >= self.max_queue:
                decision = AdmissionDecision(False, "queue_full")
            elif self._inflight.get(tenant, 0) >= self.quota_for(tenant).max_inflight:
                decision = AdmissionDecision(False, "quota")
            else:
                self._queue_depth += 1
                self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
                decision = AdmissionDecision(True)
            depth = self._queue_depth
        if decision.admitted:
            _metrics.record("service.admitted", tenant=tenant)
        else:
            _metrics.record("service.shed", tenant=tenant, reason=decision.reason)
        if _metrics.metrics_enabled():
            _metrics.REGISTRY.gauge("service.queue_depth").set(depth)
        return decision

    def dequeued(self) -> None:
        """A worker pulled one request off the queue (slot freed)."""
        with self._lock:
            self._queue_depth -= 1
            depth = self._queue_depth
        if _metrics.metrics_enabled():
            _metrics.REGISTRY.gauge("service.queue_depth").set(depth)

    def finished(self, tenant: str) -> None:
        """A request for ``tenant`` resolved (ok, error, or timed out)."""
        with self._lock:
            n = self._inflight.get(tenant, 0) - 1
            if n > 0:
                self._inflight[tenant] = n
            else:
                self._inflight.pop(tenant, None)

    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth

    def inflight(self, tenant: str | None = None) -> int:
        """In-flight requests for one tenant, or the total."""
        with self._lock:
            if tenant is not None:
                return self._inflight.get(tenant, 0)
            return sum(self._inflight.values())
