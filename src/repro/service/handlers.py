"""Request handlers: what a service worker actually runs.

Each handler is a plain function ``handler(payload, ctx) -> dict`` — the
payload is the request's keyword dict, the context carries the shared
caches, and the returned dict becomes ``ServiceResponse.value``.  Three
handlers ship with the service:

``compile``
    The cached-module front door (PyOP2's architecture): the structural
    key is computed first, then the kernel is fetched through the shared
    :class:`~repro.compiler.plan_cache.PlanCache`'s single-flight
    :meth:`~repro.compiler.plan_cache.PlanCache.get_or_compile` — a warm
    key costs a dict probe, and N concurrent cold requests for the same
    structure pay for exactly one compilation between them.

``solve_cg`` / ``solve_jacobi``
    Service-driven iterative solves.  Their SpMV compiles through the
    same process-global kernel cache, so the first solve of a structure
    warms every later one, whatever tenant it came from (structures are
    shared; *data* never is — keys contain no values).

Custom kinds can be registered per service instance (see
:meth:`~repro.service.service.CompileSolveService.register`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.compiler.backends import resolve_backend
from repro.compiler.kernels import compile_kernel
from repro.compiler.parser import parse
from repro.compiler.plan_cache import PlanCache, kernel_cache_key
from repro.errors import ServiceError
from repro.runtime.schedule_cache import ScheduleCache

__all__ = [
    "ServiceContext",
    "handle_compile",
    "handle_solve_cg",
    "handle_solve_jacobi",
    "BUILTIN_HANDLERS",
]


@dataclass
class ServiceContext:
    """Shared state handed to every handler invocation."""

    plan_cache: PlanCache
    schedule_cache: ScheduleCache | None = None


def _key_fingerprint(key: tuple) -> str:
    """Short stable token of a structural cache key (for logs/spans)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:12]


def handle_compile(payload: dict, ctx: ServiceContext) -> dict:
    """Compile (or fetch) a kernel through the shared plan cache.

    Payload: ``source`` (mini-language text or Program), ``formats``
    (name → Format instance), plus the optional ``compile_kernel``
    knobs ``backend``, ``force_driver``, ``allow_merge``, ``verify``,
    ``extra_key``.
    """
    try:
        source = payload["source"]
        formats = payload["formats"]
    except KeyError as exc:
        raise ServiceError(f"compile request missing {exc.args[0]!r}") from None
    program = parse(source) if isinstance(source, str) else source
    be = resolve_backend(payload.get("backend"), None)
    force_driver = payload.get("force_driver")
    allow_merge = bool(payload.get("allow_merge", True))
    extra_key = tuple(payload.get("extra_key", ()))
    key = kernel_cache_key(
        program, formats, be.name, force_driver, allow_merge, extra_key
    )
    kernel, outcome = ctx.plan_cache.get_or_compile(
        key,
        lambda: compile_kernel(
            program,
            formats,
            backend=be,
            force_driver=force_driver,
            allow_merge=allow_merge,
            verify=payload.get("verify", "error"),
            cache=False,  # this service cache IS the cache tier
        ),
        backend=be.name,
    )
    return {
        "kernel": kernel,
        "outcome": outcome,
        "backend": kernel.backend,
        "key_fingerprint": _key_fingerprint(key),
    }


def handle_solve_cg(payload: dict, ctx: ServiceContext) -> dict:
    """Sequential preconditioned CG (compiled SpMV inner loop).

    Payload: ``A`` (matrix Format or matvec callable), ``b``, plus the
    optional :func:`repro.solvers.cg.cg` knobs ``diag``, ``tol``,
    ``maxiter``, ``x0``, ``backend``.
    """
    from repro.solvers.cg import cg

    try:
        A, b = payload["A"], payload["b"]
    except KeyError as exc:
        raise ServiceError(f"solve_cg request missing {exc.args[0]!r}") from None
    result = cg(
        A,
        b,
        diag=payload.get("diag"),
        tol=payload.get("tol", 1e-8),
        maxiter=payload.get("maxiter"),
        x0=payload.get("x0"),
        backend=payload.get("backend"),
    )
    return {
        "x": result.x,
        "iterations": result.iterations,
        "converged": result.converged,
        "final_residual": result.final_residual,
    }


def handle_solve_jacobi(payload: dict, ctx: ServiceContext) -> dict:
    """(Weighted) Jacobi solve.

    Payload: ``A``, ``b``, plus optional ``tol``, ``maxiter``, ``omega``,
    ``backend``.
    """
    from repro.solvers.jacobi import jacobi

    try:
        A, b = payload["A"], payload["b"]
    except KeyError as exc:
        raise ServiceError(f"solve_jacobi request missing {exc.args[0]!r}") from None
    x, iterations, residual = jacobi(
        A,
        b,
        tol=payload.get("tol", 1e-8),
        maxiter=payload.get("maxiter", 1000),
        omega=payload.get("omega", 1.0),
        backend=payload.get("backend"),
    )
    return {"x": x, "iterations": iterations, "final_residual": residual}


#: kind → handler for the kinds every service understands out of the box
BUILTIN_HANDLERS = {
    "compile": handle_compile,
    "solve_cg": handle_solve_cg,
    "solve_jacobi": handle_solve_jacobi,
}
