"""The multi-tenant compile-and-solve service.

:class:`CompileSolveService` is a long-running front end over the
compiler and solvers: an asyncio-friendly submission surface feeding a
bounded backlog drained by a pool of worker threads.  The request path:

1. **Admission** (caller's thread, microseconds): the
   :class:`~repro.service.admission.AdmissionController` sheds the
   request if the backlog is full or the tenant is over quota — the
   returned future resolves *immediately* with a ``"shed"`` /
   ``"rejected"`` response; nothing rejected ever occupies a worker.
2. **Queue** (bounded by admission): FIFO hand-off to the workers.  Each
   request carries a deadline; one that waited past it is answered
   ``"timed_out"`` at dequeue — stale work is dropped, not run.
3. **Handler** (worker thread): compile requests go through the shared
   :class:`~repro.compiler.plan_cache.PlanCache` single-flight, so any
   number of concurrent requests for one structural key pay for exactly
   one compilation; solves run the ordinary solver entry points whose
   SpMV compiles through the same cache.
4. **Response**: every request — served, shed, timed out, or failed —
   resolves its future with a :class:`ServiceResponse` carrying queue /
   handle / total latency splits, and is attributed end to end with a
   ``service.request`` span plus ``service.requests{kind,tenant,status}``
   and latency-histogram metrics.

Synchronous callers use :meth:`CompileSolveService.request` (or the
``compile`` / ``solve_cg`` / ``solve_jacobi`` wrappers); asyncio callers
``await`` :meth:`CompileSolveService.request_async` — thousands of
concurrent awaits multiplex onto the fixed worker pool.

    >>> with CompileSolveService(ServiceConfig(workers=4)) as svc:
    ...     resp = svc.solve_cg(A, b, tenant="alice")
    ...     assert resp.status == "ok"
    ...     x = resp.value["x"]
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.compiler.kernels import KERNEL_CACHE
from repro.compiler.plan_cache import PlanCache
from repro.errors import ServiceError
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace
from repro.runtime.schedule_cache import ScheduleCache
from repro.service.admission import AdmissionController, TenantQuota
from repro.service.handlers import BUILTIN_HANDLERS, ServiceContext

__all__ = ["ServiceConfig", "ServiceResponse", "CompileSolveService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance.

    ``plan_cache=None`` shares the process-global kernel cache
    (:data:`~repro.compiler.kernels.KERNEL_CACHE`) — the normal choice:
    tenants share *structure*, never data.  Pass a private
    :class:`PlanCache` for an isolated instance (tests do).
    """

    workers: int = 4
    max_queue: int = 1024
    #: seconds a request may wait in the queue before being dropped as
    #: ``"timed_out"``; None waits forever
    queue_timeout: float | None = 30.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    plan_cache: PlanCache | None = None
    schedule_cache: ScheduleCache | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_timeout is not None and self.queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive (or None)")


@dataclass
class ServiceResponse:
    """What every request resolves to — success or not, never an exception.

    ``status`` is one of ``"ok"``, ``"error"`` (handler raised; see
    ``error``), ``"shed"`` (queue full), ``"rejected"`` (tenant over
    quota), ``"timed_out"`` (waited past its deadline).  The latency
    split: ``queue_ms`` (admission → dequeue) + ``handle_ms`` (handler
    runtime) ≈ ``total_ms`` (admission → resolution).
    """

    request_id: int
    tenant: str
    kind: str
    status: str
    value: dict | None = None
    error: str | None = None
    queue_ms: float = 0.0
    handle_ms: float = 0.0
    total_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _PendingRequest:
    request_id: int
    kind: str
    tenant: str
    payload: dict
    future: Future
    t_submit: float
    deadline: float | None


class CompileSolveService:
    """Asyncio-friendly, thread-pooled compile-and-solve front end."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            default_quota=self.config.default_quota,
            quotas=self.config.quotas,
        )
        # explicit None check: an *empty* PlanCache is falsy (__len__ == 0)
        self.context = ServiceContext(
            plan_cache=(
                KERNEL_CACHE if self.config.plan_cache is None
                else self.config.plan_cache
            ),
            schedule_cache=self.config.schedule_cache,
        )
        self._handlers = dict(BUILTIN_HANDLERS)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count(1)
        self._state_lock = threading.Lock()
        self._started = False
        self._stopped = False
        #: response-status tallies, kept service-side so tests and the
        #: load generator need not enable the global metrics registry
        self._status_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CompileSolveService":
        with self._state_lock:
            if self._started:
                raise ServiceError("service already started")
            self._started = True
            for i in range(self.config.workers):
                t = threading.Thread(
                    target=self._worker, name=f"repro-service-{i}", daemon=True
                )
                t.start()
                self._threads.append(t)
        return self

    def stop(self) -> None:
        """Drain the backlog, then stop the workers (idempotent)."""
        with self._state_lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        for _ in self._threads:
            self._queue.put(None)  # one stop token per worker, after backlog
        for t in self._threads:
            t.join()

    def __enter__(self) -> "CompileSolveService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def register(self, kind: str, handler) -> None:
        """Add a custom request kind (``handler(payload, ctx) -> dict``)."""
        self._handlers[kind] = handler

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: dict,
        tenant: str = "default",
        timeout: float | None = None,
    ) -> Future:
        """Admit and enqueue one request; returns a future of the response.

        Admission failures resolve the future immediately (status
        ``"shed"`` / ``"rejected"``) — the only exceptions raised here are
        caller bugs: unknown ``kind`` or a stopped service.
        """
        if kind not in self._handlers:
            raise ServiceError(
                f"unknown request kind {kind!r}; have {sorted(self._handlers)}"
            )
        with self._state_lock:
            if self._stopped or not self._started:
                raise ServiceError("service is not running (start() it first)")
        rid = next(self._ids)
        fut: Future = Future()
        t0 = time.perf_counter()
        decision = self.admission.try_admit(tenant)
        if not decision.admitted:
            status = "shed" if decision.reason == "queue_full" else "rejected"
            self._resolve(
                fut,
                ServiceResponse(rid, tenant, kind, status),
                t0,
            )
            return fut
        window = timeout if timeout is not None else self.config.queue_timeout
        self._queue.put(
            _PendingRequest(
                request_id=rid,
                kind=kind,
                tenant=tenant,
                payload=payload,
                future=fut,
                t_submit=t0,
                deadline=None if window is None else t0 + window,
            )
        )
        return fut

    def request(self, kind: str, payload: dict, tenant: str = "default",
                timeout: float | None = None) -> ServiceResponse:
        """Synchronous round trip: submit and wait for the response."""
        return self.submit(kind, payload, tenant, timeout).result()

    async def request_async(self, kind: str, payload: dict,
                            tenant: str = "default",
                            timeout: float | None = None) -> ServiceResponse:
        """Awaitable round trip for asyncio front ends — any number of
        these multiplex onto the worker pool."""
        return await asyncio.wrap_future(self.submit(kind, payload, tenant, timeout))

    # convenience wrappers --------------------------------------------
    def compile(self, source, formats, tenant: str = "default", **opts) -> ServiceResponse:
        return self.request("compile", {"source": source, "formats": formats, **opts}, tenant)

    def solve_cg(self, A, b, tenant: str = "default", **opts) -> ServiceResponse:
        return self.request("solve_cg", {"A": A, "b": b, **opts}, tenant)

    def solve_jacobi(self, A, b, tenant: str = "default", **opts) -> ServiceResponse:
        return self.request("solve_jacobi", {"A": A, "b": b, **opts}, tenant)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self.admission.dequeued()
            t_dequeue = time.perf_counter()
            queue_ms = (t_dequeue - item.t_submit) * 1e3
            try:
                if item.deadline is not None and t_dequeue > item.deadline:
                    resp = ServiceResponse(
                        item.request_id, item.tenant, item.kind,
                        "timed_out", queue_ms=queue_ms,
                    )
                else:
                    resp = self._handle(item, queue_ms)
            finally:
                self.admission.finished(item.tenant)
            self._resolve(item.future, resp, item.t_submit)

    def _handle(self, item: _PendingRequest, queue_ms: float) -> ServiceResponse:
        handler = self._handlers[item.kind]
        with _trace.span(
            "service.request",
            request_id=item.request_id,
            kind=item.kind,
            tenant=item.tenant,
        ) as sp:
            t0 = time.perf_counter()
            try:
                value = handler(item.payload, self.context)
                status, error = "ok", None
            except Exception as exc:  # handler failure = request failure,
                value = None          # never a worker death
                status, error = "error", f"{type(exc).__name__}: {exc}"
            handle_ms = (time.perf_counter() - t0) * 1e3
            sp.set(status=status, queue_ms=round(queue_ms, 3))
            if status == "ok" and isinstance(value, dict) and "outcome" in value:
                sp.set(cache_outcome=value["outcome"])
        return ServiceResponse(
            item.request_id, item.tenant, item.kind, status,
            value=value, error=error, queue_ms=queue_ms, handle_ms=handle_ms,
        )

    def _resolve(self, fut: Future, resp: ServiceResponse, t_submit: float) -> None:
        resp.total_ms = (time.perf_counter() - t_submit) * 1e3
        with self._state_lock:
            self._status_counts[resp.status] = (
                self._status_counts.get(resp.status, 0) + 1
            )
        _metrics.record(
            "service.requests", kind=resp.kind, tenant=resp.tenant,
            status=resp.status,
        )
        _metrics.observe("service.total_ms", resp.total_ms, kind=resp.kind)
        if resp.status in ("ok", "error"):
            _metrics.observe("service.queue_ms", resp.queue_ms, kind=resp.kind)
            _metrics.observe("service.handle_ms", resp.handle_ms, kind=resp.kind)
        fut.set_result(resp)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service-side snapshot: response-status tallies, backlog, and
        the shared plan-cache counters."""
        with self._state_lock:
            counts = dict(self._status_counts)
        return {
            "responses": counts,
            "queue_depth": self.admission.queue_depth(),
            "inflight": self.admission.inflight(),
            "plan_cache": self.context.plan_cache.stats(),
        }
