"""Iterative solvers built on the compiled sparse kernels.

The paper's driving application (Sec. 4): a parallel Conjugate Gradient
solver with diagonal (Jacobi) preconditioning.  Provided here:

* :func:`~repro.solvers.cg.cg` — sequential preconditioned CG over any
  matrix format (SpMV through the compiler),
* :func:`~repro.solvers.cg.parallel_cg` — the SPMD version on the
  simulated machine, parameterized by the executor strategy
  (``blocksolve`` / ``mixed`` / ``global``),
* :func:`~repro.solvers.jacobi.jacobi` — plain Jacobi iteration,
* :func:`~repro.solvers.power.power_iteration` — dominant eigenpair
  (an extra consumer of the compiled SpMV).
"""

from repro.solvers.cg import CGResult, cg, parallel_cg
from repro.solvers.ilu import ilu0, ilu_preconditioned_cg, solve_lower, solve_upper
from repro.solvers.jacobi import jacobi
from repro.solvers.power import power_iteration

__all__ = [
    "cg",
    "parallel_cg",
    "CGResult",
    "jacobi",
    "power_iteration",
    "ilu0",
    "solve_lower",
    "solve_upper",
    "ilu_preconditioned_cg",
]
