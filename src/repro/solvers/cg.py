"""Conjugate Gradient with diagonal preconditioning (paper Sec. 4).

Sequential :func:`cg` accepts any matrix format (the SpMV is produced by
the compiler) or a plain callable.  :func:`parallel_cg` runs the SPMD
version on a simulated :class:`~repro.runtime.machine.Machine`, following
the inspector/executor split the paper measures: the setup phase builds the
communication schedule once; each iteration does one ghost exchange, one
local SpMV, and two scalar allreduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.formats.base import Format
from repro.formats.blocksolve import BlockSolveMatrix
from repro.kernels.spmv import spmv
from repro.parallel.fragment import partition_rows
from repro.parallel.spmd_blocksolve import (
    BernoulliGlobalBS,
    BernoulliMixedBS,
    BlockSolveSpMV,
)
from repro.parallel.spmd_spmv import GlobalSpMV, MixedSpMV
from repro.runtime.machine import Machine, RunStats

__all__ = ["CGResult", "cg", "parallel_cg"]


@dataclass
class CGResult:
    """Solution and convergence record of a CG run."""

    x: np.ndarray
    iterations: int
    residuals: list[float]
    converged: bool
    stats: RunStats | None = None  # parallel runs only

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")


def _as_matvec(A, backend: str | None = None):
    if isinstance(A, Format):
        # one compile per solve; every iteration after that is a plan-cache
        # hit (the cache key sees the same nest, specs and predicates)
        return lambda v: spmv(A, v, backend=backend)
    if callable(A):
        return A
    raise ReproError(f"cannot use {type(A).__name__} as an operator")


def cg(
    A,
    b: np.ndarray,
    diag: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int | None = None,
    x0: np.ndarray | None = None,
    backend: str | None = None,
) -> CGResult:
    """Preconditioned CG for SPD systems.

    ``A`` is any matrix format or a matvec callable; ``diag`` the
    preconditioner diagonal (defaults to ones: unpreconditioned);
    ``backend`` the executor backend the SpMV compiles through.
    Iterates until ||r|| <= tol·||b|| or ``maxiter``.
    """
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    matvec = _as_matvec(A, backend)
    dinv = 1.0 / np.asarray(diag) if diag is not None else np.ones(n)
    if not np.all(np.isfinite(dinv)):
        raise ReproError("preconditioner diagonal contains zeros")
    maxiter = maxiter if maxiter is not None else 10 * n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - (matvec(x) if x.any() else np.zeros(n))
    z = dinv * r
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    residuals = [float(np.linalg.norm(r))]
    converged = residuals[-1] <= tol * bnorm
    it = 0
    while not converged and it < maxiter:
        q = matvec(p)
        pq = float(p @ q)
        if pq <= 0:
            raise ReproError("matrix is not positive definite (pᵀAp <= 0)")
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = dinv * r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        it += 1
        residuals.append(float(np.linalg.norm(r)))
        converged = residuals[-1] <= tol * bnorm
    return CGResult(x, it, residuals, converged)


# ----------------------------------------------------------------------
# parallel CG
# ----------------------------------------------------------------------
def _rank_cg(strategy, blocal, dlocal, niter, tol, coalesce=True):
    """SPMD rank program: inspector phase, then ``niter`` PCG iterations.

    Global dot products are allreduces over local partial sums; the
    residual history is identical on all ranks.  With ``coalesce`` the
    independent scalar reductions of each stage ride one array allreduce
    (one α charge instead of two or three); the machine folds arrays
    elementwise in the same rank order it folds scalars, so the sums —
    and hence the iterates — are bitwise identical either way.  The p·q
    reduction cannot join them: α depends on it before r (and thus the
    next pair) exists.
    """
    yield ("phase", "inspector")
    yield from strategy.setup()
    yield ("phase", "executor")
    nloc = len(blocal)
    dinv = 1.0 / dlocal if len(dlocal) else dlocal
    x = np.zeros(nloc)
    r = blocal.copy()
    z = dinv * r
    p = z.copy()
    if coalesce:
        rz, b2, rr = (
            yield (
                "allreduce",
                np.array([float(r @ z), float(blocal @ blocal), float(r @ r)]),
            )
        )
        rz, b2 = float(rz), float(b2)
    else:
        rz = yield ("allreduce", float(r @ z))
        b2 = yield ("allreduce", float(blocal @ blocal))
        rr = yield ("allreduce", float(r @ r))
    bnorm = np.sqrt(b2) or 1.0
    residuals = [float(np.sqrt(rr))]
    it = 0
    converged = residuals[-1] <= tol * bnorm
    while it < niter and not converged:
        q = yield from strategy.step(p)
        pq = yield ("allreduce", float(p @ q))
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = dinv * r
        if coalesce:
            rz_new, rr = (
                yield ("allreduce", np.array([float(r @ z), float(r @ r)]))
            )
            rz_new = float(rz_new)
        else:
            rz_new = yield ("allreduce", float(r @ z))
            rr = yield ("allreduce", float(r @ r))
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        it += 1
        residuals.append(float(np.sqrt(rr)))
        converged = residuals[-1] <= tol * bnorm
    return x, it, residuals, converged


def parallel_cg(
    A,
    b: np.ndarray,
    nprocs: int,
    variant: str = "mixed",
    niter: int = 10,
    tol: float = 0.0,
    dist=None,
    faults=None,
    delivery=None,
    overlap: bool = True,
    coalesce: bool = True,
    schedule_cache=None,
    model=None,
) -> CGResult:
    """SPMD preconditioned CG on the simulated machine.

    ``variant`` selects the executor strategy:

    * ``"blocksolve"``, ``"mixed-bs"``, ``"global-bs"`` — the Table-2 trio
      over BlockSolve structures (hand-written library / compiled mixed
      spec / compiled fully-global spec); ``A`` may be COO (converted) or
      a prebuilt :class:`BlockSolveMatrix`; the system is solved in the
      reordered space and mapped back,
    * ``"mixed"``, ``"global"`` — the CRS-fragment Bernoulli variants for
      general matrices; ``dist`` defaults to a block row distribution.

    ``niter`` bounds the iterations (the paper runs exactly 10); set
    ``tol > 0`` to also stop on convergence.

    ``faults`` (a :class:`~repro.runtime.faults.FaultPlan`) and
    ``delivery`` (a :class:`~repro.runtime.faults.DeliveryConfig`) run the
    solve under the fault-injecting delivery layer: the result either
    matches the fault-free solve bit-for-bit or the call raises
    :class:`~repro.errors.CommFailureError`.

    ``overlap``, ``coalesce`` and ``schedule_cache`` are the executor
    communication knobs (see :class:`~repro.runtime.comm.CommOptions`);
    all three leave the computed iterates bitwise unchanged.  ``model``
    overrides the machine's α–β :class:`~repro.runtime.machine.CommModel`.
    """
    from repro.distribution.block import BlockDistribution
    from repro.distribution.multiblock import MultiBlockDistribution
    from repro.runtime.comm import CommOptions

    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    machine = Machine(nprocs, faults=faults, delivery=delivery, model=model)
    opts = CommOptions(
        overlap=overlap, coalesce=coalesce, schedule_cache=schedule_cache
    )

    bs_variants = {
        "blocksolve": BlockSolveSpMV,
        "mixed-bs": BernoulliMixedBS,
        "global-bs": BernoulliGlobalBS,
    }
    if variant in bs_variants:
        bs = A if isinstance(A, BlockSolveMatrix) else BlockSolveMatrix.from_coo(A)
        dist = dist or MultiBlockDistribution.from_color_classes(
            bs.clique_ptr, bs.colors, nprocs
        )
        # solve the reordered system A' x' = b' with b'[new] = b[old]
        bprime = np.empty(n)
        bprime[bs.perm.perm] = b
        coo_diag = bs.to_coo().diagonal()
        dprime = np.empty(n)
        dprime[bs.perm.perm] = coo_diag
        cls_bs = bs_variants[variant]
        strategies = [cls_bs(p, dist, bs, opts=opts) for p in range(nprocs)]

        def make(p):
            mine = dist.owned_by(p)
            return _rank_cg(
                strategies[p], bprime[mine], dprime[mine], niter, tol,
                coalesce=coalesce,
            )

        results, stats = machine.run(make)
        xprime = np.zeros(n)
        for p in range(nprocs):
            xprime[dist.owned_by(p)] = results[p][0]
        x = xprime[bs.perm.perm]  # x[old] = x'[new]
    else:
        if variant not in ("mixed", "global"):
            raise ReproError(f"unknown parallel CG variant {variant!r}")
        coo = A.to_coo() if isinstance(A, Format) else A
        dist = dist or BlockDistribution(n, nprocs)
        frags = partition_rows(coo, dist)
        diag = coo.diagonal()
        cls = MixedSpMV if variant == "mixed" else GlobalSpMV

        def make(p):
            strat = cls(p, dist, frags[p], opts=opts)
            mine = dist.owned_by(p)
            return _rank_cg(strat, b[mine], diag[mine], niter, tol, coalesce=coalesce)

        results, stats = machine.run(make)
        x = np.zeros(n)
        for p in range(nprocs):
            x[dist.owned_by(p)] = results[p][0]

    it = results[0][1]
    residuals = results[0][2]
    converged = results[0][3]
    return CGResult(x, it, residuals, converged, stats=stats)
