"""ILU(0)/IC(0) incomplete factorization and sparse triangular solves.

The paper closes with "we are currently investigating how our techniques
can be used in the automatic generation of high-performance codes for such
operations as matrix factorizations (full and incomplete) and triangular
linear system solution" (Sec. 6).  Factorization and triangular solves
carry loop dependences, so they sit outside the DOANY compiler; here they
are *library* routines over the CRS format — the preconditioner side of
the iterative solvers the compiler serves.

* :func:`ilu0` — incomplete LU with zero fill-in: L and U share A's
  sparsity pattern (IKJ Gaussian elimination restricted to stored
  entries),
* :func:`solve_lower` / :func:`solve_upper` — sparse triangular solves,
* :func:`ilu_preconditioned_cg` — PCG with the ILU(0) preconditioner
  (equivalent to IC(0) preconditioning for SPD inputs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.formats.crs import CRSMatrix
from repro.solvers.cg import CGResult, cg

__all__ = ["ilu0", "solve_lower", "solve_upper", "ilu_preconditioned_cg"]


def ilu0(A: CRSMatrix) -> tuple[CRSMatrix, CRSMatrix]:
    """ILU(0): A ≈ L·U with no fill beyond A's pattern.

    Returns (L, U): L unit-lower-triangular (unit diagonal stored), U
    upper triangular.  Raises on a zero pivot (shift the matrix or use a
    different preconditioner).
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ReproError("ILU(0) requires a square matrix")
    # working copy of the values, IKJ variant over the fixed pattern
    rowptr, colind = A.rowptr, A.colind
    vals = A.vals.copy()
    diag_pos = np.empty(n, dtype=np.int64)
    for i in range(n):
        cols, _ = A.row_slice(i)
        k = np.searchsorted(cols, i)
        if k >= len(cols) or cols[k] != i:
            raise ReproError(f"ILU(0) needs a stored diagonal; row {i} has none")
        diag_pos[i] = rowptr[i] + k

    for i in range(1, n):
        s, e = int(rowptr[i]), int(rowptr[i + 1])
        row_cols = colind[s:e]
        # eliminate entries left of the diagonal
        for p in range(s, e):
            k = int(colind[p])
            if k >= i:
                break
            piv = vals[diag_pos[k]]
            if piv == 0.0:
                raise ReproError(f"zero pivot at row {k} during ILU(0)")
            lik = vals[p] / piv
            vals[p] = lik
            # subtract lik * U[k, j] for j in the intersection of patterns
            ks, ke = int(diag_pos[k]) + 1, int(rowptr[k + 1])
            if ks >= ke:
                continue
            u_cols = colind[ks:ke]
            # positions of u_cols inside row i's pattern (no fill-in)
            pos = s + np.searchsorted(row_cols, u_cols)
            ok = (pos < e) & (colind[np.minimum(pos, e - 1)] == u_cols)
            vals[pos[ok]] -= lik * vals[ks:ke][ok]
        if vals[diag_pos[i]] == 0.0:
            raise ReproError(f"zero pivot at row {i} during ILU(0)")

    # split into L (unit diagonal) and U
    lr, lc, lv = [], [], []
    ur, uc, uv = [], [], []
    for i in range(n):
        s, e = int(rowptr[i]), int(rowptr[i + 1])
        for p in range(s, e):
            j = int(colind[p])
            if j < i:
                lr.append(i), lc.append(j), lv.append(vals[p])
            else:
                ur.append(i), uc.append(j), uv.append(vals[p])
        lr.append(i), lc.append(i), lv.append(1.0)
    from repro.formats.coo import COOMatrix

    L = CRSMatrix.from_coo(COOMatrix.from_entries((n, n), lr, lc, lv))
    U = CRSMatrix.from_coo(COOMatrix.from_entries((n, n), ur, uc, uv))
    return L, U


def solve_lower(L: CRSMatrix, b: np.ndarray, unit_diagonal: bool = True) -> np.ndarray:
    """Forward substitution L·x = b (L lower triangular, rows sorted)."""
    n = L.shape[0]
    x = np.array(b, dtype=np.float64)
    for i in range(n):
        cols, vals = L.row_slice(i)
        below = cols < i
        if below.any():
            x[i] -= vals[below] @ x[cols[below]]
        if not unit_diagonal:
            d = vals[cols == i]
            if len(d) != 1 or d[0] == 0.0:
                raise ReproError(f"missing/zero diagonal in lower solve at row {i}")
            x[i] /= d[0]
    return x


def solve_upper(U: CRSMatrix, b: np.ndarray) -> np.ndarray:
    """Backward substitution U·x = b (U upper triangular, stored diagonal)."""
    n = U.shape[0]
    x = np.array(b, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        cols, vals = U.row_slice(i)
        above = cols > i
        if above.any():
            x[i] -= vals[above] @ x[cols[above]]
        d = vals[cols == i]
        if len(d) != 1 or d[0] == 0.0:
            raise ReproError(f"missing/zero diagonal in upper solve at row {i}")
        x[i] /= d[0]
    return x


def ilu_preconditioned_cg(
    A: CRSMatrix, b: np.ndarray, tol: float = 1e-8, maxiter: int | None = None
) -> CGResult:
    """PCG with M = (L·U)⁻¹ from ILU(0).

    For SPD inputs ILU(0) coincides with IC(0) up to scaling, so CG's
    theory applies; the preconditioner solve is two sparse triangular
    substitutions per iteration.
    """
    L, U = ilu0(A)

    def apply_minv(r: np.ndarray) -> np.ndarray:
        return solve_upper(U, solve_lower(L, r))

    # reuse the cg() driver with a preconditioner callable via the diag
    # hook generalized: inline a tailored loop instead
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    maxiter = maxiter if maxiter is not None else 10 * n
    from repro.kernels.spmv import spmv

    x = np.zeros(n)
    r = b.copy()
    z = apply_minv(r)
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    residuals = [float(np.linalg.norm(r))]
    converged = residuals[-1] <= tol * bnorm
    it = 0
    while not converged and it < maxiter:
        q = spmv(A, p)
        pq = float(p @ q)
        if pq <= 0:
            raise ReproError("matrix is not positive definite (pᵀAp <= 0)")
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = apply_minv(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        it += 1
        residuals.append(float(np.linalg.norm(r)))
        converged = residuals[-1] <= tol * bnorm
    return CGResult(x, it, residuals, converged)
