"""Jacobi iteration: x ← D⁻¹(b − (A − D)x).

A second consumer of the compiled SpMV, and the building block of the
paper's "diagonal preconditioning".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.formats.base import Format
from repro.kernels.spmv import spmv

__all__ = ["jacobi"]


def jacobi(
    A: Format,
    b,
    tol: float = 1e-8,
    maxiter: int = 1000,
    omega: float = 1.0,
    backend: str | None = None,
):
    """(Weighted) Jacobi solve; returns (x, iterations, final_residual).

    Requires a nonzero diagonal; convergence needs the usual spectral
    condition (diagonal dominance suffices).  ``backend`` selects the
    executor backend the SpMV compiles through.
    """
    b = np.asarray(b, dtype=np.float64)
    diag = A.to_coo().diagonal()
    if np.any(diag == 0):
        raise ReproError("Jacobi requires a nonzero diagonal")
    dinv = 1.0 / diag
    x = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    res = float("inf")
    for it in range(1, maxiter + 1):
        r = b - spmv(A, x, backend=backend)
        res = float(np.linalg.norm(r))
        if res <= tol * bnorm:
            return x, it - 1, res
        x = x + omega * dinv * r
    return x, maxiter, res
