"""Power iteration for the dominant eigenpair (compiled-SpMV consumer)."""

from __future__ import annotations

import numpy as np

from repro.formats.base import Format
from repro.kernels.spmv import spmv

__all__ = ["power_iteration"]


def power_iteration(A: Format, tol: float = 1e-10, maxiter: int = 2000, rng=None):
    """Dominant eigenvalue/eigenvector of a square matrix.

    Returns (eigenvalue, eigenvector, iterations).  Deterministic given
    ``rng``.
    """
    n = A.shape[0]
    r = np.random.default_rng(rng)
    v = r.standard_normal(n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for it in range(1, maxiter + 1):
        w = spmv(A, v)
        norm = np.linalg.norm(w)
        if norm == 0:
            return 0.0, v, it
        v_new = w / norm
        lam_new = float(v_new @ spmv(A, v_new))
        if abs(lam_new - lam) <= tol * max(1.0, abs(lam_new)):
            return lam_new, v_new, it
        lam, v = lam_new, v_new
    return lam, v, maxiter
