"""Source locations shared by the parser and the analysis passes.

A :class:`SourceSpan` is a half-open character-offset range into one
source string.  Parser errors (:class:`~repro.errors.ParseError`) and
analyzer diagnostics (:mod:`repro.analysis.diagnostics`) both carry spans
and render them through :func:`caret_snippet`, so every tool that points
at mini-language source points the same way::

    line 1, column 20
        for i in 0:n { Y[i] = Y[j] }
                           ^^^^
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SourceSpan", "line_col", "caret_snippet"]


@dataclass(frozen=True)
class SourceSpan:
    """Half-open ``[start, end)`` character range into a source string."""

    start: int
    end: int

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def merge(self, other: "SourceSpan | None") -> "SourceSpan":
        """Smallest span covering both (``other`` may be None)."""
        if other is None:
            return self
        return SourceSpan(min(self.start, other.start), max(self.end, other.end))


def line_col(source: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of a character offset into ``source``."""
    offset = max(0, min(offset, len(source)))
    line = source.count("\n", 0, offset) + 1
    bol = source.rfind("\n", 0, offset) + 1
    return line, offset - bol + 1


def caret_snippet(source: str, span: SourceSpan, indent: str = "    ") -> str:
    """Render the span's source line with a caret underline.

    Multi-line spans underline to the end of the first line.  The header
    line (``line L, column C``) comes first so the snippet can be appended
    verbatim to an error message.
    """
    line, col = line_col(source, span.start)
    bol = source.rfind("\n", 0, span.start) + 1
    eol = source.find("\n", bol)
    if eol < 0:
        eol = len(source)
    text = source[bol:eol]
    width = max(1, min(span.end, eol) - span.start)
    underline = " " * (col - 1) + "^" * width
    return (
        f"line {line}, column {col}\n"
        f"{indent}{text}\n"
        f"{indent}{underline}"
    )
