"""CLI front end: exit codes, kernel discovery, JSON artifact."""

import json

import pytest

from repro.analysis.__main__ import main


def test_list_exits_zero_and_names_all_passes(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("contracts", "doany", "lint", "schedule"):
        assert name in out


def test_all_formats_sweep_is_clean(capsys):
    assert main(["--all-formats"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_example_kernels_lint_clean(capsys):
    # the shipped examples must stay warning-tolerable and error-free
    assert main(["--kernels", "examples/kernels"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_single_pass_selection(capsys):
    assert main(["--passes", "lint"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_unknown_pass_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as e:
        main(["--passes", "nonsense"])
    assert e.value.code == 2
    assert "unknown pass" in capsys.readouterr().err


def test_no_action_is_a_usage_error():
    with pytest.raises(SystemExit):
        main([])


def test_unparseable_kernel_is_ber001_and_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.loop"
    bad.write_text("for i in { nonsense")
    assert main(["--kernels", str(bad)]) == 1
    assert "BER001" in capsys.readouterr().out


def test_racy_kernel_fails_with_doany_code(tmp_path, capsys):
    racy = tmp_path / "racy.loop"
    racy.write_text("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * Y[j] } }")
    assert main(["--kernels", str(racy)]) == 1
    assert "BER012" in capsys.readouterr().out


def test_json_artifact_round_trips(tmp_path, capsys):
    out_file = tmp_path / "diag.json"
    assert main(["--kernels", "examples/kernels", "--json", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert isinstance(doc["diagnostics"], list)
    assert doc["summary"]["errors"] == 0
    assert all(d["code"].startswith("BER") for d in doc["diagnostics"])


def test_directory_discovery_recurses(tmp_path, capsys):
    sub = tmp_path / "nested" / "deeper"
    sub.mkdir(parents=True)
    (sub / "ok.loop").write_text("for i in 0:n { Y[i] += X[i] }")
    assert main(["--kernels", str(tmp_path)]) == 0
