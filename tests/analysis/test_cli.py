"""CLI front end: exit codes, kernel discovery, JSON artifact."""

import json

import pytest

from repro.analysis.__main__ import main


def test_list_exits_zero_and_names_all_passes(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("contracts", "doany", "lint", "schedule"):
        assert name in out


def test_all_formats_sweep_is_clean(capsys):
    assert main(["--all-formats"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_example_kernels_lint_clean(capsys):
    # the shipped examples must stay warning-tolerable and error-free
    assert main(["--kernels", "examples/kernels"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_single_pass_selection(capsys):
    assert main(["--passes", "lint"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_unknown_pass_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as e:
        main(["--passes", "nonsense"])
    assert e.value.code == 2
    assert "unknown pass" in capsys.readouterr().err


def test_no_action_is_a_usage_error():
    with pytest.raises(SystemExit):
        main([])


def test_unparseable_kernel_is_ber001_and_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.loop"
    bad.write_text("for i in { nonsense")
    assert main(["--kernels", str(bad)]) == 1
    assert "BER001" in capsys.readouterr().out


def test_racy_kernel_fails_with_doany_code(tmp_path, capsys):
    racy = tmp_path / "racy.loop"
    racy.write_text("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * Y[j] } }")
    assert main(["--kernels", str(racy)]) == 1
    assert "BER012" in capsys.readouterr().out


def test_json_artifact_round_trips(tmp_path, capsys):
    out_file = tmp_path / "diag.json"
    assert main(["--kernels", "examples/kernels", "--json", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert isinstance(doc["diagnostics"], list)
    assert doc["summary"]["errors"] == 0
    assert all(d["code"].startswith("BER") for d in doc["diagnostics"])


def test_directory_discovery_recurses(tmp_path, capsys):
    sub = tmp_path / "nested" / "deeper"
    sub.mkdir(parents=True)
    (sub / "ok.loop").write_text("for i in 0:n { Y[i] += X[i] }")
    assert main(["--kernels", str(tmp_path)]) == 0


def test_structure_pass_is_listed(capsys):
    assert main(["--list"]) == 0
    assert "structure" in capsys.readouterr().out


def test_json_records_executed_pass_names(tmp_path):
    out_file = tmp_path / "diag.json"
    assert main(["--passes", "doany,lint", "--json", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["passes"] == ["doany", "lint"]


def test_all_plus_passes_validates_names_instead_of_skipping(capsys):
    """Regression: --all used to shadow --passes entirely, so a typo in
    --passes was silently ignored whenever --all was present."""
    with pytest.raises(SystemExit) as e:
        main(["--all", "--passes", "nonsense"])
    assert e.value.code == 2
    assert "unknown pass" in capsys.readouterr().err


def test_all_plus_passes_runs_each_pass_once(tmp_path):
    out_file = tmp_path / "diag.json"
    assert main(["--all", "--passes", "doany", "--json", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["passes"].count("doany") == 1
    assert "structure" in doc["passes"]


def _write_band_mtx(path, n=40):
    import numpy as np

    from repro.formats import COOMatrix
    from repro.matrices.mmio import write_matrix_market

    i = np.arange(n)
    coo = COOMatrix.from_entries(
        (n, n),
        np.concatenate([i, i[:-1]]),
        np.concatenate([i, i[1:]]),
        np.ones(2 * n - 1),
    )
    write_matrix_market(coo, str(path))


def test_structure_flag_profiles_matrix_market_file(tmp_path, capsys):
    mtx = tmp_path / "band.mtx"
    _write_band_mtx(mtx)
    assert main(["--structure", str(mtx), "--min-severity", "info"]) == 0
    out = capsys.readouterr().out
    assert "BER050" in out
    assert "banded" in out


def test_structure_flag_json_includes_recommendation(tmp_path):
    mtx = tmp_path / "band.mtx"
    _write_band_mtx(mtx)
    out_file = tmp_path / "diag.json"
    assert main(["--structure", str(mtx), "--json", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert "structure-files" in doc["passes"]
    codes = {d["code"] for d in doc["diagnostics"]}
    assert "BER050" in codes


def test_structure_flag_missing_file_is_ber001_exit_one(tmp_path, capsys):
    assert main(["--structure", str(tmp_path / "nope.mtx")]) == 1
    assert "BER001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# --depend: parallelism-lattice classification with certificates
# ----------------------------------------------------------------------
def test_depend_classifies_examples_and_exits_zero(capsys):
    assert main(["--depend", "examples/kernels"]) == 0
    out = capsys.readouterr().out
    assert "rowprod.loop: REDUCTION(*)" in out
    assert "rowmin.loop: REDUCTION(min)" in out
    assert "colmax.loop: REDUCTION(max)" in out
    assert "gauss_seidel.loop: SEQUENTIAL" in out
    assert "spmv.loop: DOANY" in out


def test_depend_json_carries_certificate_payload(tmp_path, capsys):
    art = tmp_path / "certs.json"
    assert main(["--depend", "examples/kernels/rowprod.loop", "--json", str(art)]) == 0
    doc = json.loads(art.read_text())
    certs = doc["certificates"]
    [cert] = certs.values()
    assert cert["verdict"] == {"kind": "REDUCTION", "op": "*"}
    assert cert["version"] == 1 and cert["fingerprint"]
    j = next(l for l in cert["loops"] if l["var"] == "j")
    assert j["verdict"]["kind"] == "REDUCTION"
    assert any(e["kind"] == "commutes" for e in j["evidence"])


def test_depend_sequential_witness_is_warn_not_error(tmp_path, capsys):
    seq = tmp_path / "seq.loop"
    seq.write_text("for i in 0:n { for j in 0:n { X[i] = X[i] - A[i,j] * X[j] } }")
    assert main(["--depend", str(seq)]) == 0  # classification, not a gate
    out = capsys.readouterr().out
    assert "SEQUENTIAL" in out and "BER062 warn" in out


def test_declared_sequential_kernel_keeps_kernels_sweep_green(tmp_path, capsys):
    k = tmp_path / "gs.loop"
    k.write_text(
        "# depend: sequential\n"
        "for i in 0:n { for j in 0:n { X[i] = X[i] - A[i,j] * X[j] } }\n"
    )
    assert main(["--kernels", str(k)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_stale_sequential_directive_is_an_error(tmp_path, capsys):
    k = tmp_path / "fine.loop"
    k.write_text(
        "# depend: sequential\n"
        "for i in 0:n { Y[i] += X[i] }\n"
    )
    assert main(["--kernels", str(k)]) == 1
    assert "stale directive" in capsys.readouterr().out
