"""Format-contract auditor: real formats verify, mislabeled ones are caught."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    audit_format,
    audit_registered_formats,
    default_probes,
)
from repro.formats import FORMAT_NAMES
from repro.formats.crs import CRSMatrix
from repro.formats.jdiag import JaggedDiagonalMatrix
from repro.formats.sparse_vector import SparseVector


def codes(report):
    return sorted({d.code for d in report.errors()})


# ----------------------------------------------------------------------
# the registered formats all hold their contracts
# ----------------------------------------------------------------------
def test_all_registered_formats_audit_clean():
    report = audit_registered_formats()
    assert report.ok, report.render("error")
    # one clean/skip info per registered format
    assert len(report.by_code("BER028")) >= len(FORMAT_NAMES)


def test_single_format_audit_is_clean(paper_matrix):
    fmt = CRSMatrix.from_coo(paper_matrix)
    assert audit_format(fmt).ok


def test_vector_formats_audit_clean():
    vec = SparseVector.from_dense(np.array([0.0, 2.0, 0.0, -1.0, 0.0]))
    assert audit_format(vec, name="X").ok


# ----------------------------------------------------------------------
# seeded defects
# ----------------------------------------------------------------------
def _with_level_override(cls, level_index, **overrides):
    """Subclass ``cls`` replacing one level's claimed properties."""

    class Doctored(cls):
        def levels(self):
            base = list(super().levels())
            lied = base[level_index].__class__.__new__(
                base[level_index].__class__
            )
            lied.__dict__.update(base[level_index].__dict__)
            for k, v in overrides.items():
                setattr(lied, k, v)
            base[level_index] = lied
            return tuple(base)

    return Doctored


def test_mislabeled_sorted_level_is_caught(paper_matrix):
    # JDiag's run level really enumerates in jagged-diagonal order; a
    # format that *claims* sorted_enum=True there must be caught — the
    # planner would otherwise ride merge joins on an unsorted stream
    Lying = _with_level_override(JaggedDiagonalMatrix, 1, sorted_enum=True)
    rep = audit_format(Lying.from_coo(default_probes()[0]))
    assert "BER023" in codes(rep)


def test_false_dense_claim_is_caught(paper_matrix):
    Lying = _with_level_override(CRSMatrix, 1, dense=True)
    rep = audit_format(Lying.from_coo(paper_matrix))
    assert "BER026" in codes(rep)


def test_corrupt_values_disagree_with_to_dense(paper_matrix):
    fmt = CRSMatrix.from_coo(paper_matrix)

    class Corrupt(CRSMatrix):
        def to_dense(self):
            d = super().to_dense()
            d[d != 0] += 1.0
            return d

    bad = Corrupt(fmt.shape, fmt.rowptr, fmt.colind, fmt.vals)
    rep = audit_format(bad)
    assert "BER027" in codes(rep)


def test_broken_search_is_caught(paper_matrix):
    fmt = CRSMatrix.from_coo(paper_matrix)

    class BrokenFind(CRSMatrix):
        def storage(self, prefix):
            d = super().storage(prefix)
            real = d[f"{prefix}_find_colind"]
            # off-by-one: misses every stored column's true position
            d[f"{prefix}_find_colind"] = lambda i, j: real(i, j + 1)
            return d

    bad = BrokenFind(fmt.shape, fmt.rowptr, fmt.colind, fmt.vals)
    rep = audit_format(bad)
    assert "BER025" in codes(rep)


def test_binds_not_covering_axes_is_caught(paper_matrix):
    Lying = _with_level_override(CRSMatrix, 1, binds=())
    rep = audit_format(Lying.from_coo(paper_matrix))
    assert "BER020" in codes(rep)


def test_unscoped_storage_key_is_caught(paper_matrix):
    fmt = CRSMatrix.from_coo(paper_matrix)

    class Unscoped(CRSMatrix):
        def storage(self, prefix):
            d = super().storage(prefix)
            d["global_scratch"] = np.zeros(1)
            return d

    bad = Unscoped(fmt.shape, fmt.rowptr, fmt.colind, fmt.vals)
    rep = audit_format(bad)
    assert "BER022" in codes(rep)


def test_duplicate_entries_are_caught():
    from repro.formats.coo import COOMatrix

    # bypass canonicalization: the same coordinate stored twice
    dup = COOMatrix(
        (3, 3),
        np.array([0, 0, 1]),
        np.array([1, 1, 2]),
        np.array([1.0, 2.0, 3.0]),
    )
    rep = audit_format(dup)
    assert "BER024" in codes(rep)


def test_composite_format_is_skipped_not_failed():
    from repro.formats.blocksolve import BlockSolveMatrix
    from repro.matrices import fem_matrix

    bs = BlockSolveMatrix.from_coo(fem_matrix(points=8, dof=1, rng=0))
    rep = audit_format(bs)
    assert rep.ok
    assert [d.code for d in rep.infos()] == ["BER028"]


def test_unknown_format_name_raises():
    from repro.errors import FormatError

    with pytest.raises(FormatError, match="unknown format"):
        audit_registered_formats(names=["NotAFormat"])
