"""Dependence & reduction analyzer: lattice, certificates, self-check,
and the compile-path unlock (BER060-066)."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.depend import (
    DOALL,
    DOANY,
    REDUCTION,
    SEQUENTIAL,
    ParallelismCertificate,
    Verdict,
    check_certificate,
    classify_source,
    program_fingerprint,
    run_depend_selfcheck,
)
from repro.compiler import clear_kernel_cache, compile_kernel
from repro.compiler.parser import parse
from repro.compiler.reference import run_reference
from repro.errors import VerificationError
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseVector

SPMV = "for i in 0:n { for j in 0:m { Y[i] += A[i,j] * X[j] } }"
ENTRYWISE = "for i in 0:n { for j in 0:m { C[i,j] = A[i,j] * B[i,j] } }"
ROWPROD = "for i in 0:n { for j in 0:m { Y[i] = Y[i] * A[i,j] } }"
ROWMIN = "for i in 0:n { for j in 0:m { M[i] = min(M[i], A[i,j]) } }"
GAUSS_SEIDEL = "for i in 0:n { for j in 0:n { X[i] = X[i] - A[i,j] * X[j] } }"


def _crs(n=4, seed=0):
    rng = np.random.default_rng(seed)
    d = (rng.random((n, n)) < 0.7) * rng.choice([-2.0, -1.0, 1.0, 2.0], (n, n))
    return CRSMatrix.from_coo(COOMatrix.from_dense(d))


# ----------------------------------------------------------------------
# the lattice
# ----------------------------------------------------------------------
def test_lattice_join_orders_by_rank():
    order = [Verdict(DOALL), Verdict(DOANY), Verdict(REDUCTION, "*"),
             Verdict(SEQUENTIAL)]
    for a in order:
        for b in order:
            j = a.join(b)
            assert j.rank == max(a.rank, b.rank)
            assert j == b.join(a)  # commutative


def test_lattice_join_mixed_reduction_ops_is_sequential():
    assert Verdict(REDUCTION, "*").join(Verdict(REDUCTION, "min")) == Verdict(
        SEQUENTIAL
    )
    assert Verdict(REDUCTION, "max").join(Verdict(REDUCTION, "max")) == Verdict(
        REDUCTION, "max"
    )


def test_verdict_validates_its_shape():
    with pytest.raises(ValueError):
        Verdict("MAYBE")
    with pytest.raises(ValueError):
        Verdict(REDUCTION)  # REDUCTION needs an op
    with pytest.raises(ValueError):
        Verdict(DOALL, op="*")  # only REDUCTION carries one
    assert Verdict(REDUCTION, "min").label() == "REDUCTION(min)"


# ----------------------------------------------------------------------
# classification verdicts + evidence
# ----------------------------------------------------------------------
def test_entrywise_is_doall_with_disjoint_evidence():
    cls = classify_source(ENTRYWISE)
    assert cls.verdict == Verdict(DOALL)
    for lv in cls.loops:
        assert lv.verdict == Verdict(DOALL)
        assert any(e.kind == "disjoint" for e in lv.evidence)
    assert cls.report.ok


def test_spmv_is_doany_on_the_reduction_loop():
    cls = classify_source(SPMV)
    assert cls.verdict == Verdict(DOANY)
    by_var = {lv.var: lv for lv in cls.loops}
    assert by_var["i"].verdict == Verdict(DOALL)
    assert by_var["j"].verdict == Verdict(DOANY)
    assert any(e.kind == "commutes" for e in by_var["j"].evidence)


@pytest.mark.parametrize(
    "src,op", [(ROWPROD, "*"), (ROWMIN, "min")]
)
def test_recognized_reductions_classify_with_op(src, op):
    cls = classify_source(src)
    assert cls.verdict == Verdict(REDUCTION, op)
    assert cls.report.ok  # admissible: no error-severity findings
    assert "BER063" in cls.report.codes()


def test_sequential_nest_carries_witness_pair():
    cls = classify_source(GAUSS_SEIDEL)
    assert cls.verdict == Verdict(SEQUENTIAL)
    witnesses = cls.report.by_code("BER062")
    assert witnesses and all(d.severity == "error" for d in witnesses)
    assert any("X[j]" in d.message for d in witnesses)
    # classification-as-a-product mode downgrades witnesses to warnings
    soft = classify_source(GAUSS_SEIDEL, gate=False)
    assert soft.report.ok
    assert all(d.severity == "warn" for d in soft.report.by_code("BER062"))


def test_every_classification_issues_a_certificate():
    cls = classify_source(SPMV)
    cert = cls.certificate
    assert cert.version == 1
    assert cert.verdict == cls.verdict
    assert cert.fingerprint == program_fingerprint(cls.program)
    assert "BER061" in cls.report.codes()
    # payload round-trips to plain JSON types
    d = cert.to_dict()
    assert d["verdict"] == {"kind": DOANY, "op": None}
    assert [lv["var"] for lv in d["loops"]] == ["i", "j"]


# ----------------------------------------------------------------------
# certificate validation
# ----------------------------------------------------------------------
def test_check_certificate_accepts_the_real_thing():
    cls = classify_source(ROWPROD)
    assert check_certificate(cls.program, cls.certificate).ok


def test_check_certificate_rejects_wrong_program():
    cls = classify_source(ROWPROD)
    other = parse(SPMV)
    chk = check_certificate(other, cls.certificate)
    assert not chk.ok
    assert chk.errors()[0].code == "BER064"
    assert "fingerprint" in chk.errors()[0].message


def test_check_certificate_rejects_tampered_verdict():
    cls = classify_source(ROWPROD)
    lied = dataclasses.replace(
        cls.certificate,
        verdict=Verdict(DOALL),
        loops=tuple(
            dataclasses.replace(lv, verdict=Verdict(DOALL), evidence=())
            for lv in cls.certificate.loops
        ),
    )
    chk = check_certificate(cls.program, lied)
    assert not chk.ok
    assert any("verdict mismatch" in d.message for d in chk.errors())


def test_check_certificate_rejects_inconsistent_join():
    cls = classify_source(ROWPROD)
    lied = dataclasses.replace(cls.certificate, verdict=Verdict(DOANY))
    chk = check_certificate(cls.program, lied)
    assert any("join" in d.message for d in chk.errors())


def test_check_certificate_rejects_missing_and_stale_shapes():
    cls = classify_source(ROWPROD)
    assert not check_certificate(cls.program, None).ok
    v2 = dataclasses.replace(cls.certificate, version=2)
    assert not check_certificate(cls.program, v2).ok
    dropped = dataclasses.replace(cls.certificate, loops=cls.certificate.loops[:1])
    chk = check_certificate(cls.program, dropped)
    assert any("loops" in d.message for d in chk.errors())


def test_check_certificate_rejects_fabricated_evidence():
    cls = classify_source(ROWPROD)
    bad_loops = []
    for lv in cls.certificate.loops:
        bad_loops.append(
            dataclasses.replace(
                lv,
                evidence=tuple(
                    dataclasses.replace(e, statements=(7,)) for e in lv.evidence
                ),
            )
        )
    forged = dataclasses.replace(cls.certificate, loops=tuple(bad_loops))
    chk = check_certificate(cls.program, forged)
    assert any("outside the program body" in d.message for d in chk.errors())


# ----------------------------------------------------------------------
# mutation self-check
# ----------------------------------------------------------------------
def test_selfcheck_catches_every_planted_mutant():
    report = run_depend_selfcheck()
    assert report.ok, report.render("error")
    assert not report.by_code("BER065")
    assert len(report.by_code("BER066")) >= 10  # mutants × probes actually ran


# ----------------------------------------------------------------------
# the compile-path unlock (acceptance)
# ----------------------------------------------------------------------
def test_reduction_kernel_compiles_with_certificate_and_matches_oracle():
    # pre-lattice this nest raised VerificationError; now it must compile
    # with a REDUCTION(*) certificate and agree with the scalar oracle
    # bitwise (values are ±1/±2 so products are exact powers of two)
    n = 5
    A = _crs(n, seed=3)
    y0 = np.array([1.0, -2.0, 1.0, 2.0, -1.0])
    kern = compile_kernel(
        ROWPROD, {"A": A, "Y": DenseVector.zeros(n)}, cache=False
    )
    assert kern.certificate is not None
    assert kern.certificate.verdict == Verdict(REDUCTION, "*")
    y = DenseVector(y0.copy())
    kern(A=A, Y=y)
    ref = run_reference(parse(ROWPROD), {"A": A.to_dense(), "Y": y0}, sparse={"A"})
    assert y.vals.tobytes() == ref["Y"].tobytes()


def test_sequential_kernel_still_fails_loudly_with_witness():
    n = 4
    with pytest.raises(VerificationError) as e:
        compile_kernel(
            GAUSS_SEIDEL,
            {"A": _crs(n), "X": DenseVector.zeros(n)},
            cache=False,
        )
    assert "SEQUENTIAL" in str(e.value)
    assert any(d.code == "BER062" for d in e.value.diagnostics)


def test_cache_hit_revalidates_certificate():
    clear_kernel_cache()
    n = 4
    A = _crs(n, seed=1)
    formats = {"A": A, "Y": DenseVector.zeros(n)}
    k1 = compile_kernel(ROWPROD, formats, extra_key="depend-cache-test")
    k2 = compile_kernel(ROWPROD, formats, extra_key="depend-cache-test")
    assert k2 is k1  # warm hit — and the revalidation above passed
    # corrupt the cached plan's certificate: the next hit must refuse to
    # serve it rather than trust a stale parallelism claim
    k1.certificate = classify_source(SPMV).certificate
    with pytest.raises(VerificationError) as e:
        compile_kernel(ROWPROD, formats, extra_key="depend-cache-test")
    assert any(d.code == "BER064" for d in e.value.diagnostics)
    clear_kernel_cache()
