"""DOANY dependence checker: legal nests verify, seeded races are caught."""

import pytest

from repro.analysis.doany import check_program, check_source
from repro.compiler.parser import parse


def codes(report):
    return sorted({d.code for d in report.errors()})


# ----------------------------------------------------------------------
# clean programs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "src",
    [
        "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",  # spmv
        "for i in 0:n { for j in 0:n { Y[j] += A[i,j] * X[i] } }",  # spmv^T
        "for i in 0:n { Y[i] = alpha * X[i] }",  # covered plain assign
        "for z in 0:1 { for i in 0:n { S[z] += X[i] * Y[i] } }",  # scalar acc
        "for i in 0:n { for j in 0:m { for k in 0:l { C[i,k] += A[i,j] * B[j,k] } } }",
        # multi-statement, disjoint arrays
        "for i in 0:n { Y[i] += X[i] Z[i] = X[i] }",
        # reduce reading its own fully-covered target element
        "for i in 0:n { Y[i] += Y[i] * X[i] }",
    ],
)
def test_legal_nests_verify_clean(src):
    report = check_source(src)
    assert report.ok, report.render()
    infos = report.by_code("BER010")
    assert len(infos) == len(parse(src).body)


def test_clean_verdict_names_the_reason():
    rep = check_source("for i in 0:n { Y[i] += X[i] }")
    assert "legal reduction" in rep.by_code("BER010")[0].message
    rep = check_source("for i in 0:n { Y[i] = X[i] }")
    assert "iteration-independent" in rep.by_code("BER010")[0].message


# ----------------------------------------------------------------------
# seeded defects, one stable code each
# ----------------------------------------------------------------------
def test_plain_assign_not_covering_nest_is_rejected():
    # pipeline also rejects this; the checker must diagnose it BER011
    rep = check_source("for i in 0:n { for j in 0:n { Y[i] = A[i,j] } }")
    assert codes(rep) == ["BER011"]


def test_reduction_reading_own_target_permuted_is_rejected():
    rep = check_source("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * Y[j] } }")
    assert codes(rep) == ["BER012"]


def test_non_reduction_loop_carried_write_is_rejected():
    # the acceptance defect: a loop-carried write that is NOT a legal
    # reduction.  The parser already refuses `Y[i] = Y[i] * X[i]`, so the
    # checker's own rejection is exercised on a directly-built Program —
    # defense in depth for callers that construct ASTs programmatically.
    from repro.compiler.ast_nodes import Assign, BinOp, LoopSpec, Program, Ref

    prog = Program(
        loops=(LoopSpec("i", "0", "n"),),
        body=(
            Assign(
                target=Ref("Y", ("i",)),
                expr=BinOp("*", Ref("Y", ("i",)), Ref("X", ("i",))),
                reduce=False,
            ),
        ),
    )
    rep = check_program(prog)
    assert codes(rep) == ["BER012"]


def test_cross_statement_permuted_flow_dependence():
    rep = check_source(
        "for i in 0:n { for j in 0:n { Y[i,j] += A[i,j] Z[i,j] += Y[j,i] } }"
    )
    assert codes(rep) == ["BER013"]


def test_cross_statement_output_dependence():
    # two writes to the same array, one of them a plain assignment whose
    # tuple does not match: last-writer-wins depends on iteration order
    rep = check_source(
        "for i in 0:n { for j in 0:n { Y[i,j] += A[i,j] Y[j,i] = B[i,j] } }"
    )
    assert "BER014" in codes(rep)


def test_both_reductions_same_array_are_legal():
    rep = check_source("for i in 0:n { Y[i] += X[i] Y[i] += Z[i] }")
    assert rep.ok, rep.render()


# ----------------------------------------------------------------------
# diagnostics carry source carets
# ----------------------------------------------------------------------
def test_error_diagnostic_points_at_the_offending_ref():
    src = "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * Y[j] } }"
    rep = check_source(src)
    (err,) = rep.errors()
    assert err.span is not None
    rendered = err.render()
    assert "^" in rendered and "Y[j]" in src[err.span.start : err.span.end]


def test_check_program_without_source_has_no_snippet():
    prog = parse("for i in 0:n { for j in 0:n { Y[i] += A[i,j] * Y[j] } }")
    (err,) = check_program(prog).errors()
    assert err.render().count("\n") == 0  # no caret block without source
