"""Plan & generated-code linter: shipped kernels clean, doctored code caught."""

import numpy as np

from repro.analysis.lint import (
    lint_generated_source,
    lint_kernel,
    lint_plan,
    lint_shipped_kernels,
)
from repro.compiler import compile_kernel
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseMatrix, DenseVector


def codes(report):
    return sorted({d.code for d in report.errors() + report.warnings()})


def _crs(dense):
    return CRSMatrix.from_coo(COOMatrix.from_dense(np.asarray(dense, float)))


# ----------------------------------------------------------------------
# shipped kernels are structurally clean
# ----------------------------------------------------------------------
def test_shipped_kernels_lint_clean():
    report = lint_shipped_kernels()
    assert report.ok, report.render("error")


def test_spmv_kernel_lints_clean(paper_matrix):
    A = CRSMatrix.from_coo(paper_matrix)
    x = DenseVector(np.ones(6))
    y = DenseVector(np.zeros(6))
    formats = {"A": A, "X": x, "Y": y}
    k = compile_kernel(
        "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }",
        formats,
        cache=False,
    )
    assert len(lint_kernel(k, formats)) == 0


# ----------------------------------------------------------------------
# plan lint: guarded enumerate×enumerate joins
# ----------------------------------------------------------------------
def test_guarded_enumerate_join_is_flagged():
    # Diagonal's run level binds BOTH axes; as a chained (non-driver) term
    # with only j bound, the level binds the new k while guarding on j —
    # the enumerate×enumerate join shape the linter must surface.
    from repro.formats.diagonal import DiagonalMatrix

    d = (np.arange(25).reshape(5, 5) % 3 == 0) * 2.0
    np.fill_diagonal(d, 1.0)
    A = _crs(d)
    D = DiagonalMatrix.from_coo(COOMatrix.from_dense(d))
    C = DenseMatrix.zeros(5, 5)
    formats = {"A": A, "D": D, "C": C}
    k = compile_kernel(
        "for i in 0:n { for j in 0:m { for k in 0:l { C[i,k] += A[i,j] * D[j,k] } } }",
        formats,
        cache=False,
        force_driver="A",
    )
    rep = lint_kernel(k, formats)
    assert "BER030" in codes(rep)
    (w,) = rep.by_code("BER030")
    assert "searchable" in w.message


def test_plan_lint_without_formats_still_flags():
    from repro.compiler.scheduling import Plan, Step
    from repro.relational.query import Query

    step = Step("enumerate", term="B", level_index=1, binds=(), guards=("j",))
    plan = Plan(
        query=Query.__new__(Query),
        driver="A",
        steps=(step,),
        accesses=(),
        cost=1.0,
    )
    rep = lint_plan(plan)
    assert [d.code for d in rep] == ["BER030"]


# ----------------------------------------------------------------------
# backend fallback
# ----------------------------------------------------------------------
def test_scalar_fallback_is_flagged():
    d = (np.arange(25).reshape(5, 5) % 3 == 0) * 1.0
    A, B = _crs(d), _crs(d)
    C = DenseMatrix.zeros(5, 5)
    formats = {"A": A, "B": B, "C": C}
    k = compile_kernel(
        "for i in 0:n { for j in 0:m { C[i,j] += A[i,j] * B[i,j] } }",
        formats,
        cache=False,
    )
    rep = lint_kernel(k, formats)
    if any(lbl.startswith("fallback") for lbl in k.unit_backends):
        assert "BER031" in codes(rep)
    else:  # pragma: no cover - vectorized strategy grew coverage
        assert "BER031" not in codes(rep)


# ----------------------------------------------------------------------
# generated-code lint on doctored sources
# ----------------------------------------------------------------------
PARAMS = ["A_vals", "Y_vals", "n"]


def test_unbound_name_is_caught():
    src = "def kernel(A_vals, Y_vals, n):\n    for i in range(n):\n        Y_vals[i] = A_vals[i] * ghost\n"
    rep = lint_generated_source(src, PARAMS, {"Y"})
    assert codes(rep) == ["BER032"]


def test_write_outside_outputs_is_caught():
    src = "def kernel(A_vals, Y_vals, n):\n    for i in range(n):\n        A_vals[i] = 0.0\n"
    rep = lint_generated_source(src, PARAMS, {"Y"})
    assert codes(rep) == ["BER033"]


def test_augmented_write_outside_outputs_is_caught():
    src = "def kernel(A_vals, Y_vals, n):\n    for i in range(n):\n        A_vals[i] += 1.0\n"
    rep = lint_generated_source(src, PARAMS, {"Y"})
    assert codes(rep) == ["BER033"]


def test_storage_shadowing_is_caught():
    src = "def kernel(A_vals, Y_vals, n):\n    A_vals = 0\n    Y_vals[0] = A_vals\n"
    rep = lint_generated_source(src, PARAMS, {"Y"})
    assert codes(rep) == ["BER034"]


def test_unparseable_source_is_one_error():
    rep = lint_generated_source("def kernel(:\n", PARAMS, {"Y"})
    assert codes(rep) == ["BER032"]


def test_clean_source_has_no_findings():
    src = (
        "def kernel(A_vals, Y_vals, n):\n"
        "    acc = 0.0\n"
        "    for i in range(n):\n"
        "        acc = acc + A_vals[i]\n"
        "        Y_vals[i] += acc\n"
    )
    assert len(lint_generated_source(src, PARAMS, {"Y"})) == 0


def test_every_shipped_kernel_source_parses_clean(paper_matrix):
    # the real emitted source for a multi-statement program
    A = CRSMatrix.from_coo(paper_matrix)
    x = DenseVector(np.ones(6))
    y = DenseVector(np.zeros(6))
    z = DenseVector(np.zeros(6))
    k = compile_kernel(
        "for i in 0:n { Y[i] += X[i] Z[i] = X[i] }",
        {"X": x, "Y": y, "Z": z},
        cache=False,
    )
    rep = lint_generated_source(k.source, k.param_names, {"Y", "Z"})
    assert rep.ok, rep.render()


# ----------------------------------------------------------------------
# warm-cache dedupe: linting the same cached kernel twice reports once
# ----------------------------------------------------------------------
def test_warm_cache_double_lint_reports_each_finding_once():
    from repro.analysis.diagnostics import DiagnosticReport
    from repro.compiler import clear_kernel_cache

    clear_kernel_cache()
    A = _crs(np.eye(4))
    f = {"A": A, "X": DenseVector(np.ones(4)), "Y": DenseVector.zeros(4)}
    # composite denominator: the vectorizer declines, fallback:scalar
    # yields a deterministic BER031 warning
    src = "for i in 0:n { for j in 0:n { Y[i] += A[i,j] / (X[i] * X[i]) } }"
    k1 = compile_kernel(src, f)
    k2 = compile_kernel(src, f)  # warm PlanCache: the same kernel object
    assert k1 is k2

    once = lint_kernel(k1, f, where="warm")
    assert [d.code for d in once.warnings()] == ["BER031"]

    merged = DiagnosticReport()
    lint_kernel(k1, f, where="warm", into=merged)
    lint_kernel(k2, f, where="warm", into=merged)
    assert len(merged) == len(once), merged.render()
    assert [d.code for d in merged.warnings()] == ["BER031"]


def test_dedupe_keeps_distinct_findings_and_order():
    from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

    a = Diagnostic("BER032", "error", "name 'g0' is unbound", location="l1")
    b = Diagnostic("BER032", "error", "name 'g1' is unbound", location="l1")
    rep = DiagnosticReport([a, b, a, b, a])
    rep.dedupe()
    assert [d.message for d in rep] == [a.message, b.message]


def test_unbound_name_not_doubled_across_repeated_lint():
    # the same doctored source linted twice into one report: the
    # identical BER032 must appear exactly once
    from repro.analysis.diagnostics import DiagnosticReport

    src = "def kernel(A_vals, Y_vals, n):\n    Y_vals[0] = ghost\n"
    rep = DiagnosticReport()
    rep.extend(lint_generated_source(src, ["A_vals", "Y_vals", "n"], {"Y"}))
    rep.extend(lint_generated_source(src, ["A_vals", "Y_vals", "n"], {"Y"}))
    assert len(rep) == 2  # duplicated before dedupe
    rep.dedupe()
    assert [d.code for d in rep] == ["BER032"]
