"""The region-partition auditor (BER056-059) and its mutation self-check.

The auditor's job is to catch partition defects that produce *plausibly
close* hybrid results — dropped entries, double-counted overlaps,
shifted boundaries.  Each test plants exactly one defect with the seeded
mutation helpers and requires the expected code; the registered sweep
pass does the same over inline probes and must report every mutant as
caught.
"""

import numpy as np
import pytest

from repro.analysis import all_passes
from repro.analysis.regions import (
    audit_partition,
    mutate_double_count,
    mutate_drop_region,
    mutate_shift_boundary,
    run_region_selfcheck,
)
from repro.compiler.specialize import partition_regions
from repro.formats.coo import COOMatrix
from tests.conftest import case_rng
from tests.generators import STRUCTURE_CLASSES


@pytest.fixture
def hybrid_case():
    rng = case_rng(5900)
    coo = STRUCTURE_CLASSES["hybrid"](rng, 72).canonicalized()
    partition = partition_regions(coo)
    assert len(partition.regions) >= 2  # mutations need multiple regions
    return coo, partition


def test_clean_partition_audits_ok(hybrid_case):
    coo, partition = hybrid_case
    report = audit_partition(coo, partition)
    assert report.ok, report.render()
    # one info line per region on a clean audit
    assert len(report.by_code("BER050")) == len(partition.regions)


def test_dropped_region_is_caught_as_ber056(hybrid_case):
    coo, partition = hybrid_case
    mutant = mutate_drop_region(partition, 0)
    report = audit_partition(coo, mutant)
    assert not report.ok
    assert report.by_code("BER056"), report.render()


def test_double_counted_region_is_caught_as_ber057(hybrid_case):
    coo, partition = hybrid_case
    mutant = mutate_double_count(partition, 1)
    report = audit_partition(coo, mutant)
    assert not report.ok
    assert report.by_code("BER057"), report.render()


def test_shifted_boundary_is_caught(hybrid_case):
    coo, partition = hybrid_case
    mutant = mutate_shift_boundary(partition, 0)
    report = audit_partition(coo, mutant)
    assert not report.ok
    # a shift both drops originals and invents strays
    codes = set(report.codes())
    assert {"BER056", "BER057"} & codes, report.render()


def test_value_corruption_is_caught_as_ber058(hybrid_case):
    """Coordinates intact, one value corrupted: only the bitwise value
    check can see it."""
    coo, partition = hybrid_case
    regions = list(partition.regions)
    r = regions[0]
    vals = r.coo.vals.copy()
    vals[0] += 1.0
    from repro.analysis.regions import _clone_partition, _clone_region

    corrupted = COOMatrix(r.coo.shape, r.coo.row, r.coo.col, vals)
    regions[0] = _clone_region(r, corrupted)
    mutant = _clone_partition(partition, regions)
    report = audit_partition(coo, mutant)
    assert not report.ok
    assert report.by_code("BER058"), report.render()


def test_shape_mismatch_is_rejected(hybrid_case):
    coo, partition = hybrid_case
    other = COOMatrix((coo.shape[0] + 1, coo.shape[1]), [], [], [])
    report = audit_partition(other, partition)
    assert not report.ok
    assert report.by_code("BER057")


def test_selfcheck_catches_every_seeded_mutant():
    report = run_region_selfcheck()
    assert report.ok, report.render()
    meta = report.by_code("BER059")
    # every (probe × mutation) combination reports as caught
    assert len(meta) >= 6
    assert all(d.severity == "info" and "caught" in d.message for d in meta)


def test_regions_pass_is_registered():
    passes = all_passes()
    assert "regions" in passes
    report = passes["regions"].run()
    assert report.ok
