"""SPMD schedule checker: five clean strategies, seeded deadlocks caught."""

import numpy as np
import pytest

from repro.analysis.schedule import (
    check_gather_schedules,
    check_local_schedule,
    check_spmv_strategies,
    trace_collectives,
    verify_rebuilt_schedule,
)
from repro.distribution import BlockDistribution
from repro.matrices import stencil_matrix
from repro.parallel import partition_rows
from repro.parallel.spmd_spmv import MixedSpMV
from repro.runtime.machine import Machine


def codes(report):
    return sorted({d.code for d in report.errors()})


def _schedules(P=3):
    """Real per-rank schedules from a MixedSpMV setup."""
    coo = stencil_matrix((4, 4), dof=1, rng=0)
    dist = BlockDistribution(coo.shape[0], P)
    frags = partition_rows(coo, dist)
    strategies = [MixedSpMV(p, dist, frags[p]) for p in range(P)]

    def prog(p):
        yield from strategies[p].setup()

    Machine(P).run(prog)
    return [s.sched for s in strategies], [s.nlocal for s in strategies], strategies


# ----------------------------------------------------------------------
# the real strategies verify clean
# ----------------------------------------------------------------------
def test_all_five_strategies_verify_clean():
    report = check_spmv_strategies(nprocs=3, niter=2)
    assert report.ok, report.render("error")
    # one clean info per strategy
    assert len(report.by_code("BER045")) == 5


def test_real_schedules_pass_structural_checks():
    scheds, nlocals, _ = _schedules()
    assert check_gather_schedules(scheds, nlocals=nlocals).ok


# ----------------------------------------------------------------------
# seeded schedule defects
# ----------------------------------------------------------------------
def test_dropped_recv_is_a_send_recv_mismatch():
    scheds, nlocals, _ = _schedules()
    victim = next(s for s in scheds if s.recv_slots)
    peer = sorted(victim.recv_slots)[0]
    del victim.recv_slots[peer]
    rep = check_gather_schedules(scheds, nlocals=nlocals)
    assert "BER040" in codes(rep)
    assert "BER042" in codes(rep)  # the dropped packet's slots go unfilled


def test_truncated_send_list_is_caught():
    scheds, nlocals, _ = _schedules()
    victim = next(s for s in scheds if s.send_locals)
    peer = sorted(victim.send_locals)[0]
    victim.send_locals[peer] = victim.send_locals[peer][:-1]
    rep = check_gather_schedules(scheds, nlocals=nlocals)
    assert codes(rep) == ["BER040"]


def test_unsorted_ghost_directory_is_caught():
    scheds, nlocals, _ = _schedules()
    victim = next(s for s in scheds if s.nghost >= 2)
    victim.ghost_global = victim.ghost_global[::-1].copy()
    rep = check_local_schedule(victim, nlocal=None)
    assert codes(rep) == ["BER043"]


def test_out_of_range_slot_is_caught():
    scheds, _, _ = _schedules()
    victim = next(s for s in scheds if s.recv_slots)
    peer = sorted(victim.recv_slots)[0]
    slots = victim.recv_slots[peer].copy()
    slots[0] = victim.nghost + 7
    victim.recv_slots[peer] = slots
    rep = check_local_schedule(victim)
    assert "BER043" in codes(rep)
    assert "BER042" in codes(rep)  # the true slot is now uncovered


def test_rebuild_checksum_mismatch_is_ber044():
    scheds, _, strategies = _schedules()
    strat = strategies[0]
    rebuilt = scheds[0]
    rebuilt.ghost_global = rebuilt.ghost_global.copy()
    if rebuilt.nghost:
        rebuilt.ghost_global[0] -= 1
    else:  # degenerate: force a fingerprint difference another way
        strat._sched_sum += 1
    rep = verify_rebuilt_schedule(strat, rebuilt)
    assert "BER044" in codes(rep)


def test_rebuild_matching_fingerprint_verifies():
    _, _, strategies = _schedules()
    strat = next(s for s in strategies if s.sched.nghost)
    assert verify_rebuilt_schedule(strat, strat.sched).ok


# ----------------------------------------------------------------------
# collective lockstep driver
# ----------------------------------------------------------------------
def test_lockstep_clean_run_routes_all_collectives():
    def prog(p):
        yield ("phase", "setup")
        got = yield ("alltoallv", {1 - p: np.array([float(p)])})
        total = yield ("allreduce", got[1 - p][0])
        everyone = yield ("allgather", p)
        yield ("barrier", None)
        return total, everyone

    results, traces, report = trace_collectives(prog, 2)
    assert report.ok
    assert results[0] == (1.0, [0, 1]) and results[1] == (1.0, [0, 1])
    assert [k for k, _ in traces[0]] == [
        "phase",
        "alltoallv",
        "allreduce",
        "allgather",
        "barrier",
    ]


def test_missing_collective_on_one_rank_is_caught():
    # the acceptance defect: one strategy variant omits one collective —
    # rank 1 skips the allreduce every other rank issues
    def prog(p):
        yield ("barrier", None)
        if p != 1:
            yield ("allreduce", 1)
        yield ("barrier", None)

    _, _, report = trace_collectives(prog, 3)
    assert codes(report) == ["BER041"]


def test_premature_finish_is_caught():
    def prog(p):
        yield ("barrier", None)
        if p == 0:
            return 0
        yield ("allreduce", 1)
        return 1

    _, _, report = trace_collectives(prog, 2)
    assert codes(report) == ["BER041"]
    assert "deadlock" in report.errors()[0].message


def test_mismatched_phase_labels_are_caught():
    def prog(p):
        yield ("phase", f"window-{p}")

    _, _, report = trace_collectives(prog, 2)
    assert codes(report) == ["BER041"]


def test_bad_destination_is_caught():
    def prog(p):
        yield ("alltoallv", {99: np.zeros(1)})

    _, _, report = trace_collectives(prog, 2)
    assert codes(report) == ["BER040"]


# ----------------------------------------------------------------------
# fault-recovery integration: rebuilds pass through the checker
# ----------------------------------------------------------------------
def test_fault_recovery_reverifies_rebuilt_schedule():
    from repro.runtime.faults import FaultPlan

    coo = stencil_matrix((4, 4), dof=1, rng=1)
    P = 2
    dist = BlockDistribution(coo.shape[0], P)
    frags = partition_rows(coo, dist)
    plan = FaultPlan(seed=3, corrupt_schedule=((0, 0),))
    m = Machine(P, faults=plan)

    x = np.arange(coo.shape[0], dtype=float)

    def prog(p):
        strat = MixedSpMV(p, dist, frags[p])
        yield from strat.setup()
        y = yield from strat.step(x[dist.owned_by(p)])
        return y

    results, _ = m.run(prog)
    y = np.zeros(coo.shape[0])
    for p in range(P):
        y[dist.owned_by(p)] = results[p]
    assert np.allclose(y, coo.to_dense() @ x)
