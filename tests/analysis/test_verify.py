"""compile_kernel's verify= gate: error raises, warn warns, off compiles."""

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.errors import CompileError, VerificationError
from repro.formats.coo import COOMatrix
from repro.formats.crs import CRSMatrix
from repro.formats.dense import DenseMatrix, DenseVector

# accepted by the per-statement pipeline, but carries a cross-statement
# permuted flow dependence the DOANY checker must reject (BER013)
RACY = "for i in 0:n { for j in 0:n { Y[i,j] += A[i,j] Z[i,j] += Y[j,i] } }"
CLEAN = "for i in 0:n { for j in 0:n { Y[i] += A[i,j] * X[j] } }"


def _formats_racy():
    d = np.eye(4)
    A = CRSMatrix.from_coo(COOMatrix.from_dense(d))
    return {"A": A, "Y": DenseMatrix.zeros(4, 4), "Z": DenseMatrix.zeros(4, 4)}


def _formats_clean():
    d = np.eye(4)
    A = CRSMatrix.from_coo(COOMatrix.from_dense(d))
    return {"A": A, "X": DenseVector(np.ones(4)), "Y": DenseVector.zeros(4)}


def test_default_verify_rejects_racy_nest():
    with pytest.raises(VerificationError) as e:
        compile_kernel(RACY, _formats_racy(), cache=False)
    err = e.value
    assert err.diagnostics and err.diagnostics[0].code == "BER013"
    assert "BER013" in str(err)


def test_verification_error_is_a_compile_error():
    with pytest.raises(CompileError):
        compile_kernel(RACY, _formats_racy(), cache=False)


def test_verify_warn_compiles_with_a_warning():
    with pytest.warns(UserWarning, match="BER013"):
        k = compile_kernel(RACY, _formats_racy(), cache=False, verify="warn")
    assert k is not None


def test_verify_off_compiles_silently():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        k = compile_kernel(RACY, _formats_racy(), cache=False, verify="off")
    assert k is not None


def test_clean_kernel_passes_default_verification():
    k = compile_kernel(CLEAN, _formats_clean(), cache=False)
    out = DenseVector.zeros(4)
    k(A=_formats_clean()["A"], X=DenseVector(np.ones(4)), Y=out)
    assert np.allclose(out.vals, np.ones(4))


def test_bad_verify_value_is_rejected_early():
    with pytest.raises(CompileError, match="verify"):
        compile_kernel(CLEAN, _formats_clean(), cache=False, verify="maybe")
